"""Repo-wide pytest/hypothesis configuration.

Hypothesis profiles keep the property suites deterministic where it
matters: the ``ci`` profile (selected via ``HYPOTHESIS_PROFILE=ci``, as
the GitHub Actions workflow does) fixes the derandomization seed and
trims example counts so CI runs are reproducible and bounded; the default
``dev`` profile keeps randomized exploration for local runs.  Tests that
pin their own ``max_examples`` keep it — profiles only fill unspecified
settings.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "perf: perf-harness self-tests (seeded subprocess smoke runs of "
        "benchmarks/run_perf.py)",
    )
    config.addinivalue_line(
        "markers",
        "concurrency: threaded multi-session serving-runtime tests "
        "(N sessions x M clicks against one GroupSpaceRuntime; run "
        "standalone via `pytest -m concurrency`)",
    )
