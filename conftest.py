"""Repo-wide pytest/hypothesis configuration.

Hypothesis profiles keep the property suites deterministic where it
matters: the ``ci`` profile (selected via ``HYPOTHESIS_PROFILE=ci``, as
the GitHub Actions workflow does) fixes the derandomization seed and
trims example counts so CI runs are reproducible and bounded; the default
``dev`` profile keeps randomized exploration for local runs.  Tests that
pin their own ``max_examples`` keep it — profiles only fill unspecified
settings.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, settings

settings.register_profile(
    "dev",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    max_examples=20,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

# Custom markers (perf, concurrency) are registered in pytest.ini with
# --strict-markers, so they are enforced at collection time everywhere.
