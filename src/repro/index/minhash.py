"""MinHash signatures + LSH banding for approximate group similarity.

A scalability extension beyond the paper's exact index: at BookCrossing
scale the O(|G|^2) exact Jaccard construction dominates pre-processing, and
MinHash gives an unbiased estimator of the same Jaccard the paper ranks by.
Benchmarks (C3 extension) compare recall and build time against
:class:`repro.index.inverted.SimilarityIndex`.

Standard construction: ``n_hashes`` universal hash functions
``(a * x + b) mod p`` over user ids; signature of a group is the coordinate
-wise minimum over its members; LSH splits signatures into bands of rows
and buckets identical bands so candidate pairs are found in near-linear
time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

_MERSENNE_PRIME = (1 << 61) - 1


@dataclass(frozen=True)
class MinHashConfig:
    """Signature and banding shape; ``n_hashes = bands * rows_per_band``."""

    bands: int = 16
    rows_per_band: int = 4
    seed: int = 0

    @property
    def n_hashes(self) -> int:
        return self.bands * self.rows_per_band


class MinHashIndex:
    """Approximate Jaccard search over group member sets."""

    def __init__(
        self,
        memberships: list[np.ndarray],
        config: MinHashConfig | None = None,
    ) -> None:
        self.config = config or MinHashConfig()
        rng = np.random.default_rng(self.config.seed)
        n_hashes = self.config.n_hashes
        self._a = rng.integers(1, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self._b = rng.integers(0, _MERSENNE_PRIME, size=n_hashes, dtype=np.int64)
        self.n_groups = len(memberships)
        self.signatures = np.full(
            (self.n_groups, n_hashes), np.iinfo(np.int64).max, dtype=np.int64
        )
        for group, members in enumerate(memberships):
            if len(members) == 0:
                continue
            self.signatures[group] = self._signature(np.asarray(members, dtype=np.int64))
        self._buckets: list[dict[bytes, list[int]]] = [
            defaultdict(list) for _ in range(self.config.bands)
        ]
        for group in range(self.n_groups):
            for band, key in enumerate(self._band_keys(self.signatures[group])):
                self._buckets[band][key].append(group)

    def _signature(self, members: np.ndarray) -> np.ndarray:
        # hashes: (n_hashes, n_members) -> min over members
        hashed = (
            self._a[:, None] * members[None, :] + self._b[:, None]
        ) % _MERSENNE_PRIME
        return hashed.min(axis=1)

    def _band_keys(self, signature: np.ndarray) -> list[bytes]:
        rows = self.config.rows_per_band
        return [
            signature[band * rows : (band + 1) * rows].tobytes()
            for band in range(self.config.bands)
        ]

    # ------------------------------------------------------------------

    def estimated_similarity(self, left: int, right: int) -> float:
        """Unbiased MinHash estimate of Jaccard(left, right)."""
        return float(
            np.mean(self.signatures[left] == self.signatures[right])
        )

    def candidates(self, group: int) -> list[int]:
        """Groups sharing at least one LSH bucket with ``group``."""
        found: set[int] = set()
        for band, key in enumerate(self._band_keys(self.signatures[group])):
            found.update(self._buckets[band][key])
        found.discard(group)
        return sorted(found)

    def neighbors(self, group: int, k: int) -> list[tuple[int, float]]:
        """Top-``k`` (group, estimated similarity), LSH candidates only."""
        scored = [
            (candidate, self.estimated_similarity(group, candidate))
            for candidate in self.candidates(group)
        ]
        scored.sort(key=lambda pair: (-pair[1], pair[0]))
        return scored[:k]
