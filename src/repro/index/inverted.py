"""Per-group inverted similarity index with partial materialization.

VEXUS §II-A: *"For efficient navigation in the space of groups, we build an
inverted index per group g ∈ G that contains all groups in G − {g} in
decreasing order of their similarity to g.  We use the Jaccard distance ...
To reduce both time and space complexity, we only materialize 10% of each
inverted index which is shown in [14] to be adequate."*

Construction computes all positive-overlap Jaccard similarities through one
sparse membership matrix product (groups sharing no member have similarity
0 and — per the paper's group graph — no edge, so they never need ranking),
then keeps only the top ``materialize_fraction`` of each group's ranking.
Lookups beyond the materialized prefix can either fall back to an exact
on-demand computation or report truncation, depending on the caller.

Since the serving-runtime refactor the ranking itself is *batched*: row
blocks of the pooled CSR product are ranked by a flat select-then-sort
pass (per-block threshold selection via one padded ``np.partition``, an
exact tie repair, then one lexsort of only the kept ~10%), blocks run on
a worker pool when cores allow, and the materialized prefixes live in
flat ``(ids, sims, indptr)`` arrays instead of per-group
:class:`Neighbor` lists.  That is what lets one
:class:`~repro.core.runtime.GroupSpaceRuntime` build the index for a very
large group space once and serve it to every session.  The per-group loop
is retained as :func:`_rank_prefix_loop` — the parity oracle for the
batched ranking and the baseline the perf harness measures the build
speedup against.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.similarity import membership_matrix

#: Target CSR entries per ranking block: small enough that one block's
#: working set stays cache-resident, big enough that per-block overhead
#: amortizes.  Blocks are independent, so the split never changes output.
_RANK_BLOCK_NNZ = 262_144

# Tail entries ranked immediately after each serving prefix.  The reserve
# is the slack that makes delta maintenance robust: when a store mutation
# demotes a prefix entry below the stored boundary, the hole is filled
# from the reserve instead of forcing a full row recompute (the classic
# overprovisioning trick of incremental top-k view maintenance).
_RESERVE_DEPTH = 8


def _split_reserve(
    ids: np.ndarray,
    sims: np.ndarray,
    indptr: np.ndarray,
    tail_complete: np.ndarray,
    budget: int,
) -> tuple[np.ndarray, ...]:
    """Split wide-ranked rows into serving prefix + maintenance reserve.

    ``ids``/``sims``/``indptr`` hold up to ``budget + _RESERVE_DEPTH``
    entries per row (a ranking prefix is a true prefix of the exact
    ranking, so the first ``budget`` entries are bitwise-identical to a
    budget-only ranking).  Returns
    ``(prefix_ids, prefix_sims, prefix_indptr, complete,
    reserve_ids, reserve_sims, reserve_indptr, tail_complete)``.
    """
    counts = np.diff(indptr)
    pcounts = np.minimum(counts, budget)
    rcounts = counts - pcounts
    n = len(counts)
    row = np.repeat(np.arange(n, dtype=np.int64), counts)
    within = np.arange(len(ids), dtype=np.int64) - np.repeat(
        indptr[:-1], counts
    )
    in_prefix = within < pcounts[row]
    prefix_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(pcounts, out=prefix_indptr[1:])
    reserve_indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(rcounts, out=reserve_indptr[1:])
    return (
        ids[in_prefix],
        sims[in_prefix],
        prefix_indptr,
        counts <= budget,
        ids[~in_prefix],
        sims[~in_prefix],
        reserve_indptr,
        np.asarray(tail_complete, dtype=bool),
    )


@dataclass(frozen=True)
class Neighbor:
    """One entry of a group's inverted index."""

    group: int
    similarity: float


def _rank_prefix_block(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
    row_start: int,
    row_end: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Rank rows ``[row_start, row_end)`` with flat select-then-sort passes.

    Instead of fully sorting every row, the block (1) finds each
    over-budget row's budget-th best similarity with one padded
    ``np.partition`` per length bucket, (2) keeps everything strictly
    above that threshold plus exactly enough threshold ties in
    neighbor-gid order (the same ``(similarity desc, gid asc)`` rule the
    full sort would apply), and (3) lexsorts only the kept ~10% of
    entries.  Entry-for-entry identical to :func:`_rank_prefix_loop` —
    the float comparisons are the same, only their order of discovery
    changes.

    Returns ``(ids, sims, kept_counts, complete)`` for the block's rows.
    """
    indptr_in = overlaps.indptr
    low, high = indptr_in[row_start], indptr_in[row_end]
    entry_counts = np.diff(indptr_in[row_start : row_end + 1])
    rows = np.repeat(
        np.arange(row_start, row_end, dtype=np.int64), entry_counts
    )
    cols = overlaps.indices[low:high].astype(np.int64)
    inter = overlaps.data[low:high].astype(np.float64)
    keep = cols != rows  # a group is not its own neighbor
    rows, cols, inter = rows[keep], cols[keep], inter[keep]
    union = sizes[rows] + sizes[cols] - inter
    sims = np.where(union > 0, inter / np.where(union > 0, union, 1.0), 0.0)
    neg = -sims
    n_rows = row_end - row_start
    counts = np.bincount(rows - row_start, minlength=n_rows).astype(np.int64)
    starts = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    kept_counts = np.minimum(counts, budget)
    complete = counts <= budget

    # (1) per-row selection threshold: the budget-th best negated
    # similarity, via one padded partition per power-of-two length bucket.
    threshold = np.full(n_rows, np.inf)
    over = np.flatnonzero(counts > budget)
    if len(over):
        buckets = np.maximum(
            np.ceil(np.log2(counts[over])).astype(np.int64), 0
        )
        for bucket in np.unique(buckets):
            selected = over[buckets == bucket]
            width = 1 << int(bucket)
            lengths = counts[selected]
            row_index = np.repeat(np.arange(len(selected)), lengths)
            within = np.arange(lengths.sum()) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            source = np.repeat(starts[selected], lengths) + within
            padded = np.full((len(selected), width), np.inf)
            padded[row_index, within] = neg[source]
            threshold[selected] = np.partition(padded, budget - 1, axis=-1)[
                :, budget - 1
            ]

    # (2) keep strictly-better entries, then admit threshold ties in
    # neighbor-gid order until each row's budget is exact.
    row_threshold = threshold[rows - row_start]
    sure = neg < row_threshold
    still_needed = kept_counts - np.bincount(
        (rows - row_start)[sure], minlength=n_rows
    )
    tie_positions = np.flatnonzero(neg == row_threshold)
    if len(tie_positions):
        tie_order = tie_positions[
            np.argsort(cols[tie_positions], kind="stable")
        ]
        tie_order = tie_order[np.argsort(rows[tie_order], kind="stable")]
        tie_rows = rows[tie_order] - row_start
        tie_counts = np.bincount(tie_rows, minlength=n_rows)
        tie_starts = np.concatenate(([0], np.cumsum(tie_counts)))
        tie_rank = np.arange(len(tie_order)) - tie_starts[tie_rows]
        admitted = tie_order[tie_rank < still_needed[tie_rows]]
        kept = np.concatenate((np.flatnonzero(sure), admitted))
    else:
        kept = np.flatnonzero(sure)

    # (3) order the kept ~10%: row asc, similarity desc, gid asc.
    order = kept[np.argsort(cols[kept], kind="stable")]
    sim_key = np.ascontiguousarray(neg[order])
    order = order[np.argsort(sim_key, kind="stable")]
    order = order[np.argsort(rows[order], kind="stable")]
    return cols[order], sims[order], kept_counts, complete


def _rank_rows(
    overlaps_sub: sparse.csr_matrix,
    row_gids: np.ndarray,
    sizes: np.ndarray,
    budget: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Rank a *subset* of rows, float-op-identical to :func:`_rank_prefix_loop`.

    ``overlaps_sub`` holds one row per entry of ``row_gids`` (the rows'
    products against the full membership matrix).  Used by
    :meth:`SimilarityIndex.apply_delta` to recompute only the rows a
    mutation touched; the same flat select-then-sort passes as
    :func:`_rank_prefix_block`, with local row indices mapped through
    ``row_gids`` for self-exclusion and size lookups — emitting the very
    same arithmetic as the full build is what makes delta maintenance
    bitwise-identical to a fresh rebuild.  Returns flat
    ``(ids, sims, kept_counts, complete)`` arrays (rows in ``row_gids``
    order).
    """
    sizes = np.asarray(sizes, dtype=np.float64)
    row_gids = np.asarray(row_gids, dtype=np.int64)
    n_rows = len(row_gids)
    entry_counts = np.diff(overlaps_sub.indptr)
    local = np.repeat(np.arange(n_rows, dtype=np.int64), entry_counts)
    cols = overlaps_sub.indices.astype(np.int64)
    inter = overlaps_sub.data.astype(np.float64)
    keep = cols != row_gids[local]  # a group is not its own neighbor
    local, cols, inter = local[keep], cols[keep], inter[keep]
    union = sizes[row_gids[local]] + sizes[cols] - inter
    sims = np.where(union > 0, inter / np.where(union > 0, union, 1.0), 0.0)
    neg = -sims
    counts = np.bincount(local, minlength=n_rows).astype(np.int64)
    starts = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    kept_counts = np.minimum(counts, budget)
    complete = counts <= budget

    # Per-row selection threshold (the budget-th best negated similarity)
    # via one padded partition per power-of-two length bucket — the exact
    # scheme of :func:`_rank_prefix_block`.
    threshold = np.full(n_rows, np.inf)
    over = np.flatnonzero(counts > budget)
    if len(over):
        buckets = np.maximum(
            np.ceil(np.log2(counts[over])).astype(np.int64), 0
        )
        for bucket in np.unique(buckets):
            selected = over[buckets == bucket]
            width = 1 << int(bucket)
            lengths = counts[selected]
            row_index = np.repeat(np.arange(len(selected)), lengths)
            within = np.arange(lengths.sum()) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            source = np.repeat(starts[selected], lengths) + within
            padded = np.full((len(selected), width), np.inf)
            padded[row_index, within] = neg[source]
            threshold[selected] = np.partition(padded, budget - 1, axis=-1)[
                :, budget - 1
            ]

    # Keep strictly-better entries, admit threshold ties in neighbor-gid
    # order until each row's budget is exact.
    row_threshold = threshold[local]
    sure = neg < row_threshold
    still_needed = kept_counts - np.bincount(local[sure], minlength=n_rows)
    tie_positions = np.flatnonzero(neg == row_threshold)
    if len(tie_positions):
        tie_order = tie_positions[
            np.argsort(cols[tie_positions], kind="stable")
        ]
        tie_order = tie_order[np.argsort(local[tie_order], kind="stable")]
        tie_rows = local[tie_order]
        tie_counts = np.bincount(tie_rows, minlength=n_rows)
        tie_starts = np.concatenate(([0], np.cumsum(tie_counts)))
        tie_rank = np.arange(len(tie_order)) - tie_starts[tie_rows]
        admitted = tie_order[tie_rank < still_needed[tie_rows]]
        kept = np.concatenate((np.flatnonzero(sure), admitted))
    else:
        kept = np.flatnonzero(sure)

    # Order the kept entries: row asc, similarity desc, gid asc.
    order = kept[np.argsort(cols[kept], kind="stable")]
    sim_key = np.ascontiguousarray(neg[order])
    order = order[np.argsort(sim_key, kind="stable")]
    order = order[np.argsort(local[order], kind="stable")]
    return cols[order], sims[order], kept_counts, complete


def _rank_rows_threaded(
    overlaps_sub: sparse.csr_matrix,
    row_gids: np.ndarray,
    sizes: np.ndarray,
    budget: int,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """:func:`_rank_rows` over roughly equal-nnz row blocks on a pool.

    The subset analogue of :func:`_rank_prefix_vectorized`'s blocking:
    numpy's sort/partition kernels release the GIL, so blocks overlap on
    real cores.  Per-block results concatenate back in row order, so the
    output is identical to a single-block call.
    """
    n_rows = len(row_gids)
    if workers is None:
        workers = _rank_workers()
    total_nnz = int(overlaps_sub.indptr[-1])
    n_blocks = max(1, min(n_rows, -(-total_nnz // _RANK_BLOCK_NNZ)))
    if workers <= 1 or n_blocks <= 1:
        return _rank_rows(overlaps_sub, row_gids, sizes, budget)
    bounds = np.searchsorted(
        overlaps_sub.indptr[1:],
        np.linspace(0, total_nnz, n_blocks + 1)[1:-1],
        side="left",
    )
    edges = np.unique(np.concatenate(([0], bounds + 1, [n_rows]))).astype(
        np.int64
    )
    spans = [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]

    def rank(span: tuple[int, int]):
        return _rank_rows(
            overlaps_sub[span[0] : span[1]],
            row_gids[span[0] : span[1]],
            sizes,
            budget,
        )

    with ThreadPoolExecutor(max_workers=workers) as pool:
        parts = list(pool.map(rank, spans))
    return (
        np.concatenate([part[0] for part in parts]),
        np.concatenate([part[1] for part in parts]),
        np.concatenate([part[2] for part in parts]),
        np.concatenate([part[3] for part in parts]),
    )


def _rank_workers() -> int:
    """Ranking worker threads: one per core, capped (numpy sorts drop the GIL)."""
    return max(1, min(8, os.cpu_count() or 1))


def _rank_prefix_vectorized(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched ranking of every group's neighbors, blocked over the CSR.

    ``overlaps`` is the |G|×|G| sparse self-product of the membership
    matrix (positive intersection sizes only).  Rows are split into
    roughly equal-nnz blocks; each block is ranked by the flat
    select-then-sort pass of :func:`_rank_prefix_block`, on a thread pool
    when more than one core (and block) is available — numpy's sort,
    partition and ufunc kernels release the GIL, so blocks genuinely
    overlap.  Returns the flat prefix arrays
    ``(ids, sims, indptr, complete)``; ordering per group matches
    :func:`_rank_prefix_loop` exactly: similarity descending, neighbor
    gid ascending.
    """
    n_groups = overlaps.shape[0]
    sizes = np.asarray(sizes, dtype=np.float64)
    if n_groups == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=bool),
        )
    if workers is None:
        workers = _rank_workers()
    total_nnz = int(overlaps.indptr[-1])
    n_blocks = max(1, min(n_groups, -(-total_nnz // _RANK_BLOCK_NNZ)))
    bounds = np.searchsorted(
        overlaps.indptr[1:],
        np.linspace(0, total_nnz, n_blocks + 1)[1:-1],
        side="left",
    )
    edges = np.unique(
        np.concatenate(([0], bounds + 1, [n_groups]))
    ).astype(np.int64)
    spans = [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]

    def rank(span: tuple[int, int]):
        return _rank_prefix_block(overlaps, sizes, budget, span[0], span[1])

    if workers > 1 and len(spans) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(rank, spans))
    else:
        parts = [rank(span) for span in spans]
    ids = np.concatenate([part[0] for part in parts])
    sims = np.concatenate([part[1] for part in parts])
    kept_counts = np.concatenate([part[2] for part in parts])
    complete = np.concatenate([part[3] for part in parts])
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=indptr[1:])
    return ids, sims, indptr, complete


def _rank_prefix_loop(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The retained per-group-loop ranking (parity oracle + bench baseline).

    Walks the CSR buffers one group at a time and lexsorts each row
    individually — the pre-runtime ``_build`` behaviour.  Kept so the test
    suite can assert the batched ranking is a pure performance change and
    so ``benchmarks/run_perf.py`` can record the build-time speedup.
    """
    n_groups = overlaps.shape[0]
    sizes = np.asarray(sizes, dtype=np.float64)
    indptr_in = overlaps.indptr
    all_indices = overlaps.indices
    all_data = overlaps.data
    id_chunks: list[np.ndarray] = []
    sim_chunks: list[np.ndarray] = []
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    complete = np.zeros(n_groups, dtype=bool)
    for group in range(n_groups):
        start, end = indptr_in[group], indptr_in[group + 1]
        neighbor_ids = all_indices[start:end].astype(np.int64)
        inter = all_data[start:end].astype(np.float64)
        keep = neighbor_ids != group
        neighbor_ids = neighbor_ids[keep]
        inter = inter[keep]
        if len(neighbor_ids) == 0:
            indptr[group + 1] = indptr[group]
            complete[group] = True
            continue
        union = sizes[group] + sizes[neighbor_ids] - inter
        similarity = np.where(union > 0, inter / np.where(union > 0, union, 1.0), 0.0)
        order = np.lexsort((neighbor_ids, -similarity))
        complete[group] = len(order) <= budget
        order = order[:budget]
        id_chunks.append(neighbor_ids[order])
        sim_chunks.append(similarity[order])
        indptr[group + 1] = indptr[group] + len(order)
    ids = (
        np.concatenate(id_chunks) if id_chunks else np.empty(0, dtype=np.int64)
    )
    sims = (
        np.concatenate(sim_chunks)
        if sim_chunks
        else np.empty(0, dtype=np.float64)
    )
    return ids, sims, indptr, complete


class SimilarityIndex:
    """Jaccard-ranked neighbor lists for a set of groups, partially stored.

    ``memberships`` is one sorted user-index array per group.  Ties in
    similarity are broken by ascending group id so rankings are
    deterministic and the materialized prefix is a true prefix of the exact
    ranking (a property the test suite checks).

    Instances are immutable after construction apart from two lazy,
    idempotent caches (the membership matrix and the exact-ranking memo),
    which is what allows one index to be shared read-only across all the
    concurrent sessions of a :class:`~repro.core.runtime.GroupSpaceRuntime`.
    """

    def __init__(
        self,
        memberships: list[np.ndarray],
        n_users: int,
        materialize_fraction: float = 0.10,
    ) -> None:
        if not 0 < materialize_fraction <= 1:
            raise ValueError("materialize_fraction must be in (0, 1]")
        self.n_groups = len(memberships)
        self.n_users = n_users
        self.materialize_fraction = materialize_fraction
        self._memberships = [
            np.asarray(members, dtype=np.int64) for members in memberships
        ]
        self._sizes = np.array([len(members) for members in self._memberships])
        self._exact_cache: dict[int, list[Neighbor]] = {}
        self._build()

    @classmethod
    def from_arrays(
        cls,
        memberships: list[np.ndarray],
        n_users: int,
        materialize_fraction: float,
        *,
        prefix_ids: np.ndarray,
        prefix_sims: np.ndarray,
        prefix_indptr: np.ndarray,
        prefix_complete: np.ndarray,
        reserve_ids: np.ndarray,
        reserve_sims: np.ndarray,
        reserve_indptr: np.ndarray,
        tail_complete: np.ndarray,
        csr_indices: Optional[np.ndarray] = None,
        csr_indptr: Optional[np.ndarray] = None,
    ) -> "SimilarityIndex":
        """An index over pre-ranked flat arrays, without building anything.

        The zero-copy attach constructor: the caller (a shared-memory
        arena, a store loader) already holds the prefix/reserve rankings
        this index would compute in ``_build``, so they are adopted
        as-is — typically read-only views over a shared buffer.  The
        membership matrix stays lazy (same path store-restored indexes
        use); when ``csr_indices``/``csr_indptr`` are given it is later
        assembled straight over those pooled buffers instead of
        re-concatenating the member arrays.
        """
        if not 0 < materialize_fraction <= 1:
            raise ValueError("materialize_fraction must be in (0, 1]")
        new = cls.__new__(cls)
        new.n_groups = len(memberships)
        new.n_users = n_users
        new.materialize_fraction = materialize_fraction
        new._memberships = [
            np.asarray(members, dtype=np.int64) for members in memberships
        ]
        new._sizes = np.array([len(members) for members in new._memberships])
        new._exact_cache = {}
        new._matrix = None
        if csr_indices is not None and csr_indptr is not None:
            new._csr_source = (csr_indices, csr_indptr)
        for label, indptr, ids, sims in (
            ("prefix", prefix_indptr, prefix_ids, prefix_sims),
            ("reserve", reserve_indptr, reserve_ids, reserve_sims),
        ):
            if len(indptr) != new.n_groups + 1:
                raise ValueError(
                    f"{label} indptr covers {len(indptr) - 1} groups, "
                    f"memberships cover {new.n_groups}"
                )
            if len(ids) != len(sims) or int(indptr[-1]) != len(ids):
                raise ValueError(f"{label} arrays are inconsistent")
        new._prefix_ids = prefix_ids
        new._prefix_sims = prefix_sims
        new._prefix_indptr = prefix_indptr
        new._prefix_complete = prefix_complete
        new._reserve_ids = reserve_ids
        new._reserve_sims = reserve_sims
        new._reserve_indptr = reserve_indptr
        new._tail_complete = tail_complete
        return new

    # ------------------------------------------------------------------

    def _build(self) -> None:
        matrix = self._membership_matrix()
        self._matrix = matrix
        overlaps = (matrix @ matrix.T).tocsr()
        budget = self._budget()
        wide = _rank_prefix_vectorized(
            overlaps, self._sizes, budget + _RESERVE_DEPTH
        )
        (
            self._prefix_ids,
            self._prefix_sims,
            self._prefix_indptr,
            self._prefix_complete,
            self._reserve_ids,
            self._reserve_sims,
            self._reserve_indptr,
            self._tail_complete,
        ) = _split_reserve(*wide, budget)

    def _membership_matrix(self) -> sparse.csr_matrix:
        return membership_matrix(self._memberships, self.n_users)

    def _ensure_matrix(self) -> sparse.csr_matrix:
        """The pooled membership matrix, rebuilt when absent.

        Indexes restored by :func:`repro.core.store.load_index` skip
        ``_build`` and only materialize the matrix on the first exact
        lookup.
        """
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            source = getattr(self, "_csr_source", None)
            if source is not None:
                from repro.core.similarity import membership_matrix_from_csr

                indices, indptr = source
                matrix = membership_matrix_from_csr(
                    indices, indptr, self.n_users
                )
            else:
                matrix = self._membership_matrix()
            self._matrix = matrix
        return matrix

    def membership_csr(self) -> sparse.csr_matrix:
        """The pooled group×user membership matrix the index is built from.

        Public accessor so downstream machinery — notably
        :class:`repro.core.poolcache.PoolStatsCache` and the
        :class:`~repro.core.runtime.GroupSpaceRuntime` that hands it to
        every session — can slice candidate pools out of the
        already-materialized rows instead of rebuilding a fresh CSR per
        click.  Rebuilt lazily for indexes restored from a store (same
        path exact lookups use).
        """
        return self._ensure_matrix()

    def _budget(self) -> int:
        """Entries materialized per group: fraction of |G| − 1, at least 1."""
        if self.n_groups <= 1:
            return 1
        return max(1, int(np.ceil(self.materialize_fraction * (self.n_groups - 1))))

    def _prefix_slice(self, group: int) -> tuple[np.ndarray, np.ndarray]:
        start = self._prefix_indptr[group]
        end = self._prefix_indptr[group + 1]
        return self._prefix_ids[start:end], self._prefix_sims[start:end]

    @staticmethod
    def _as_neighbors(ids: np.ndarray, sims: np.ndarray) -> list[Neighbor]:
        return [
            Neighbor(int(group), float(similarity))
            for group, similarity in zip(ids.tolist(), sims.tolist())
        ]

    # ------------------------------------------------------------------
    # delta maintenance (epoched store mutation)
    # ------------------------------------------------------------------

    def apply_delta(
        self,
        new_memberships: list[np.ndarray],
        changed_new_gids: np.ndarray,
        changed_old_gids: np.ndarray,
        old_to_new: np.ndarray,
    ) -> "SimilarityIndex":
        """A new index for the mutated space, recomputing only touched rows.

        ``self`` stays untouched (old-epoch readers keep serving from it);
        the returned instance is bitwise-identical — prefix ids, sims,
        indptr and complete flags — to
        ``SimilarityIndex(new_memberships, n_users, materialize_fraction)``,
        a property the delta-parity fuzz suite and the perf harness's
        ``mutation`` gate both assert against that full-rebuild oracle.

        Three tiers of work, cheapest first:

        - *Remap*: rows no changed group touches keep their prefix with
          gids remapped through ``old_to_new`` (order-preserving
          compaction keeps the (sim desc, gid asc) order valid by
          construction), truncated when the per-row budget shrank.
        - *Surgical repair*: rows that gained/lost/changed a pair with a
          changed group re-rank from *known* entries — the stored prefix
          minus stale changed-pair entries, plus the freshly computed
          changed-pair similarities.  Exact whenever the merged list's
          budget-th entry still dominates the stored prefix's old
          boundary (every unstored neighbor ranks strictly below that
          boundary, so none can enter), and the complete flag is
          decidable (complete rows know all their neighbors; incomplete
          rows stay incomplete when they lost no more pairs than they
          gained).
        - *Full recompute*: the changed/added rows themselves, plus the
          repairs whose exactness condition fails — their row products
          are re-ranked with the full build's arithmetic.
        """
        changed_new_gids = np.asarray(changed_new_gids, dtype=np.int64)
        changed_old_gids = np.asarray(changed_old_gids, dtype=np.int64)
        old_to_new = np.asarray(old_to_new, dtype=np.int64)
        if len(old_to_new) != self.n_groups:
            raise ValueError(
                f"old_to_new covers {len(old_to_new)} gids, index has {self.n_groups}"
            )

        new = SimilarityIndex.__new__(SimilarityIndex)
        new.n_groups = len(new_memberships)
        new.n_users = self.n_users
        new.materialize_fraction = self.materialize_fraction
        new._memberships = [
            np.asarray(members, dtype=np.int64) for members in new_memberships
        ]
        new._sizes = np.array([len(members) for members in new._memberships])
        new._exact_cache = {}
        new._matrix = new._membership_matrix()
        if new.n_groups == 0:
            new._prefix_ids = np.empty(0, dtype=np.int64)
            new._prefix_sims = np.empty(0, dtype=np.float64)
            new._prefix_indptr = np.zeros(1, dtype=np.int64)
            new._prefix_complete = np.zeros(0, dtype=bool)
            new._reserve_ids = np.empty(0, dtype=np.int64)
            new._reserve_sims = np.empty(0, dtype=np.float64)
            new._reserve_indptr = np.zeros(1, dtype=np.int64)
            new._tail_complete = np.zeros(0, dtype=bool)
            return new

        budget_old = self._budget()
        budget_new = new._budget()
        n_old, n_new = self.n_groups, new.n_groups
        sizes_new = new._sizes.astype(np.float64)
        old_pcounts = np.diff(self._prefix_indptr)
        old_rcounts = np.diff(self._reserve_indptr)
        old_scounts = old_pcounts + old_rcounts
        tail_old = self._tail_complete

        recompute = np.zeros(n_new, dtype=bool)
        recompute[changed_new_gids] = True
        survivors = np.flatnonzero(old_to_new >= 0)
        new_to_old = np.full(n_new, -1, dtype=np.int64)
        new_to_old[old_to_new[survivors]] = survivors
        if budget_new != budget_old:
            # A changed per-row budget reshapes every prefix; rows whose
            # stored entries (prefix + reserve) cannot fill the new
            # prefix must recompute, the rest reshape via repair below.
            short = (~tail_old) & (old_scounts < budget_new)
            short_new = old_to_new[np.flatnonzero(short)]
            recompute[short_new[short_new >= 0]] = True

        # Stale changed-pair entries inside each stored row (prefix and
        # reserve; they get dropped during repair, and a count > 0 marks
        # the row as touched).
        stale_old = np.zeros(n_old, dtype=bool)
        stale_old[changed_old_gids] = True
        stale_in_stored = np.zeros(n_old, dtype=np.int64)
        for arr_ids, arr_indptr, arr_counts in (
            (self._prefix_ids, self._prefix_indptr, old_pcounts),
            (self._reserve_ids, self._reserve_indptr, old_rcounts),
        ):
            if len(arr_ids):
                flags = stale_old[arr_ids].astype(np.int64)
                nonempty = np.flatnonzero(arr_counts > 0)
                if len(nonempty):
                    stale_in_stored[nonempty] += np.add.reduceat(
                        flags, arr_indptr[nonempty]
                    )

        # Deepest stored boundary per old row (the last reserve entry, or
        # the last prefix entry when the reserve is empty) — every
        # unstored neighbor of a tail-truncated row ranks strictly below
        # it.  Candidates falling below it are output no-ops, and the
        # repair exactness test measures against it.
        bnd_sim_old = np.full(n_old, -np.inf)
        bnd_gid_old = np.zeros(n_old, dtype=np.int64)
        stored_any = old_scounts > 0
        has_res = old_rcounts > 0
        at_r = (self._reserve_indptr[:-1] + old_rcounts - 1)[has_res]
        bnd_sim_old[has_res] = self._reserve_sims[at_r]
        bnd_gid_old[has_res] = self._reserve_ids[at_r]
        only_p = stored_any & ~has_res
        at_p = (self._prefix_indptr[:-1] + old_pcounts - 1)[only_p]
        bnd_sim_old[only_p] = self._prefix_sims[at_p]
        bnd_gid_old[only_p] = self._prefix_ids[at_p]
        # The boundary gid in *new* space: unstored survivors with old
        # gid above the boundary land strictly above this value after
        # order-preserving compaction.
        survived_below = np.cumsum(old_to_new >= 0)
        mapped_b = old_to_new[bnd_gid_old]
        bnd_gid_new = np.where(
            stored_any & (mapped_b >= 0),
            mapped_b,
            np.where(stored_any, survived_below[bnd_gid_old] - 1, 0),
        )

        # Per-row lost/gained pair counts against the changed groups, and
        # the changed-pair candidate entries (row, changed gid, fresh
        # similarity — the very arithmetic of the full build, so repaired
        # entries are bitwise-identical to recomputed ones).
        old_matrix = self._ensure_matrix()
        changed_pos = {int(g): k for k, g in enumerate(changed_new_gids)}
        changed_old_pos = {int(g): j for j, g in enumerate(changed_old_gids)}
        lost = np.zeros(n_new, dtype=np.int64)
        gained = np.zeros(n_new, dtype=np.int64)
        scratch = np.zeros(max(n_new, n_old) + 1, dtype=bool)
        ov_new = ov_old = None
        if len(changed_new_gids):
            ov_new = (new._matrix @ new._matrix[changed_new_gids].T).tocsc()
        if len(changed_old_gids):
            ov_old = (old_matrix @ old_matrix[changed_old_gids].T).tocsc()
            for j, g_old in enumerate(changed_old_gids):
                rows_o = ov_old.indices[ov_old.indptr[j] : ov_old.indptr[j + 1]]
                rows_o = rows_o[rows_o != g_old]
                mapped = old_to_new[rows_o]
                mapped = mapped[mapped >= 0]
                if not len(mapped):
                    continue
                g_new = old_to_new[g_old]
                col = changed_pos.get(int(g_new), -1) if g_new >= 0 else -1
                if col < 0:
                    lost[mapped] += 1  # the group is gone: every pair lost
                    continue
                rows_n = ov_new.indices[
                    ov_new.indptr[col] : ov_new.indptr[col + 1]
                ]
                scratch[rows_n] = True
                lost[mapped[~scratch[mapped]]] += 1
                scratch[rows_n] = False
        cand_rows_parts: list[np.ndarray] = []
        cand_gids_parts: list[np.ndarray] = []
        cand_sims_parts: list[np.ndarray] = []
        if ov_new is not None:
            for col, g_new in enumerate(changed_new_gids):
                start, end = ov_new.indptr[col], ov_new.indptr[col + 1]
                rows_n = ov_new.indices[start:end].astype(np.int64)
                inters = ov_new.data[start:end].astype(np.float64)
                keep = rows_n != g_new
                rows_n, inters = rows_n[keep], inters[keep]
                if not len(rows_n):
                    continue
                union = sizes_new[rows_n] + sizes_new[g_new] - inters
                sims = np.where(
                    union > 0, inters / np.where(union > 0, union, 1.0), 0.0
                )
                cand_rows_parts.append(rows_n)
                cand_gids_parts.append(
                    np.full(len(rows_n), g_new, dtype=np.int64)
                )
                cand_sims_parts.append(sims)
                g_old = new_to_old[g_new]
                if g_old < 0:
                    gained[rows_n] += 1  # brand-new group: every pair gained
                    continue
                j = changed_old_pos[int(g_old)]
                rows_o = ov_old.indices[ov_old.indptr[j] : ov_old.indptr[j + 1]]
                mapped = old_to_new[rows_o[rows_o != g_old]]
                mapped = mapped[mapped >= 0]
                scratch[mapped] = True
                gained[rows_n[~scratch[rows_n]]] += 1
                scratch[mapped] = False
        if cand_rows_parts:
            cand_rows = np.concatenate(cand_rows_parts)
            cand_gids = np.concatenate(cand_gids_parts)
            cand_sims = np.concatenate(cand_sims_parts)
        else:
            cand_rows = np.empty(0, dtype=np.int64)
            cand_gids = np.empty(0, dtype=np.int64)
            cand_sims = np.empty(0, dtype=np.float64)
        if len(cand_rows):
            # Drop candidates strictly below their row's stored boundary
            # on tail-truncated rows: they can enter neither the new
            # prefix nor the provable reserve.  (Tail-complete rows keep
            # every candidate — a new pair is a new true neighbor there.)
            row_old = new_to_old[cand_rows]
            surv = row_old >= 0
            safe = np.where(surv, row_old, 0)
            droppable = (
                surv
                & ~tail_old[safe]
                & stored_any[safe]
                & (
                    (cand_sims < bnd_sim_old[safe])
                    | (
                        (cand_sims == bnd_sim_old[safe])
                        & (cand_gids > bnd_gid_new[safe])
                    )
                )
            )
            if droppable.any():
                keep_cand = ~droppable
                cand_rows = cand_rows[keep_cand]
                cand_gids = cand_gids[keep_cand]
                cand_sims = cand_sims[keep_cand]

        # Touched survivors: anything with a stale stored entry, a lost
        # pair, a fresh changed-pair similarity to consider, or a
        # reshaped per-row budget.
        stale_new = np.zeros(n_new, dtype=np.int64)
        stale_new[old_to_new[survivors]] = stale_in_stored[survivors]
        has_candidate = np.zeros(n_new, dtype=bool)
        has_candidate[cand_rows] = True
        touched = (
            (
                (stale_new > 0)
                | (lost > 0)
                | has_candidate
                | (budget_new != budget_old)
            )
            & (new_to_old >= 0)
            & ~recompute
        )
        # A tail-truncated row that lost more pairs than its reserve and
        # gains can absorb may drop to <= budget true neighbors — the
        # complete flag is undecidable from stored state, so recompute.
        tail_t = np.zeros(n_new, dtype=bool)
        tail_t[old_to_new[survivors]] = tail_old[survivors]
        rcount_t = np.zeros(n_new, dtype=np.int64)
        rcount_t[old_to_new[survivors]] = old_rcounts[survivors]
        recompute |= (
            touched
            & ~tail_t
            & (lost - gained > (budget_old - budget_new) + rcount_t)
        )
        touched &= ~recompute

        # Surgical repair: merge each touched row's kept stored entries
        # (prefix plus reserve, one contiguous ranking) with its fresh
        # changed-pair similarities.  The kept entries are already in
        # (sim desc, gid asc) order and the candidates are few, so this
        # is a vectorized delete-then-binary-insert — no re-sort of the
        # surviving bulk.
        repair = np.flatnonzero(touched)
        m_gids = np.empty(0, dtype=np.int64)
        m_sims = np.empty(0, dtype=np.float64)
        m_counts = np.zeros(len(repair), dtype=np.int64)
        m_bounds = np.zeros(len(repair) + 1, dtype=np.int64)
        repair_slot = np.full(n_new, -1, dtype=np.int64)
        rep_tail = np.zeros(0, dtype=bool)
        res_counts = np.zeros(0, dtype=np.int64)
        res_bounds = np.zeros(1, dtype=np.int64)
        res_ids = np.empty(0, dtype=np.int64)
        res_sims = np.empty(0, dtype=np.float64)
        if len(repair):
            repair_slot[repair] = np.arange(len(repair))
            old_rows = new_to_old[repair]
            counts_r = old_scounts[old_rows].astype(np.int64)
            pcounts_r = old_pcounts[old_rows].astype(np.int64)
            rep_tail = tail_old[old_rows]
            total = int(counts_r.sum())
            local = np.repeat(np.arange(len(repair), dtype=np.int64), counts_r)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.cumsum(counts_r) - counts_r, counts_r
            )
            in_p = within < np.repeat(pcounts_r, counts_r)
            stored_ids = np.empty(total, dtype=np.int64)
            stored_sims = np.empty(total, dtype=np.float64)
            src_p = np.repeat(self._prefix_indptr[old_rows], counts_r) + within
            src_r = (
                np.repeat(self._reserve_indptr[old_rows] - pcounts_r, counts_r)
                + within
            )
            stored_ids[in_p] = self._prefix_ids[src_p[in_p]]
            stored_sims[in_p] = self._prefix_sims[src_p[in_p]]
            stored_ids[~in_p] = self._reserve_ids[src_r[~in_p]]
            stored_sims[~in_p] = self._reserve_sims[src_r[~in_p]]
            keep_entry = ~stale_old[stored_ids]
            loc_kept = local[keep_entry]
            gid_kept = old_to_new[stored_ids[keep_entry]]
            sim_kept = stored_sims[keep_entry]
            kcounts = np.bincount(loc_kept, minlength=len(repair))
            kbounds = np.zeros(len(repair) + 1, dtype=np.int64)
            np.cumsum(kcounts, out=kbounds[1:])
            apos = np.arange(len(loc_kept), dtype=np.int64) - kbounds[loc_kept]

            cand_loc = repair_slot[cand_rows]
            sel = cand_loc >= 0
            c_loc, c_gid, c_sim = cand_loc[sel], cand_gids[sel], cand_sims[sel]
            corder = np.lexsort((c_gid, -c_sim, c_loc))
            c_loc, c_gid, c_sim = c_loc[corder], c_gid[corder], c_sim[corder]
            ccounts = np.bincount(c_loc, minlength=len(repair))
            cbounds = np.zeros(len(repair) + 1, dtype=np.int64)
            np.cumsum(ccounts, out=cbounds[1:])
            cwithin = np.arange(len(c_loc), dtype=np.int64) - cbounds[c_loc]

            # Each candidate's insertion index among its row's kept
            # entries under (sim desc, gid asc): one batched binary
            # search over all candidates at once.
            lo = kbounds[c_loc].copy()
            hi = lo + kcounts[c_loc]
            while np.any(lo < hi):
                mid = (lo + hi) >> 1
                active = lo < hi
                probe = np.where(active, mid, 0)
                ranks_before = (sim_kept[probe] > c_sim) | (
                    (sim_kept[probe] == c_sim) & (gid_kept[probe] < c_gid)
                )
                go_right = active & ranks_before
                lo = np.where(go_right, mid + 1, lo)
                hi = np.where(active & ~ranks_before, mid, hi)
            cpos = lo - kbounds[c_loc]

            # Kept entries shift right by the number of candidates that
            # insert at or before their index (padded per-row histogram
            # of insertion points, prefix-summed in one pass).
            pbounds = np.zeros(len(repair) + 1, dtype=np.int64)
            np.cumsum(kcounts + 1, out=pbounds[1:])
            pad = np.zeros(int(pbounds[-1]), dtype=np.int64)
            np.add.at(pad, pbounds[c_loc] + cpos, 1)
            running = np.cumsum(pad)
            seg_base = running[pbounds[:-1]] - pad[pbounds[:-1]]
            shift = running[pbounds[loc_kept] + apos] - seg_base[loc_kept]

            m_counts = kcounts + ccounts
            np.cumsum(m_counts, out=m_bounds[1:])
            m_total = int(m_bounds[-1])
            m_gids = np.empty(m_total, dtype=np.int64)
            m_sims = np.empty(m_total, dtype=np.float64)
            kept_dst = m_bounds[loc_kept] + apos + shift
            m_gids[kept_dst] = gid_kept
            m_sims[kept_dst] = sim_kept
            cand_dst = m_bounds[c_loc] + cpos + cwithin
            m_gids[cand_dst] = c_gid
            m_sims[cand_dst] = c_sim

            # Exactness test for tail-truncated rows: the merged
            # budget-th entry must still dominate the deepest stored
            # boundary — every unstored neighbor ranks strictly below
            # that boundary, so only then can none of them belong in the
            # new prefix.  Tail-complete rows have no unstored neighbors
            # and are always exact.
            bnd_sim = np.full(len(repair), -np.inf)
            bnd_gid = np.zeros(len(repair), dtype=np.int64)
            needs_test = np.flatnonzero(~rep_tail)
            if len(needs_test):
                rows_t = old_rows[needs_test]
                last_sim = bnd_sim_old[rows_t]
                bound_gid = bnd_gid_new[rows_t]
                bnd_sim[needs_test] = last_sim
                bnd_gid[needs_test] = bound_gid
                have = m_counts[needs_test] >= budget_new
                entry_at = m_bounds[needs_test] + budget_new - 1
                entry_at = np.where(have, entry_at, 0)
                entry_sim = m_sims[entry_at] if len(m_sims) else np.zeros(
                    len(needs_test)
                )
                entry_gid = m_gids[entry_at] if len(m_gids) else np.zeros(
                    len(needs_test), dtype=np.int64
                )
                exact = have & (
                    (entry_sim > last_sim)
                    | ((entry_sim == last_sim) & (entry_gid <= bound_gid))
                )
                recompute[repair[needs_test[~exact]]] = True
                touched[repair[needs_test[~exact]]] = False

            # New reserves for repaired rows: merged entries just past
            # the prefix, kept while they still dominate the old stored
            # boundary (only those are provably the true next ranks;
            # tail-complete rows keep everything, capped at depth).
            navail = np.clip(m_counts - budget_new, 0, _RESERVE_DEPTH)
            res_bounds = np.zeros(len(repair) + 1, dtype=np.int64)
            np.cumsum(navail, out=res_bounds[1:])
            res_local = np.repeat(
                np.arange(len(repair), dtype=np.int64), navail
            )
            res_within = (
                np.arange(int(res_bounds[-1]), dtype=np.int64)
                - res_bounds[res_local]
            )
            res_src = m_bounds[res_local] + budget_new + res_within
            r_ids = m_gids[res_src]
            r_sims = m_sims[res_src]
            valid = (
                rep_tail[res_local]
                | (r_sims > bnd_sim[res_local])
                | ((r_sims == bnd_sim[res_local]) & (r_ids <= bnd_gid[res_local]))
            )
            # Validity is prefix-closed per row (entries are rank-sorted),
            # so the per-row valid count is just a bincount.
            res_counts = np.bincount(
                res_local[valid], minlength=len(repair)
            ).astype(np.int64)
            keep_res = valid
            res_ids = r_ids[keep_res]
            res_sims = r_sims[keep_res]
            res_bounds = np.zeros(len(repair) + 1, dtype=np.int64)
            np.cumsum(res_counts, out=res_bounds[1:])

        # Full recompute for the rows repair cannot reproduce exactly —
        # ranked one reserve deeper than the prefix so they come back
        # with fresh slack.
        fresh = np.flatnonzero(recompute)
        fresh_flat_ids = np.empty(0, dtype=np.int64)
        fresh_flat_sims = np.empty(0, dtype=np.float64)
        fresh_wide = np.zeros(len(fresh), dtype=np.int64)
        fresh_tail = np.zeros(0, dtype=bool)
        if len(fresh):
            overlaps_sub = (new._matrix[fresh] @ new._matrix.T).tocsr()
            fresh_flat_ids, fresh_flat_sims, fresh_wide, fresh_tail = (
                _rank_rows_threaded(
                    overlaps_sub,
                    fresh,
                    new._sizes,
                    budget_new + _RESERVE_DEPTH,
                )
            )
        fresh_pcounts = np.minimum(fresh_wide, budget_new)
        fresh_rcounts = fresh_wide - fresh_pcounts

        # Stitch (vectorized): fresh rows splice in, repaired rows take
        # their merged top-budget, kept rows carry over verbatim with
        # gids remapped (a changed budget routes every survivor through
        # repair, so kept rows never reshape).
        complete = np.zeros(n_new, dtype=bool)
        tail_complete = np.zeros(n_new, dtype=bool)
        counts_final = np.zeros(n_new, dtype=np.int64)
        r_counts_final = np.zeros(n_new, dtype=np.int64)
        repaired = touched  # repair rows that survived the exactness test
        kept_mask = ~recompute & ~repaired
        kept_rows = np.flatnonzero(kept_mask)
        kept_old = new_to_old[kept_rows]
        kept_counts = old_pcounts[kept_old].astype(np.int64)
        kept_rcounts = old_rcounts[kept_old].astype(np.int64)
        counts_final[kept_rows] = kept_counts
        r_counts_final[kept_rows] = kept_rcounts
        complete[kept_rows] = self._prefix_complete[kept_old]
        tail_complete[kept_rows] = tail_old[kept_old]
        rep_rows = np.flatnonzero(repaired)
        if len(rep_rows):
            rep_slots = repair_slot[rep_rows]
            rep_counts = np.minimum(m_counts[rep_slots], budget_new).astype(
                np.int64
            )
            counts_final[rep_rows] = rep_counts
            r_counts_final[rep_rows] = res_counts[rep_slots]
            # Tail-complete rows know every neighbor, so the merged count
            # is the true count; tail-truncated rows stay incomplete
            # (they lost no more pairs than their reserve and gains
            # could absorb).
            complete[rep_rows] = rep_tail[rep_slots] & (
                m_counts[rep_slots] <= budget_new
            )
            tail_complete[rep_rows] = rep_tail[rep_slots] & (
                m_counts[rep_slots] <= budget_new + _RESERVE_DEPTH
            )
        counts_final[fresh] = fresh_pcounts
        r_counts_final[fresh] = fresh_rcounts
        complete[fresh] = fresh_wide <= budget_new
        tail_complete[fresh] = fresh_tail
        indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(counts_final, out=indptr[1:])
        r_indptr = np.zeros(n_new + 1, dtype=np.int64)
        np.cumsum(r_counts_final, out=r_indptr[1:])
        out_ids = np.empty(int(indptr[-1]), dtype=np.int64)
        out_sims = np.empty(int(indptr[-1]), dtype=np.float64)
        out_r_ids = np.empty(int(r_indptr[-1]), dtype=np.int64)
        out_r_sims = np.empty(int(r_indptr[-1]), dtype=np.float64)

        def scatter(
            rows, counts, src_starts, src_ids, src_sims, remap, dst_indptr,
            dst_ids, dst_sims,
        ):
            if not len(rows):
                return
            n = int(counts.sum())
            within = np.arange(n, dtype=np.int64) - np.repeat(
                np.cumsum(counts) - counts, counts
            )
            src = np.repeat(src_starts, counts) + within
            dst = np.repeat(dst_indptr[rows], counts) + within
            dst_ids[dst] = remap[src_ids[src]] if remap is not None else src_ids[src]
            dst_sims[dst] = src_sims[src]

        scatter(
            kept_rows, kept_counts, self._prefix_indptr[kept_old],
            self._prefix_ids, self._prefix_sims, old_to_new,
            indptr, out_ids, out_sims,
        )
        scatter(
            kept_rows, kept_rcounts, self._reserve_indptr[kept_old],
            self._reserve_ids, self._reserve_sims, old_to_new,
            r_indptr, out_r_ids, out_r_sims,
        )
        if len(rep_rows):
            scatter(
                rep_rows, rep_counts, m_bounds[rep_slots],
                m_gids, m_sims, None,
                indptr, out_ids, out_sims,
            )
            scatter(
                rep_rows, res_counts[rep_slots], res_bounds[rep_slots],
                res_ids, res_sims, None,
                r_indptr, out_r_ids, out_r_sims,
            )
        if len(fresh):
            fresh_starts = np.zeros(len(fresh), dtype=np.int64)
            np.cumsum(fresh_wide[:-1], out=fresh_starts[1:])
            scatter(
                fresh, fresh_pcounts, fresh_starts,
                fresh_flat_ids, fresh_flat_sims, None,
                indptr, out_ids, out_sims,
            )
            scatter(
                fresh, fresh_rcounts, fresh_starts + fresh_pcounts,
                fresh_flat_ids, fresh_flat_sims, None,
                r_indptr, out_r_ids, out_r_sims,
            )
        new._prefix_ids = out_ids
        new._prefix_sims = out_sims
        new._prefix_indptr = indptr
        new._prefix_complete = complete
        new._reserve_ids = out_r_ids
        new._reserve_sims = out_r_sims
        new._reserve_indptr = r_indptr
        new._tail_complete = tail_complete
        return new

    def parity_with(self, other: "SimilarityIndex") -> bool:
        """Bitwise prefix parity with another index (the rebuild oracle)."""
        return (
            self.n_groups == other.n_groups
            and np.array_equal(self._prefix_indptr, other._prefix_indptr)
            and np.array_equal(self._prefix_ids, other._prefix_ids)
            and np.array_equal(self._prefix_sims, other._prefix_sims)
            and np.array_equal(self._prefix_complete, other._prefix_complete)
        )

    # ------------------------------------------------------------------

    def neighbors(self, group: int, k: Optional[int] = None) -> list[Neighbor]:
        """Top-``k`` most similar groups from the materialized prefix.

        When ``k`` exceeds the prefix and the prefix is incomplete, falls
        back to :meth:`exact_neighbors` (on-demand computation) — the
        behaviour the paper's 10% materialization relies on being rare.
        """
        ids, sims = self._prefix_slice(group)
        if k is None:
            return self._as_neighbors(ids, sims)
        if k <= len(ids) or self._prefix_complete[group]:
            return self._as_neighbors(ids[:k], sims[:k])
        return self.exact_neighbors(group)[:k]

    def materialized_neighbors(self, group: int) -> list[Neighbor]:
        """The raw materialized prefix, with no exact-computation fallback.

        Experiment C3 measures recall of exactly this list; normal
        navigation should use :meth:`neighbors`.
        """
        return self._as_neighbors(*self._prefix_slice(group))

    def exact_neighbors(self, group: int) -> list[Neighbor]:
        """The full exact ranking for one group (cached after first call).

        One sparse row product against the membership matrix yields every
        positive-overlap intersection size at once; groups sharing no
        member have similarity 0 and never appear in the ranking.
        """
        cached = self._exact_cache.get(group)
        if cached is not None:
            return cached
        matrix = self._ensure_matrix()
        row = (matrix.getrow(group) @ matrix.T).tocoo()
        neighbor_ids = row.col
        inter = row.data.astype(np.float64)
        keep = neighbor_ids != group
        neighbor_ids = neighbor_ids[keep]
        inter = inter[keep]
        unions = float(self._sizes[group]) + self._sizes[neighbor_ids] - inter
        similarities = np.where(unions > 0, inter / np.where(unions > 0, unions, 1.0), 0.0)
        positive = similarities > 0.0
        neighbor_ids = neighbor_ids[positive]
        similarities = similarities[positive]
        order = np.lexsort((neighbor_ids, -similarities))
        ranking = [
            Neighbor(int(neighbor_ids[i]), float(similarities[i])) for i in order
        ]
        self._exact_cache[group] = ranking
        return ranking

    def similarity(self, left: int, right: int) -> float:
        """Exact Jaccard similarity between two groups' member sets."""
        if left == right:
            return 1.0
        members = self._memberships[left]
        inter = len(np.intersect1d(members, self._memberships[right]))
        union = len(members) + self._sizes[right] - inter
        return inter / union if union else 0.0

    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """Total materialized (group, neighbor) entries — the C3 memory axis."""
        return int(len(self._prefix_ids))

    def prefix_length(self, group: int) -> int:
        return int(
            self._prefix_indptr[group + 1] - self._prefix_indptr[group]
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex({self.n_groups} groups, "
            f"{self.materialize_fraction:.0%} materialized, "
            f"{self.memory_entries()} entries)"
        )
