"""Per-group inverted similarity index with partial materialization.

VEXUS §II-A: *"For efficient navigation in the space of groups, we build an
inverted index per group g ∈ G that contains all groups in G − {g} in
decreasing order of their similarity to g.  We use the Jaccard distance ...
To reduce both time and space complexity, we only materialize 10% of each
inverted index which is shown in [14] to be adequate."*

Construction computes all positive-overlap Jaccard similarities through one
sparse membership matrix product (groups sharing no member have similarity
0 and — per the paper's group graph — no edge, so they never need ranking),
then keeps only the top ``materialize_fraction`` of each group's ranking.
Lookups beyond the materialized prefix can either fall back to an exact
on-demand computation or report truncation, depending on the caller.

Since the serving-runtime refactor the ranking itself is *batched*: row
blocks of the pooled CSR product are ranked by a flat select-then-sort
pass (per-block threshold selection via one padded ``np.partition``, an
exact tie repair, then one lexsort of only the kept ~10%), blocks run on
a worker pool when cores allow, and the materialized prefixes live in
flat ``(ids, sims, indptr)`` arrays instead of per-group
:class:`Neighbor` lists.  That is what lets one
:class:`~repro.core.runtime.GroupSpaceRuntime` build the index for a very
large group space once and serve it to every session.  The per-group loop
is retained as :func:`_rank_prefix_loop` — the parity oracle for the
batched ranking and the baseline the perf harness measures the build
speedup against.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.similarity import membership_matrix

#: Target CSR entries per ranking block: small enough that one block's
#: working set stays cache-resident, big enough that per-block overhead
#: amortizes.  Blocks are independent, so the split never changes output.
_RANK_BLOCK_NNZ = 262_144


@dataclass(frozen=True)
class Neighbor:
    """One entry of a group's inverted index."""

    group: int
    similarity: float


def _rank_prefix_block(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
    row_start: int,
    row_end: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Rank rows ``[row_start, row_end)`` with flat select-then-sort passes.

    Instead of fully sorting every row, the block (1) finds each
    over-budget row's budget-th best similarity with one padded
    ``np.partition`` per length bucket, (2) keeps everything strictly
    above that threshold plus exactly enough threshold ties in
    neighbor-gid order (the same ``(similarity desc, gid asc)`` rule the
    full sort would apply), and (3) lexsorts only the kept ~10% of
    entries.  Entry-for-entry identical to :func:`_rank_prefix_loop` —
    the float comparisons are the same, only their order of discovery
    changes.

    Returns ``(ids, sims, kept_counts, complete)`` for the block's rows.
    """
    indptr_in = overlaps.indptr
    low, high = indptr_in[row_start], indptr_in[row_end]
    entry_counts = np.diff(indptr_in[row_start : row_end + 1])
    rows = np.repeat(
        np.arange(row_start, row_end, dtype=np.int64), entry_counts
    )
    cols = overlaps.indices[low:high].astype(np.int64)
    inter = overlaps.data[low:high].astype(np.float64)
    keep = cols != rows  # a group is not its own neighbor
    rows, cols, inter = rows[keep], cols[keep], inter[keep]
    union = sizes[rows] + sizes[cols] - inter
    sims = np.where(union > 0, inter / np.where(union > 0, union, 1.0), 0.0)
    neg = -sims
    n_rows = row_end - row_start
    counts = np.bincount(rows - row_start, minlength=n_rows).astype(np.int64)
    starts = np.zeros(n_rows + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    kept_counts = np.minimum(counts, budget)
    complete = counts <= budget

    # (1) per-row selection threshold: the budget-th best negated
    # similarity, via one padded partition per power-of-two length bucket.
    threshold = np.full(n_rows, np.inf)
    over = np.flatnonzero(counts > budget)
    if len(over):
        buckets = np.maximum(
            np.ceil(np.log2(counts[over])).astype(np.int64), 0
        )
        for bucket in np.unique(buckets):
            selected = over[buckets == bucket]
            width = 1 << int(bucket)
            lengths = counts[selected]
            row_index = np.repeat(np.arange(len(selected)), lengths)
            within = np.arange(lengths.sum()) - np.repeat(
                np.cumsum(lengths) - lengths, lengths
            )
            source = np.repeat(starts[selected], lengths) + within
            padded = np.full((len(selected), width), np.inf)
            padded[row_index, within] = neg[source]
            threshold[selected] = np.partition(padded, budget - 1, axis=-1)[
                :, budget - 1
            ]

    # (2) keep strictly-better entries, then admit threshold ties in
    # neighbor-gid order until each row's budget is exact.
    row_threshold = threshold[rows - row_start]
    sure = neg < row_threshold
    still_needed = kept_counts - np.bincount(
        (rows - row_start)[sure], minlength=n_rows
    )
    tie_positions = np.flatnonzero(neg == row_threshold)
    if len(tie_positions):
        tie_order = tie_positions[
            np.argsort(cols[tie_positions], kind="stable")
        ]
        tie_order = tie_order[np.argsort(rows[tie_order], kind="stable")]
        tie_rows = rows[tie_order] - row_start
        tie_counts = np.bincount(tie_rows, minlength=n_rows)
        tie_starts = np.concatenate(([0], np.cumsum(tie_counts)))
        tie_rank = np.arange(len(tie_order)) - tie_starts[tie_rows]
        admitted = tie_order[tie_rank < still_needed[tie_rows]]
        kept = np.concatenate((np.flatnonzero(sure), admitted))
    else:
        kept = np.flatnonzero(sure)

    # (3) order the kept ~10%: row asc, similarity desc, gid asc.
    order = kept[np.argsort(cols[kept], kind="stable")]
    sim_key = np.ascontiguousarray(neg[order])
    order = order[np.argsort(sim_key, kind="stable")]
    order = order[np.argsort(rows[order], kind="stable")]
    return cols[order], sims[order], kept_counts, complete


def _rank_workers() -> int:
    """Ranking worker threads: one per core, capped (numpy sorts drop the GIL)."""
    return max(1, min(8, os.cpu_count() or 1))


def _rank_prefix_vectorized(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
    workers: Optional[int] = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Batched ranking of every group's neighbors, blocked over the CSR.

    ``overlaps`` is the |G|×|G| sparse self-product of the membership
    matrix (positive intersection sizes only).  Rows are split into
    roughly equal-nnz blocks; each block is ranked by the flat
    select-then-sort pass of :func:`_rank_prefix_block`, on a thread pool
    when more than one core (and block) is available — numpy's sort,
    partition and ufunc kernels release the GIL, so blocks genuinely
    overlap.  Returns the flat prefix arrays
    ``(ids, sims, indptr, complete)``; ordering per group matches
    :func:`_rank_prefix_loop` exactly: similarity descending, neighbor
    gid ascending.
    """
    n_groups = overlaps.shape[0]
    sizes = np.asarray(sizes, dtype=np.float64)
    if n_groups == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.float64),
            np.zeros(1, dtype=np.int64),
            np.zeros(0, dtype=bool),
        )
    if workers is None:
        workers = _rank_workers()
    total_nnz = int(overlaps.indptr[-1])
    n_blocks = max(1, min(n_groups, -(-total_nnz // _RANK_BLOCK_NNZ)))
    bounds = np.searchsorted(
        overlaps.indptr[1:],
        np.linspace(0, total_nnz, n_blocks + 1)[1:-1],
        side="left",
    )
    edges = np.unique(
        np.concatenate(([0], bounds + 1, [n_groups]))
    ).astype(np.int64)
    spans = [
        (int(edges[i]), int(edges[i + 1]))
        for i in range(len(edges) - 1)
        if edges[i] < edges[i + 1]
    ]

    def rank(span: tuple[int, int]):
        return _rank_prefix_block(overlaps, sizes, budget, span[0], span[1])

    if workers > 1 and len(spans) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            parts = list(pool.map(rank, spans))
    else:
        parts = [rank(span) for span in spans]
    ids = np.concatenate([part[0] for part in parts])
    sims = np.concatenate([part[1] for part in parts])
    kept_counts = np.concatenate([part[2] for part in parts])
    complete = np.concatenate([part[3] for part in parts])
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    np.cumsum(kept_counts, out=indptr[1:])
    return ids, sims, indptr, complete


def _rank_prefix_loop(
    overlaps: sparse.csr_matrix,
    sizes: np.ndarray,
    budget: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The retained per-group-loop ranking (parity oracle + bench baseline).

    Walks the CSR buffers one group at a time and lexsorts each row
    individually — the pre-runtime ``_build`` behaviour.  Kept so the test
    suite can assert the batched ranking is a pure performance change and
    so ``benchmarks/run_perf.py`` can record the build-time speedup.
    """
    n_groups = overlaps.shape[0]
    sizes = np.asarray(sizes, dtype=np.float64)
    indptr_in = overlaps.indptr
    all_indices = overlaps.indices
    all_data = overlaps.data
    id_chunks: list[np.ndarray] = []
    sim_chunks: list[np.ndarray] = []
    indptr = np.zeros(n_groups + 1, dtype=np.int64)
    complete = np.zeros(n_groups, dtype=bool)
    for group in range(n_groups):
        start, end = indptr_in[group], indptr_in[group + 1]
        neighbor_ids = all_indices[start:end].astype(np.int64)
        inter = all_data[start:end].astype(np.float64)
        keep = neighbor_ids != group
        neighbor_ids = neighbor_ids[keep]
        inter = inter[keep]
        if len(neighbor_ids) == 0:
            indptr[group + 1] = indptr[group]
            complete[group] = True
            continue
        union = sizes[group] + sizes[neighbor_ids] - inter
        similarity = np.where(union > 0, inter / np.where(union > 0, union, 1.0), 0.0)
        order = np.lexsort((neighbor_ids, -similarity))
        complete[group] = len(order) <= budget
        order = order[:budget]
        id_chunks.append(neighbor_ids[order])
        sim_chunks.append(similarity[order])
        indptr[group + 1] = indptr[group] + len(order)
    ids = (
        np.concatenate(id_chunks) if id_chunks else np.empty(0, dtype=np.int64)
    )
    sims = (
        np.concatenate(sim_chunks)
        if sim_chunks
        else np.empty(0, dtype=np.float64)
    )
    return ids, sims, indptr, complete


class SimilarityIndex:
    """Jaccard-ranked neighbor lists for a set of groups, partially stored.

    ``memberships`` is one sorted user-index array per group.  Ties in
    similarity are broken by ascending group id so rankings are
    deterministic and the materialized prefix is a true prefix of the exact
    ranking (a property the test suite checks).

    Instances are immutable after construction apart from two lazy,
    idempotent caches (the membership matrix and the exact-ranking memo),
    which is what allows one index to be shared read-only across all the
    concurrent sessions of a :class:`~repro.core.runtime.GroupSpaceRuntime`.
    """

    def __init__(
        self,
        memberships: list[np.ndarray],
        n_users: int,
        materialize_fraction: float = 0.10,
    ) -> None:
        if not 0 < materialize_fraction <= 1:
            raise ValueError("materialize_fraction must be in (0, 1]")
        self.n_groups = len(memberships)
        self.n_users = n_users
        self.materialize_fraction = materialize_fraction
        self._memberships = [
            np.asarray(members, dtype=np.int64) for members in memberships
        ]
        self._sizes = np.array([len(members) for members in self._memberships])
        self._exact_cache: dict[int, list[Neighbor]] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        matrix = self._membership_matrix()
        self._matrix = matrix
        overlaps = (matrix @ matrix.T).tocsr()
        (
            self._prefix_ids,
            self._prefix_sims,
            self._prefix_indptr,
            self._prefix_complete,
        ) = _rank_prefix_vectorized(overlaps, self._sizes, self._budget())

    def _membership_matrix(self) -> sparse.csr_matrix:
        return membership_matrix(self._memberships, self.n_users)

    def _ensure_matrix(self) -> sparse.csr_matrix:
        """The pooled membership matrix, rebuilt when absent.

        Indexes restored by :func:`repro.core.store.load_index` skip
        ``_build`` and only materialize the matrix on the first exact
        lookup.
        """
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            self._matrix = matrix = self._membership_matrix()
        return matrix

    def membership_csr(self) -> sparse.csr_matrix:
        """The pooled group×user membership matrix the index is built from.

        Public accessor so downstream machinery — notably
        :class:`repro.core.poolcache.PoolStatsCache` and the
        :class:`~repro.core.runtime.GroupSpaceRuntime` that hands it to
        every session — can slice candidate pools out of the
        already-materialized rows instead of rebuilding a fresh CSR per
        click.  Rebuilt lazily for indexes restored from a store (same
        path exact lookups use).
        """
        return self._ensure_matrix()

    def _budget(self) -> int:
        """Entries materialized per group: fraction of |G| − 1, at least 1."""
        if self.n_groups <= 1:
            return 1
        return max(1, int(np.ceil(self.materialize_fraction * (self.n_groups - 1))))

    def _prefix_slice(self, group: int) -> tuple[np.ndarray, np.ndarray]:
        start = self._prefix_indptr[group]
        end = self._prefix_indptr[group + 1]
        return self._prefix_ids[start:end], self._prefix_sims[start:end]

    @staticmethod
    def _as_neighbors(ids: np.ndarray, sims: np.ndarray) -> list[Neighbor]:
        return [
            Neighbor(int(group), float(similarity))
            for group, similarity in zip(ids.tolist(), sims.tolist())
        ]

    # ------------------------------------------------------------------

    def neighbors(self, group: int, k: Optional[int] = None) -> list[Neighbor]:
        """Top-``k`` most similar groups from the materialized prefix.

        When ``k`` exceeds the prefix and the prefix is incomplete, falls
        back to :meth:`exact_neighbors` (on-demand computation) — the
        behaviour the paper's 10% materialization relies on being rare.
        """
        ids, sims = self._prefix_slice(group)
        if k is None:
            return self._as_neighbors(ids, sims)
        if k <= len(ids) or self._prefix_complete[group]:
            return self._as_neighbors(ids[:k], sims[:k])
        return self.exact_neighbors(group)[:k]

    def materialized_neighbors(self, group: int) -> list[Neighbor]:
        """The raw materialized prefix, with no exact-computation fallback.

        Experiment C3 measures recall of exactly this list; normal
        navigation should use :meth:`neighbors`.
        """
        return self._as_neighbors(*self._prefix_slice(group))

    def exact_neighbors(self, group: int) -> list[Neighbor]:
        """The full exact ranking for one group (cached after first call).

        One sparse row product against the membership matrix yields every
        positive-overlap intersection size at once; groups sharing no
        member have similarity 0 and never appear in the ranking.
        """
        cached = self._exact_cache.get(group)
        if cached is not None:
            return cached
        matrix = self._ensure_matrix()
        row = (matrix.getrow(group) @ matrix.T).tocoo()
        neighbor_ids = row.col
        inter = row.data.astype(np.float64)
        keep = neighbor_ids != group
        neighbor_ids = neighbor_ids[keep]
        inter = inter[keep]
        unions = float(self._sizes[group]) + self._sizes[neighbor_ids] - inter
        similarities = np.where(unions > 0, inter / np.where(unions > 0, unions, 1.0), 0.0)
        positive = similarities > 0.0
        neighbor_ids = neighbor_ids[positive]
        similarities = similarities[positive]
        order = np.lexsort((neighbor_ids, -similarities))
        ranking = [
            Neighbor(int(neighbor_ids[i]), float(similarities[i])) for i in order
        ]
        self._exact_cache[group] = ranking
        return ranking

    def similarity(self, left: int, right: int) -> float:
        """Exact Jaccard similarity between two groups' member sets."""
        if left == right:
            return 1.0
        members = self._memberships[left]
        inter = len(np.intersect1d(members, self._memberships[right]))
        union = len(members) + self._sizes[right] - inter
        return inter / union if union else 0.0

    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """Total materialized (group, neighbor) entries — the C3 memory axis."""
        return int(len(self._prefix_ids))

    def prefix_length(self, group: int) -> int:
        return int(
            self._prefix_indptr[group + 1] - self._prefix_indptr[group]
        )

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex({self.n_groups} groups, "
            f"{self.materialize_fraction:.0%} materialized, "
            f"{self.memory_entries()} entries)"
        )
