"""Per-group inverted similarity index with partial materialization.

VEXUS §II-A: *"For efficient navigation in the space of groups, we build an
inverted index per group g ∈ G that contains all groups in G − {g} in
decreasing order of their similarity to g.  We use the Jaccard distance ...
To reduce both time and space complexity, we only materialize 10% of each
inverted index which is shown in [14] to be adequate."*

Construction computes all positive-overlap Jaccard similarities through one
sparse membership matrix product (groups sharing no member have similarity
0 and — per the paper's group graph — no edge, so they never need ranking),
then keeps only the top ``materialize_fraction`` of each group's ranking.
Lookups beyond the materialized prefix can either fall back to an exact
on-demand computation or report truncation, depending on the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse


@dataclass(frozen=True)
class Neighbor:
    """One entry of a group's inverted index."""

    group: int
    similarity: float


class SimilarityIndex:
    """Jaccard-ranked neighbor lists for a set of groups, partially stored.

    ``memberships`` is one sorted user-index array per group.  Ties in
    similarity are broken by ascending group id so rankings are
    deterministic and the materialized prefix is a true prefix of the exact
    ranking (a property the test suite checks).
    """

    def __init__(
        self,
        memberships: list[np.ndarray],
        n_users: int,
        materialize_fraction: float = 0.10,
    ) -> None:
        if not 0 < materialize_fraction <= 1:
            raise ValueError("materialize_fraction must be in (0, 1]")
        self.n_groups = len(memberships)
        self.n_users = n_users
        self.materialize_fraction = materialize_fraction
        self._memberships = [
            np.asarray(members, dtype=np.int64) for members in memberships
        ]
        self._sizes = np.array([len(members) for members in self._memberships])
        self._prefix: list[list[Neighbor]] = []
        self._prefix_complete: list[bool] = []
        self._exact_cache: dict[int, list[Neighbor]] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        matrix = self._membership_matrix()
        overlaps = (matrix @ matrix.T).tocsr()
        sizes = self._sizes.astype(np.float64)
        budget = self._budget()
        for group in range(self.n_groups):
            row = overlaps.getrow(group)
            neighbor_ids = row.indices
            inter = row.data.astype(np.float64)
            keep = neighbor_ids != group
            neighbor_ids = neighbor_ids[keep]
            inter = inter[keep]
            if len(neighbor_ids) == 0:
                self._prefix.append([])
                self._prefix_complete.append(True)
                continue
            union = sizes[group] + sizes[neighbor_ids] - inter
            similarity = np.where(union > 0, inter / union, 0.0)
            # Sort by similarity desc, group id asc (deterministic).
            order = np.lexsort((neighbor_ids, -similarity))
            complete = len(order) <= budget
            order = order[:budget]
            self._prefix.append(
                [
                    Neighbor(int(neighbor_ids[i]), float(similarity[i]))
                    for i in order
                ]
            )
            self._prefix_complete.append(complete)

    def _membership_matrix(self) -> sparse.csr_matrix:
        row_indices = np.concatenate(
            [np.full(len(members), group) for group, members in enumerate(self._memberships)]
        ) if self.n_groups else np.empty(0, dtype=np.int64)
        column_indices = (
            np.concatenate(self._memberships)
            if self.n_groups
            else np.empty(0, dtype=np.int64)
        )
        data = np.ones(len(row_indices), dtype=np.int64)
        return sparse.csr_matrix(
            (data, (row_indices, column_indices)),
            shape=(self.n_groups, max(self.n_users, 1)),
        )

    def _budget(self) -> int:
        """Entries materialized per group: fraction of |G| − 1, at least 1."""
        if self.n_groups <= 1:
            return 1
        return max(1, int(np.ceil(self.materialize_fraction * (self.n_groups - 1))))

    # ------------------------------------------------------------------

    def neighbors(self, group: int, k: Optional[int] = None) -> list[Neighbor]:
        """Top-``k`` most similar groups from the materialized prefix.

        When ``k`` exceeds the prefix and the prefix is incomplete, falls
        back to :meth:`exact_neighbors` (on-demand computation) — the
        behaviour the paper's 10% materialization relies on being rare.
        """
        prefix = self._prefix[group]
        if k is None:
            return list(prefix)
        if k <= len(prefix) or self._prefix_complete[group]:
            return prefix[:k]
        return self.exact_neighbors(group)[:k]

    def materialized_neighbors(self, group: int) -> list[Neighbor]:
        """The raw materialized prefix, with no exact-computation fallback.

        Experiment C3 measures recall of exactly this list; normal
        navigation should use :meth:`neighbors`.
        """
        return list(self._prefix[group])

    def exact_neighbors(self, group: int) -> list[Neighbor]:
        """The full exact ranking for one group (cached after first call)."""
        cached = self._exact_cache.get(group)
        if cached is not None:
            return cached
        members = self._memberships[group]
        similarities = np.zeros(self.n_groups)
        for other in range(self.n_groups):
            if other == group:
                continue
            inter = len(
                np.intersect1d(members, self._memberships[other], assume_unique=False)
            )
            union = len(members) + self._sizes[other] - inter
            similarities[other] = inter / union if union else 0.0
        order = np.lexsort((np.arange(self.n_groups), -similarities))
        ranking = [
            Neighbor(int(other), float(similarities[other]))
            for other in order
            if other != group and similarities[other] > 0.0
        ]
        self._exact_cache[group] = ranking
        return ranking

    def similarity(self, left: int, right: int) -> float:
        """Exact Jaccard similarity between two groups' member sets."""
        if left == right:
            return 1.0
        members = self._memberships[left]
        inter = len(np.intersect1d(members, self._memberships[right]))
        union = len(members) + self._sizes[right] - inter
        return inter / union if union else 0.0

    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """Total materialized (group, neighbor) entries — the C3 memory axis."""
        return sum(len(prefix) for prefix in self._prefix)

    def prefix_length(self, group: int) -> int:
        return len(self._prefix[group])

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex({self.n_groups} groups, "
            f"{self.materialize_fraction:.0%} materialized, "
            f"{self.memory_entries()} entries)"
        )
