"""Per-group inverted similarity index with partial materialization.

VEXUS §II-A: *"For efficient navigation in the space of groups, we build an
inverted index per group g ∈ G that contains all groups in G − {g} in
decreasing order of their similarity to g.  We use the Jaccard distance ...
To reduce both time and space complexity, we only materialize 10% of each
inverted index which is shown in [14] to be adequate."*

Construction computes all positive-overlap Jaccard similarities through one
sparse membership matrix product (groups sharing no member have similarity
0 and — per the paper's group graph — no edge, so they never need ranking),
then keeps only the top ``materialize_fraction`` of each group's ranking.
Lookups beyond the materialized prefix can either fall back to an exact
on-demand computation or report truncation, depending on the caller.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.similarity import membership_matrix


@dataclass(frozen=True)
class Neighbor:
    """One entry of a group's inverted index."""

    group: int
    similarity: float


class SimilarityIndex:
    """Jaccard-ranked neighbor lists for a set of groups, partially stored.

    ``memberships`` is one sorted user-index array per group.  Ties in
    similarity are broken by ascending group id so rankings are
    deterministic and the materialized prefix is a true prefix of the exact
    ranking (a property the test suite checks).
    """

    def __init__(
        self,
        memberships: list[np.ndarray],
        n_users: int,
        materialize_fraction: float = 0.10,
    ) -> None:
        if not 0 < materialize_fraction <= 1:
            raise ValueError("materialize_fraction must be in (0, 1]")
        self.n_groups = len(memberships)
        self.n_users = n_users
        self.materialize_fraction = materialize_fraction
        self._memberships = [
            np.asarray(members, dtype=np.int64) for members in memberships
        ]
        self._sizes = np.array([len(members) for members in self._memberships])
        self._prefix: list[list[Neighbor]] = []
        self._prefix_complete: list[bool] = []
        self._exact_cache: dict[int, list[Neighbor]] = {}
        self._build()

    # ------------------------------------------------------------------

    def _build(self) -> None:
        matrix = self._membership_matrix()
        self._matrix = matrix
        overlaps = (matrix @ matrix.T).tocsr()
        sizes = self._sizes.astype(np.float64)
        budget = self._budget()
        # Walk the CSR buffers directly — `overlaps.getrow(...)` would
        # allocate a fresh one-row sparse matrix per group.
        indptr = overlaps.indptr
        all_indices = overlaps.indices
        all_data = overlaps.data
        for group in range(self.n_groups):
            start, end = indptr[group], indptr[group + 1]
            neighbor_ids = all_indices[start:end]
            inter = all_data[start:end].astype(np.float64)
            keep = neighbor_ids != group
            neighbor_ids = neighbor_ids[keep]
            inter = inter[keep]
            if len(neighbor_ids) == 0:
                self._prefix.append([])
                self._prefix_complete.append(True)
                continue
            union = sizes[group] + sizes[neighbor_ids] - inter
            similarity = np.where(union > 0, inter / union, 0.0)
            # Sort by similarity desc, group id asc (deterministic).
            order = np.lexsort((neighbor_ids, -similarity))
            complete = len(order) <= budget
            order = order[:budget]
            self._prefix.append(
                [
                    Neighbor(int(neighbor_ids[i]), float(similarity[i]))
                    for i in order
                ]
            )
            self._prefix_complete.append(complete)

    def _membership_matrix(self) -> sparse.csr_matrix:
        return membership_matrix(self._memberships, self.n_users)

    def _ensure_matrix(self) -> sparse.csr_matrix:
        """The pooled membership matrix, rebuilt when absent.

        Indexes restored by :func:`repro.core.store.load_index` skip
        ``_build`` and only materialize the matrix on the first exact
        lookup.
        """
        matrix = getattr(self, "_matrix", None)
        if matrix is None:
            self._matrix = matrix = self._membership_matrix()
        return matrix

    def membership_csr(self) -> sparse.csr_matrix:
        """The pooled group×user membership matrix the index is built from.

        Public accessor so downstream per-session machinery — notably
        :class:`repro.core.poolcache.PoolStatsCache` — can slice candidate
        pools out of the already-materialized rows instead of rebuilding a
        fresh CSR per click.  Rebuilt lazily for indexes restored from a
        store (same path exact lookups use).
        """
        return self._ensure_matrix()

    def _budget(self) -> int:
        """Entries materialized per group: fraction of |G| − 1, at least 1."""
        if self.n_groups <= 1:
            return 1
        return max(1, int(np.ceil(self.materialize_fraction * (self.n_groups - 1))))

    # ------------------------------------------------------------------

    def neighbors(self, group: int, k: Optional[int] = None) -> list[Neighbor]:
        """Top-``k`` most similar groups from the materialized prefix.

        When ``k`` exceeds the prefix and the prefix is incomplete, falls
        back to :meth:`exact_neighbors` (on-demand computation) — the
        behaviour the paper's 10% materialization relies on being rare.
        """
        prefix = self._prefix[group]
        if k is None:
            return list(prefix)
        if k <= len(prefix) or self._prefix_complete[group]:
            return prefix[:k]
        return self.exact_neighbors(group)[:k]

    def materialized_neighbors(self, group: int) -> list[Neighbor]:
        """The raw materialized prefix, with no exact-computation fallback.

        Experiment C3 measures recall of exactly this list; normal
        navigation should use :meth:`neighbors`.
        """
        return list(self._prefix[group])

    def exact_neighbors(self, group: int) -> list[Neighbor]:
        """The full exact ranking for one group (cached after first call).

        One sparse row product against the membership matrix yields every
        positive-overlap intersection size at once; groups sharing no
        member have similarity 0 and never appear in the ranking.
        """
        cached = self._exact_cache.get(group)
        if cached is not None:
            return cached
        matrix = self._ensure_matrix()
        row = (matrix.getrow(group) @ matrix.T).tocoo()
        neighbor_ids = row.col
        inter = row.data.astype(np.float64)
        keep = neighbor_ids != group
        neighbor_ids = neighbor_ids[keep]
        inter = inter[keep]
        unions = float(self._sizes[group]) + self._sizes[neighbor_ids] - inter
        similarities = np.where(unions > 0, inter / np.where(unions > 0, unions, 1.0), 0.0)
        positive = similarities > 0.0
        neighbor_ids = neighbor_ids[positive]
        similarities = similarities[positive]
        order = np.lexsort((neighbor_ids, -similarities))
        ranking = [
            Neighbor(int(neighbor_ids[i]), float(similarities[i])) for i in order
        ]
        self._exact_cache[group] = ranking
        return ranking

    def similarity(self, left: int, right: int) -> float:
        """Exact Jaccard similarity between two groups' member sets."""
        if left == right:
            return 1.0
        members = self._memberships[left]
        inter = len(np.intersect1d(members, self._memberships[right]))
        union = len(members) + self._sizes[right] - inter
        return inter / union if union else 0.0

    # ------------------------------------------------------------------

    def memory_entries(self) -> int:
        """Total materialized (group, neighbor) entries — the C3 memory axis."""
        return sum(len(prefix) for prefix in self._prefix)

    def prefix_length(self, group: int) -> int:
        return len(self._prefix[group])

    def __repr__(self) -> str:
        return (
            f"SimilarityIndex({self.n_groups} groups, "
            f"{self.materialize_fraction:.0%} materialized, "
            f"{self.memory_entries()} entries)"
        )
