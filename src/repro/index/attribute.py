"""Secondary indexes: attribute-value -> groups and user -> groups.

These power the O(1) interactions of §II-B: when the explorer deletes a
demographic value from CONTEXT (unlearn) or bookmarks a user, VEXUS must
find every group whose description mentions that value, or every group the
user belongs to, without scanning the group space.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


class AttributeIndex:
    """Map description tokens and members back to group ids.

    ``descriptions`` is one iterable of description tokens (strings such as
    ``"gender=female"``) per group; ``memberships`` one user-index array per
    group.
    """

    def __init__(
        self,
        descriptions: Sequence[Iterable[str]],
        memberships: Sequence[np.ndarray],
    ) -> None:
        if len(descriptions) != len(memberships):
            raise ValueError("descriptions and memberships must align")
        self._groups_of_token: dict[str, list[int]] = {}
        for group, description in enumerate(descriptions):
            for token in description:
                self._groups_of_token.setdefault(token, []).append(group)
        self._groups_of_user: dict[int, list[int]] = {}
        for group, members in enumerate(memberships):
            for user in np.asarray(members).tolist():
                self._groups_of_user.setdefault(int(user), []).append(group)
        self.n_groups = len(descriptions)

    def groups_with_token(self, token: str) -> list[int]:
        """Group ids whose description contains ``token`` (ascending)."""
        return list(self._groups_of_token.get(token, []))

    def groups_of_user(self, user: int) -> list[int]:
        """Group ids the user belongs to (ascending)."""
        return list(self._groups_of_user.get(int(user), []))

    def tokens(self) -> list[str]:
        """All description tokens present in the group space."""
        return sorted(self._groups_of_token)

    def __repr__(self) -> str:
        return (
            f"AttributeIndex({self.n_groups} groups, "
            f"{len(self._groups_of_token)} tokens, "
            f"{len(self._groups_of_user)} users)"
        )
