"""Indexing substrate: the paper's partial inverted similarity index plus
secondary (attribute/user) indexes and a MinHash/LSH accelerator."""

from repro.index.attribute import AttributeIndex
from repro.index.inverted import Neighbor, SimilarityIndex
from repro.index.minhash import MinHashConfig, MinHashIndex

__all__ = [
    "AttributeIndex",
    "MinHashConfig",
    "MinHashIndex",
    "Neighbor",
    "SimilarityIndex",
]
