"""Network serving front for the multi-session runtime.

:mod:`repro.service.server` exposes a
:class:`~repro.core.runtime.SessionManager` — or a
:class:`~repro.spaces.SpaceRegistry` hosting many named group spaces —
over JSON-over-HTTP (stdlib only — a threaded
:class:`http.server.ThreadingHTTPServer` with keep-alive connections);
:mod:`repro.service.client` is the typed Python client the CLI, the
benchmarks and the examples drive it with.  The wire protocol mirrors
the in-process API one-to-one — ``open`` / ``click`` / ``drill_down`` /
``backtrack`` / ``displayed`` / ``stats`` / ``close`` plus health and
``/spaces`` endpoints — so a scripted trace replayed through HTTP shows
bitwise the displays the same trace shows in process (the
protocol-conformance suites in ``tests/service/`` and ``tests/spaces/``
assert exactly that, per hosted space).
"""

from repro.service.client import (
    DisplayedGroup,
    ExplorationClient,
    OpenedSession,
    ServiceError,
    SessionLimitExceeded,
    SessionNotFound,
    SpaceBuilding,
    SpaceNotFound,
    StaleSessionState,
)
from repro.service.server import ExplorationService

__all__ = [
    "DisplayedGroup",
    "ExplorationClient",
    "ExplorationService",
    "OpenedSession",
    "ServiceError",
    "SessionLimitExceeded",
    "SessionNotFound",
    "SpaceBuilding",
    "SpaceNotFound",
    "StaleSessionState",
]
