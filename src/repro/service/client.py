"""Typed Python client for the exploration service.

One :class:`ExplorationClient` holds one keep-alive HTTP connection —
the remote analogue of one analyst's browser tab.  Methods mirror the
in-process :class:`~repro.core.runtime.SessionManager` API and return
typed values (:class:`DisplayedGroup` rows instead of raw dicts), so
driving a remote runtime reads exactly like driving a local one::

    client = ExplorationClient(host, port)
    opened = client.open(config={"k": 5, "time_budget_ms": None})
    shown = client.click(opened.session_id, opened.display[0].gid)
    summary = client.close(opened.session_id)
    # later, possibly against a restarted server:
    resumed = client.open(resume=summary["resume_token"])

Service-side failures surface as typed exceptions mapped from the HTTP
status (and error type): :class:`SessionNotFound` (404),
:class:`SpaceNotFound` (404 against a multi-space server),
:class:`StaleSessionState` (409), :class:`SessionLimitExceeded` (429),
:class:`ServiceDegraded` (503, after honoring the server's
``Retry-After`` for a bounded number of re-sends — a 503 reply means
the interaction was rolled back, so re-sending is safe), and plain
:class:`ServiceError` for everything else.  Reconnects after a dropped
keep-alive use bounded exponential backoff with jitter.

Against a multi-space server, ``open(space="books")`` routes to a named
space.  A cold space answers 202 while it builds in the background; the
client raises :class:`SpaceBuilding` carrying the server's retry hint —
:meth:`ExplorationClient.open_when_ready` wraps the poll loop::

    opened = client.open_when_ready(space="books", timeout_s=60.0)

``client.spaces()`` lists every hosted space with its state and stats.

The connection is *not* thread-safe (neither is a browser tab's);
concurrent clients each get their own instance — see the contended
suites under ``tests/service/``.
"""

from __future__ import annotations

import http.client
import json
import random
import socket
import time
from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.trace import TRACE_HEADER, mint_trace_id


@dataclass(frozen=True)
class DisplayedGroup:
    """One GROUPVIZ slot as served over the wire."""

    gid: int
    description: tuple[str, ...]
    size: int


@dataclass(frozen=True)
class OpenedSession:
    """The reply to ``open``: the live handle plus the durable token.

    ``space`` is the routed space's name on multi-space servers (the
    value to pass back with ``resume`` after an eviction or restart);
    ``None`` against single-space deployments.
    """

    session_id: str
    resume_token: Optional[str]
    display: list[DisplayedGroup] = field(default_factory=list)
    space: Optional[str] = None


class ServiceError(Exception):
    """An error reply from the service (or a transport failure)."""

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(f"[{status} {error_type}] {message}")
        self.status = status
        self.error_type = error_type
        self.message = message


class SessionNotFound(ServiceError):
    """404: unknown/closed session id or unknown resume token."""


class StaleSessionState(ServiceError):
    """409: persisted state conflicts with the live space (digest drift)."""


class SessionLimitExceeded(ServiceError):
    """429: admission control refused the open (``max_sessions`` live)."""


class SpaceNotFound(ServiceError):
    """404 (``unknown_space``): no space registered under that name."""


class SpaceBuilding(ServiceError):
    """202: the routed space is materializing in the background.

    Not a failure — the open was accepted and the build queued;
    ``retry_after_s`` is the server's estimate of when to retry (see
    :meth:`ExplorationClient.open_when_ready` for the canned loop).
    """

    def __init__(
        self, space: Optional[str], message: str, retry_after_s: float
    ) -> None:
        super().__init__(202, "space_building", message)
        self.space = space
        self.retry_after_s = retry_after_s


class ServiceDegraded(ServiceError):
    """503: the server's durable layer is failing.

    The interaction was *not* applied — the server rolls the session
    back before answering 503, so re-sending cannot double-apply.  The
    client already retried on the server's ``Retry-After`` cadence
    (bounded by ``degraded_retries``) before raising; ``retry_after_s``
    carries the last hint for callers that want to keep waiting.
    """

    def __init__(self, status: int, error_type: str, message: str) -> None:
        super().__init__(status, error_type, message)
        self.retry_after_s = 1.0


_ERRORS_BY_STATUS = {
    409: StaleSessionState,
    429: SessionLimitExceeded,
    503: ServiceDegraded,
}

#: Exponential-backoff schedule for reconnects: base doubles per
#: failure up to the cap, then a multiplicative jitter in [0.5, 1.0)
#: decorrelates clients that all lost the same restarted server.
_BACKOFF_BASE_S = 0.05
_BACKOFF_CAP_S = 1.0
_CONNECT_RETRIES = 3

#: A 404 names a session, a space, or just a route, and the caller's
#: recovery differs for each (resync vs pick another space vs "this
#: server has no such capability"), so the error *type* picks the
#: exception class; an unrecognized 404 stays a plain ServiceError
#: rather than masquerading as a missing session.
_ERRORS_BY_TYPE = {
    (404, "unknown_session"): SessionNotFound,
    (404, "unknown_space"): SpaceNotFound,
    # A 409 already maps to StaleSessionState by status; the explicit
    # entry pins the ``stale_epoch`` refusal (retention window exhausted)
    # to the same class so the pairing survives status-map edits.
    (409, "stale_epoch"): StaleSessionState,
}


def _display(rows: list[dict]) -> list[DisplayedGroup]:
    return [
        DisplayedGroup(
            gid=row["gid"],
            description=tuple(row["description"]),
            size=row["size"],
        )
        for row in rows
    ]


class ExplorationClient:
    """One analyst's connection to a running exploration service."""

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 30.0,
        degraded_retries: int = 1,
        retry_after_cap_s: float = 0.5,
        building_retry_cap_s: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: How many times a 503 (durability degraded) is retried before
        #: surfacing as :class:`ServiceDegraded`.  A 503 means the server
        #: rolled the interaction back, so re-sending is always safe; the
        #: sleep honors the server's ``Retry-After`` header, clamped to
        #: ``retry_after_cap_s`` so a pessimistic server hint cannot
        #: stall an interactive caller for seconds per request.  The
        #: clamp applies to *degraded-503 retries only*: a 503 hint is a
        #: healing estimate and over-waiting it wastes interactive time,
        #: whereas a 202 building hint is the server's measurement of a
        #: real index build — honoring it is the whole point, so
        #: :meth:`open_when_ready` clamps to the separate (much larger)
        #: ``building_retry_cap_s`` instead.
        self.degraded_retries = degraded_retries
        self.retry_after_cap_s = retry_after_cap_s
        self.building_retry_cap_s = building_retry_cap_s
        self._connection: Optional[http.client.HTTPConnection] = None
        #: Sticky trace-id override: when set, every request carries it
        #: in ``X-Repro-Trace`` instead of a per-request minted id (the
        #: propagation tests pin a known id through the router hop).
        self.trace_id: Optional[str] = None
        #: The trace id the most recent request actually sent.
        self.last_trace_id: Optional[str] = None

    # -- transport -------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
            connection.connect()
            # Requests are small multi-part writes; without TCP_NODELAY
            # they can stall behind the server's delayed ACK (~40 ms) —
            # see the matching note on the server handler.
            connection.sock.setsockopt(
                socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
            )
            self._connection = connection
        return self._connection

    def close_connection(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "ExplorationClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close_connection()

    @staticmethod
    def _backoff_sleep(failures: int) -> None:
        delay = min(_BACKOFF_BASE_S * (2 ** (failures - 1)), _BACKOFF_CAP_S)
        time.sleep(delay * (0.5 + random.random() / 2))

    @staticmethod
    def _retry_after_s(response: http.client.HTTPResponse) -> float:
        try:
            return max(float(response.getheader("Retry-After") or 1.0), 0.0)
        except ValueError:
            return 1.0

    def _request(self, method: str, path: str, body: Optional[dict] = None) -> dict:
        payload = None if body is None else json.dumps(body).encode("utf-8")
        headers = {"Content-Type": "application/json"} if payload else {}
        # One id per logical request, minted client-side: retries of the
        # same call re-send the same id, so server-side slow-log records
        # correlate even across a reconnect or takeover.
        trace_id = self.trace_id or mint_trace_id()
        headers[TRACE_HEADER] = trace_id
        self.last_trace_id = trace_id
        # Transparent retries on a dead keep-alive connection (the
        # server reaps idle ones; a restarted server drops them all),
        # with bounded exponential backoff + jitter so a server mid
        # restart gets a ramp rather than a synchronized hammer — but
        # only when re-sending cannot double-apply the request: either
        # the failure happened before the request went out, or the
        # method is a read.  A POST that died *after* sending (e.g. the
        # reply was lost) may already have clicked server-side;
        # re-sending it would desynchronize the session, so it surfaces
        # and the caller resyncs via ``displayed``/``stats``.
        connect_failures = 0
        degraded_replies = 0
        while True:
            sent = False
            try:
                connection = self._connect()
                connection.request(method, path, body=payload, headers=headers)
                sent = True
                response = connection.getresponse()
                raw = response.read()
            except TimeoutError:
                # A timed-out request may still be executing server-side;
                # re-sending a non-idempotent click could apply it twice.
                self.close_connection()
                raise
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                OSError,
            ):
                self.close_connection()
                connect_failures += 1
                if connect_failures > _CONNECT_RETRIES or (
                    sent and method != "GET"
                ):
                    raise
                self._backoff_sleep(connect_failures)
                continue
            if response.status == 503 and degraded_replies < self.degraded_retries:
                # Unlike a torn connection, a 503 is safe to re-send for
                # any method: the server rolled the session back before
                # answering, so the interaction was not applied.
                degraded_replies += 1
                time.sleep(
                    min(self._retry_after_s(response), self.retry_after_cap_s)
                )
                continue
            break
        try:
            reply = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ServiceError(
                response.status, "bad_reply", f"unparseable service reply: {error}"
            )
        if response.status == 202:
            # Accepted-but-not-ready: the routed space is building in the
            # background.  Raised typed (with the retry hint) rather than
            # returned — no caller can use a display that isn't there.
            body = reply if isinstance(reply, dict) else {}
            space = body.get("space")
            raise SpaceBuilding(
                space,
                f"space {space!r} is building",
                float(body.get("retry_after_s") or 1.0),
            )
        if response.status >= 400:
            error = reply.get("error", {}) if isinstance(reply, dict) else {}
            error_class = _ERRORS_BY_TYPE.get(
                (response.status, error.get("type")),
                _ERRORS_BY_STATUS.get(response.status, ServiceError),
            )
            failure = error_class(
                response.status,
                error.get("type", "error"),
                error.get("message", raw.decode("utf-8", "replace")),
            )
            if isinstance(failure, ServiceDegraded):
                failure.retry_after_s = self._retry_after_s(response)
            raise failure
        return reply

    # -- the exploration protocol ---------------------------------------

    def open(
        self,
        config: Optional[dict] = None,
        seed_gids: Optional[list[int]] = None,
        resume: Optional[str] = None,
        space: Optional[str] = None,
    ) -> OpenedSession:
        """Open a fresh session, or restore a persisted one by token.

        ``space`` routes the open on a multi-space server (default: the
        server's first manifest space); a cold space raises
        :class:`SpaceBuilding` while its index builds in the background.
        """
        body: dict = {}
        if config is not None:
            body["config"] = config
        if seed_gids is not None:
            body["seed_gids"] = list(seed_gids)
        if resume is not None:
            body["resume"] = resume
        if space is not None:
            body["space"] = space
        reply = self._request("POST", "/v1/sessions", body)
        return OpenedSession(
            session_id=reply["session_id"],
            resume_token=reply.get("resume_token"),
            display=_display(reply["display"]),
            space=reply.get("space"),
        )

    def open_when_ready(
        self,
        config: Optional[dict] = None,
        seed_gids: Optional[list[int]] = None,
        resume: Optional[str] = None,
        space: Optional[str] = None,
        timeout_s: float = 60.0,
    ) -> OpenedSession:
        """:meth:`open`, polling through :class:`SpaceBuilding` replies.

        Retries on the server's ``retry_after_s`` cadence until the
        space is ready or ``timeout_s`` elapses (then the last
        :class:`SpaceBuilding` is re-raised).  Every other error — a
        failed build included — surfaces immediately.
        """
        deadline = time.monotonic() + timeout_s
        polls = 0
        while True:
            try:
                return self.open(
                    config=config, seed_gids=seed_gids, resume=resume, space=space
                )
            except SpaceBuilding as building:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise
                # The server's hint is its *optimistic* first estimate;
                # escalate gently past the first few polls (a build that
                # overran its estimate likely needs multiples of it, not
                # another tick) and jitter so concurrent waiters don't
                # re-poll in lockstep.  The cap is the building-specific
                # one: a space honestly advertising a multi-second index
                # build must not be busy-polled on the degraded-503
                # cadence.
                polls += 1
                hint = max(building.retry_after_s, 0.05)
                delay = min(
                    hint * (1.5 ** min(polls - 1, 4)),
                    self.building_retry_cap_s,
                )
                delay *= 0.5 + random.random() / 2
                time.sleep(min(delay, remaining))

    def click(self, session_id: str, gid: int) -> list[DisplayedGroup]:
        reply = self._request(
            "POST", f"/v1/sessions/{session_id}/click", {"gid": gid}
        )
        return _display(reply["display"])

    def backtrack(self, session_id: str, step_id: int) -> list[DisplayedGroup]:
        reply = self._request(
            "POST", f"/v1/sessions/{session_id}/backtrack", {"step_id": step_id}
        )
        return _display(reply["display"])

    def drill_down(self, session_id: str, gid: int) -> list[int]:
        reply = self._request(
            "POST", f"/v1/sessions/{session_id}/drill_down", {"gid": gid}
        )
        return list(reply["members"])

    def displayed(self, session_id: str) -> list[DisplayedGroup]:
        reply = self._request("GET", f"/v1/sessions/{session_id}/displayed")
        return _display(reply["display"])

    def stats(self, session_id: str) -> dict:
        return self._request("GET", f"/v1/sessions/{session_id}/stats")

    def close(self, session_id: str) -> dict:
        """Close the session; the summary carries its resume token."""
        return self._request("POST", f"/v1/sessions/{session_id}/close")

    def sessions(self) -> list[str]:
        return list(self._request("GET", "/v1/sessions")["sessions"])

    def spaces(self) -> dict:
        """Hosted spaces with per-space state/stats (multi-space servers)."""
        return self._request("GET", "/spaces")

    def mutate(
        self,
        space: str,
        add: Sequence[tuple[Sequence[str], Sequence[int]]] = (),
        remove: Sequence[int] = (),
        update: Sequence[tuple[int, Sequence[int]]] = (),
        verify: bool = False,
    ) -> dict:
        """Apply a group delta to ``space``; returns the epoch report.

        ``add`` is (description terms, member ids) pairs, ``remove`` is
        gids, ``update`` is (gid, new member ids) pairs — all in the
        *current* epoch's gid numbering.  Sessions already open keep
        serving their pinned epoch; only sessions opened after the reply
        see the new groups.  ``verify=True`` asks the server to check
        the delta-maintained index against a full rebuild (slow; meant
        for audits, not the serving path).
        """
        body: dict = {"verify": verify}
        if add:
            body["add"] = [
                {"description": list(description), "members": list(members)}
                for description, members in add
            ]
        if remove:
            body["remove"] = [int(gid) for gid in remove]
        if update:
            body["update"] = [
                {"gid": int(gid), "members": list(members)}
                for gid, members in update
            ]
        return self._request("POST", f"/spaces/{space}/mutate", body)

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> str:
        """The server's Prometheus text exposition (``GET /metrics``).

        The one raw-text endpoint in the protocol, so it bypasses the
        JSON reply path; 404 means metrics are disabled server-side.
        """
        connect_failures = 0
        while True:
            try:
                connection = self._connect()
                connection.request(
                    "GET", "/metrics",
                    headers={TRACE_HEADER: self.trace_id or mint_trace_id()},
                )
                response = connection.getresponse()
                raw = response.read()
            except (
                http.client.BadStatusLine,
                http.client.CannotSendRequest,
                ConnectionError,
                OSError,
            ):
                self.close_connection()
                connect_failures += 1
                if connect_failures > _CONNECT_RETRIES:
                    raise
                self._backoff_sleep(connect_failures)
                continue
            break
        if response.status >= 400:
            raise ServiceError(
                response.status,
                "metrics_unavailable",
                raw.decode("utf-8", "replace"),
            )
        return raw.decode("utf-8")

    def activity(self, space: str, limit: Optional[int] = None) -> list[dict]:
        """Recent interaction events for one space, oldest first."""
        path = f"/spaces/{space}/activity"
        if limit is not None:
            path += f"?limit={int(limit)}"
        return list(self._request("GET", path)["events"])

    def replicas(self) -> list[dict]:
        """Per-replica liveness rows when the server is a worker pool.

        A replicated front (``serve --workers N``) reports one row per
        worker — index, pid, liveness, restart count, bound epoch — in
        ``/healthz``; a single-process server reports none, so this
        returns ``[]`` there and callers need no mode check.
        """
        return list(self.health().get("replicas") or [])

    def __repr__(self) -> str:
        return f"ExplorationClient(http://{self.host}:{self.port})"
