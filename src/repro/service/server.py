"""JSON-over-HTTP front over a :class:`~repro.core.runtime.SessionManager`.

§II deploys VEXUS as an interactive multi-analyst service: browsers talk
to one shared group space over the network.  This module is that front,
built entirely on the stdlib so the serving story needs nothing the
selection engine doesn't already need:

- a :class:`http.server.ThreadingHTTPServer` (one thread per connection,
  HTTP/1.1 keep-alive, so a client's click loop pays one TCP handshake,
  not one per click);
- a wire protocol that mirrors the in-process API one-to-one, so the
  HTTP layer can be proven *transparent*: the same scripted trace shows
  bitwise-identical displays through either path;
- durable sessions: with a state-dir-backed manager every mutation is
  checkpointed, ``close`` returns a resume token, an idle sweeper evicts
  (and persists) abandoned sessions, and ``open`` with ``resume``
  restores a session after a crash or restart.

Wire protocol (all bodies JSON; errors are
``{"error": {"type", "message"}}``)::

    POST /v1/sessions                    {config?, seed_gids?, resume?, space?}
                                         -> {session_id, resume_token, display,
                                             space?}
    POST /v1/sessions/<id>/click         {gid}      -> {display}
    POST /v1/sessions/<id>/backtrack     {step_id}  -> {display}
    POST /v1/sessions/<id>/drill_down    {gid}      -> {members}
    GET  /v1/sessions/<id>/displayed                -> {display}
    GET  /v1/sessions/<id>/stats                    -> per-session counters
    POST /v1/sessions/<id>/close                    -> final summary
    GET  /v1/sessions                               -> {sessions}
    GET  /spaces                                    -> {spaces, default}
                                                       (multi-space servers)
    POST /spaces/<name>/mutate           {add?, remove?, update?, verify?}
                                                    -> epoch report
    GET  /healthz                                   -> service + runtime +
                                                       shared-cache stats

A service fronts either one :class:`~repro.core.runtime.SessionManager`
(the single-space deployment, unchanged) or a
:class:`~repro.spaces.SpaceRegistry` hosting many named spaces.  With a
registry, ``open`` routes by its ``space`` field (default: the
manifest's first space), later session verbs route by the session id
(ids are unique across spaces by construction), and an ``open`` against
a cold space queues a background build and answers ``202 {"state":
"building"}`` with a ``Retry-After`` hint — clicks on hot spaces are
never blocked by another space's index construction.

**Online store mutation.**  ``POST /spaces/<name>/mutate`` applies a
group delta (``add`` new groups, ``remove`` gids, ``update`` a group's
members) to a *ready* space and publishes a new store epoch.  Mutation
is epoch-drained, never stop-the-world: sessions opened before the
mutation stay pinned to their epoch's space + index until they drain
(their displays are unaffected — concurrent clicks are parity-identical
to a quiesced run), sessions opened after it serve the new epoch, and
shared caches invalidate per content fingerprint, so entries for
untouched groups stay warm across the mutation.  Journal and checkpoint
records are stamped with the session's pinned epoch (number + digest);
resume re-binds onto a retained epoch by digest, and a resume whose
digest no longer matches any retained epoch is refused with a 409.
``verify: true`` additionally rebuilds the index from scratch and
refuses to publish unless the delta-maintained index is bitwise
identical (the parity oracle — for tests and paranoid operators).  The
reply is the epoch report: new epoch number, digest, parent digest,
per-kind delta counts, dropped cache entries, and apply latency.

Status mapping: 202 space building (retry), 400 malformed request, 404
unknown session / resume token / space / route, 405 wrong method, 409
conflicting state (stale space digest, already-live resume token,
corrupted journal), 429 admission control (``max_sessions``), 503
durability degraded (typed ``durability_degraded`` with a
``Retry-After``; the interaction was rolled back server-side, never
half-applied), 500 anything else (including sticky space build
failures, typed ``space_build_failed``).  ``/healthz`` and ``/spaces``
carry a ``degraded`` flag while a space's durable layer is failing.
"""

from __future__ import annotations

import json
import math
import threading
import time
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import parse_qs

from repro.core.group import Group, GroupDelta
from repro.core.journal import DurabilityError
from repro.core.runtime import (
    SessionLimitError,
    SessionManager,
    StaleEpochError,
    UnknownSessionError,
)
from repro.core.session import SessionConfig
from repro.obs import TRACE_HEADER, Observability, span
from repro.spaces.registry import (
    SpaceBuildError,
    SpaceBuildingError,
    SpaceNotFoundError,
    SpaceRegistry,
)

#: Session-level configuration knobs a remote ``open`` may set.  The
#: nested ``selection`` config stays server-side: the service owns its
#: latency budget policy; clients choose *what* to explore, not how much
#: CPU a click may burn.
_CONFIG_FIELDS = frozenset(
    {
        "k",
        "time_budget_ms",
        "similarity_floor",
        "max_pool",
        "reward",
        "use_profile",
        "weighted_similarity",
        "engine",
        "governor",
        "cache_pools",
        "cache_capacity",
    }
)


class _BadRequest(Exception):
    """Client-side protocol violation; always mapped to a 400."""


def _display_payload(groups: list[Group]) -> list[dict]:
    """The GROUPVIZ slice of the wire format.

    Everything the in-process display exposes per group — gid, the
    describing attribute values, the member count — so the conformance
    suite can compare the two paths field for field.
    """
    return [
        {
            "gid": group.gid,
            "description": list(group.description),
            "size": group.size,
        }
        for group in groups
    ]


def _member_list(value, where: str) -> list[int]:
    if not isinstance(value, list) or not value:
        raise _BadRequest(f"{where} must be a non-empty list of user ids")
    members = []
    for user in value:
        if isinstance(user, bool) or not isinstance(user, int):
            raise _BadRequest(f"{where} entries must be integers")
        members.append(user)
    return members


def parse_mutation(body: dict) -> tuple[GroupDelta, bool]:
    """Validate a ``POST /spaces/<name>/mutate`` body into a delta.

    Shared by the single-process handler above and the replication
    router (which forwards the parsed delta to its worker pool), so both
    fronts reject malformed mutations with identical 400s.  Returns
    ``(delta, verify)``; every violation raises the handler-mapped
    :class:`_BadRequest`.
    """
    unknown = set(body) - {"add", "remove", "update", "verify"}
    if unknown:
        raise _BadRequest(f"unknown mutate fields {sorted(unknown)}")
    verify = body.get("verify", False)
    if not isinstance(verify, bool):
        raise _BadRequest("verify must be a boolean")
    added = []
    for i, item in enumerate(body.get("add") or []):
        if not isinstance(item, dict) or set(item) - {"description", "members"}:
            raise _BadRequest(
                "add entries must be {description, members} objects"
            )
        description = item.get("description")
        if not isinstance(description, list) or not all(
            isinstance(term, str) for term in description
        ):
            raise _BadRequest(
                f"add[{i}].description must be a list of strings"
            )
        added.append(
            (description, _member_list(item.get("members"), f"add[{i}].members"))
        )
    removed = []
    for gid in body.get("remove") or []:
        if isinstance(gid, bool) or not isinstance(gid, int):
            raise _BadRequest("remove entries must be integer gids")
        removed.append(gid)
    changed = []
    for i, item in enumerate(body.get("update") or []):
        if not isinstance(item, dict) or set(item) - {"gid", "members"}:
            raise _BadRequest(
                "update entries must be {gid, members} objects"
            )
        gid = item.get("gid")
        if isinstance(gid, bool) or not isinstance(gid, int):
            raise _BadRequest(f"update[{i}].gid must be an integer")
        changed.append(
            (gid, _member_list(item.get("members"), f"update[{i}].members"))
        )
    try:
        delta = GroupDelta.build(added=added, removed=removed, changed=changed)
    except ValueError as error:
        # Shape-level rejection (duplicate targets, negative members):
        # the request itself is malformed, not a state conflict.
        raise _BadRequest(str(error))
    if delta.is_empty():
        raise _BadRequest("mutation delta is empty")
    return delta, verify


def _int_field(body: dict, name: str) -> int:
    if name not in body:
        raise _BadRequest(f"missing field {name!r}")
    value = body[name]
    # bool is an int subclass; "gid": true must not address group 1.
    if isinstance(value, bool) or not isinstance(value, int):
        raise _BadRequest(f"field {name!r} must be an integer")
    return value


class _Server(ThreadingHTTPServer):
    """Connection-tracking threaded server.

    Keep-alive means connection threads outlive individual requests;
    tracking the sockets lets :meth:`ExplorationService.stop` tear down
    live connections (the crash-recovery suite kills a server
    mid-session and must not leave client threads blocked on a half-open
    socket).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._connections: set = set()
        self._connections_lock = threading.Lock()

    def track(self, connection) -> None:
        with self._connections_lock:
            self._connections.add(connection)

    def untrack(self, connection) -> None:
        with self._connections_lock:
            self._connections.discard(connection)

    def close_connections(self) -> None:
        with self._connections_lock:
            connections = list(self._connections)
        for connection in connections:
            try:
                connection.close()
            except OSError:
                pass


class _Handler(BaseHTTPRequestHandler):
    """One request: route, call the manager, serialize the outcome."""

    protocol_version = "HTTP/1.1"  # keep-alive: one connection per client
    #: Idle keep-alive connections are reaped after this many seconds so
    #: departed clients do not pin handler threads forever; the typed
    #: client transparently reconnects.
    timeout = 30.0
    #: TCP_NODELAY: replies go out in several small writes (status line,
    #: headers, JSON body); with Nagle on, the last write can sit behind
    #: the peer's delayed ACK and a sub-millisecond localhost round trip
    #: balloons to ~40 ms — wiping out the click budget the selection
    #: engine fights for.
    disable_nagle_algorithm = True

    def __init__(self, service: "ExplorationService", *args, **kwargs) -> None:
        self.service = service
        super().__init__(*args, **kwargs)

    def setup(self) -> None:
        super().setup()
        self.server.track(self.connection)

    def finish(self) -> None:
        super().finish()
        self.server.untrack(self.connection)

    def log_message(self, format: str, *args) -> None:
        """Silent by default; the service counts instead of printing."""

    # -- plumbing --------------------------------------------------------

    #: Set by :meth:`_dispatch` while an instrumented request is live so
    #: :meth:`_reply` can stamp the final status on the request span.
    _request_span = None

    def _reply(
        self,
        status: int,
        payload: dict,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"),
                   "application/json", headers)

    def _reply_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        """A raw-text reply: the Prometheus ``/metrics`` exposition."""
        self._send(status, text.encode("utf-8"), content_type, None)

    def _send(
        self,
        status: int,
        encoded: bytes,
        content_type: str,
        headers: Optional[dict[str, str]],
    ) -> None:
        if self._request_span is not None:
            self._request_span.set_status(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _fail(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[dict[str, str]] = None,
    ) -> None:
        self.service.count_error()
        self._reply(
            status,
            {"error": {"type": error_type, "message": message}},
            headers=headers,
        )

    def _drain_body(self) -> None:
        """Read the request body unconditionally, before any routing.

        Keep-alive correctness: if a handler replies without consuming
        the body (unmatched route, bodyless verbs like ``close``), the
        leftover bytes would be parsed as the *next* request line on the
        same connection, desynchronizing every later exchange.
        """
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            raise _BadRequest("Content-Length must be an integer")
        self._raw_body = self.rfile.read(length) if length > 0 else b""

    def _body(self) -> dict:
        if not self._raw_body:
            return {}
        try:
            body = json.loads(self._raw_body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise _BadRequest(f"request body is not valid JSON ({error})")
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        return body

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        self.service.count_request()
        obs = self.service.obs
        if obs is None:
            self._handle(method)
            return
        # Activate a trace for the request's duration: span() calls deep
        # in the core record into it, the HTTP counters update on exit,
        # and a request over the slow threshold lands in the slow log
        # under the client's (or router's) X-Repro-Trace id.
        with obs.request(
            self.path, self.headers.get(TRACE_HEADER)
        ) as request_span:
            self._request_span = request_span
            try:
                self._handle(method)
            finally:
                self._request_span = None

    def _handle(self, method: str) -> None:
        try:
            self._drain_body()
            with span("route"):
                handled = self._route(method)
        except _BadRequest as error:
            self._fail(400, "bad_request", str(error))
        except SpaceBuildingError as error:
            # Not a failure: the build was accepted and is running in the
            # background.  202 + Retry-After is the "come back shortly"
            # protocol shape; the typed client raises SpaceBuilding with
            # the hint so callers can poll without parsing.
            self._reply(
                202,
                {
                    "state": "building",
                    "space": error.name,
                    "retry_after_s": error.retry_after_s,
                },
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after_s)))
                },
            )
        except SpaceNotFoundError as error:
            self._fail(404, "unknown_space", str(error))
        except SpaceBuildError as error:
            self._fail(500, "space_build_failed", str(error))
        except UnknownSessionError as error:
            self._fail(404, "unknown_session", str(error))
        except SessionLimitError as error:
            self._fail(429, "too_many_sessions", str(error))
        except DurabilityError as error:
            # The durable write failed and the interaction was rolled
            # back server-side (503 genuinely means "not applied"); the
            # Retry-After hint carries the manager's healing cadence.
            self._fail(
                503,
                "durability_degraded",
                str(error),
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after_s)))
                },
            )
        except StaleEpochError as error:
            # The resume's pinned store generation aged out of every
            # retention window (runtime epochs, or arena segments after
            # a worker respawn).  Typed apart from the generic conflict:
            # the client's only recovery is a fresh session, not a retry.
            self._fail(409, "stale_epoch", str(error))
        except ValueError as error:
            # Server-side state disagreement: stale space digest on
            # resume, an already-live resume token, resume without a
            # state dir — the request was well-formed but cannot be
            # honoured against the current state.
            self._fail(409, "conflict", str(error))
        except (KeyError, IndexError) as error:
            # Well-typed but unsatisfiable references (a gid outside the
            # space, an unknown history step).
            self._fail(400, "bad_reference", str(error))
        except (BrokenPipeError, ConnectionResetError):
            raise  # client went away mid-reply; nothing to serialize
        except Exception as error:  # noqa: BLE001 — service must not die
            self._fail(500, "internal_error", f"{type(error).__name__}: {error}")
        else:
            if not handled:
                self._fail(404, "not_found", f"no route for {method} {self.path}")

    #: Method each session verb answers to; a known verb with the wrong
    #: method is a 405, not a 404 (the route exists, the method is wrong).
    _SESSION_VERBS = {
        "click": "POST",
        "backtrack": "POST",
        "drill_down": "POST",
        "close": "POST",
        "displayed": "GET",
        "stats": "GET",
    }

    def _route(self, method: str) -> bool:
        """Dispatch one request; False when no route matches."""
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/healthz":
            if method != "GET":
                self._fail(405, "method_not_allowed", "use GET /healthz")
                return True
            self._reply(200, self.service.health())
            return True
        if path == "/metrics":
            if method != "GET":
                self._fail(405, "method_not_allowed", "use GET /metrics")
                return True
            text = self.service.metrics_text()
            if text is None:
                self._fail(
                    404, "not_found", "metrics are disabled on this server"
                )
                return True
            self._reply_text(200, text)
            return True
        if path == "/spaces":
            if method != "GET":
                self._fail(405, "method_not_allowed", "use GET /spaces")
                return True
            registry = self.service.registry
            if registry is None:
                self._fail(
                    404,
                    "not_found",
                    "this server hosts a single space; see /healthz",
                )
                return True
            self._reply(
                200,
                {
                    "spaces": registry.describe(),
                    "default": registry.default_space,
                },
            )
            return True
        segments = [segment for segment in path.split("/") if segment]
        if len(segments) == 2 and segments[0] == "internal":
            control = self.service.control
            if control is None:
                return False  # not a replication worker: plain 404
            if method != "POST":
                self._fail(
                    405, "method_not_allowed", "use POST /internal/<verb>"
                )
                return True
            self._reply(200, control.handle(segments[1], self._body()))
            return True
        if (
            len(segments) == 3
            and segments[0] == "spaces"
            and segments[2] == "activity"
        ):
            if method != "GET":
                self._fail(
                    405,
                    "method_not_allowed",
                    "use GET /spaces/<name>/activity",
                )
                return True
            obs = self.service.obs
            if obs is None:
                self._fail(
                    404,
                    "not_found",
                    "the activity feed is disabled on this server",
                )
                return True
            # Registry mode keys rings by space name; a single-space
            # server publishes under its manager's own label, so any
            # requested name serves that one feed.
            ring_key = (
                segments[1]
                if self.service.registry is not None
                else self.service.manager.space_label
            )
            self._reply(
                200,
                {
                    "space": segments[1],
                    "events": obs.activity.recent(
                        ring_key, self._query_int("limit")
                    ),
                },
            )
            return True
        if (
            len(segments) == 3
            and segments[0] == "spaces"
            and segments[2] == "mutate"
        ):
            if method != "POST":
                self._fail(
                    405,
                    "method_not_allowed",
                    "use POST /spaces/<name>/mutate",
                )
                return True
            self._mutate(segments[1], self._body())
            return True
        if len(segments) < 2 or segments[0] != "v1" or segments[1] != "sessions":
            return False
        if len(segments) == 2:
            # Only GET and POST ever reach _route (no other do_* exists),
            # and the collection answers to both.
            if method == "POST":
                self._open(self._body())
            else:
                self._reply(200, {"sessions": self.service.session_ids()})
            return True
        session_id = segments[2]
        verb = segments[3] if len(segments) == 4 else None
        required = self._SESSION_VERBS.get(verb) if verb is not None else None
        if required is None:
            return False
        if method != required:
            self._fail(
                405,
                "method_not_allowed",
                f"use {required} /v1/sessions/<id>/{verb}",
            )
            return True
        # Routed by session id: with a registry, ids are unique across
        # spaces (each space's manager mints under its own prefix), so
        # the resolved manager is the session's home space.
        manager = self.service.resolve(session_id)
        if verb == "click":
            shown = manager.click(
                session_id, self._gid(self._int_gid(self._body()), manager)
            )
            self._reply(200, {"display": _display_payload(shown)})
        elif verb == "backtrack":
            shown = manager.backtrack(
                session_id, _int_field(self._body(), "step_id")
            )
            self._reply(200, {"display": _display_payload(shown)})
        elif verb == "drill_down":
            members = manager.drill_down(
                session_id, self._gid(self._int_gid(self._body()), manager)
            )
            self._reply(200, {"members": [int(user) for user in members]})
        elif verb == "close":
            self._reply(200, manager.close(session_id))
        elif verb == "displayed":
            shown = manager.displayed(session_id)
            self._reply(200, {"display": _display_payload(shown)})
        else:  # stats
            self._reply(200, manager.session_stats(session_id))
        return True

    def _query_int(self, name: str) -> Optional[int]:
        """An optional integer query parameter (``None`` when absent)."""
        parts = self.path.split("?", 1)
        if len(parts) < 2:
            return None
        values = parse_qs(parts[1]).get(name)
        if not values:
            return None
        try:
            return int(values[-1])
        except ValueError:
            raise _BadRequest(f"query parameter {name!r} must be an integer")

    def _int_gid(self, body: dict) -> int:
        return _int_field(body, "gid")

    def _gid(self, gid: int, manager: SessionManager) -> int:
        space = manager.runtime.space
        if not 0 <= gid < len(space):
            raise _BadRequest(f"gid {gid} outside the group space (0..{len(space) - 1})")
        return gid

    def _open(self, body: dict) -> None:
        unknown = set(body) - {"config", "seed_gids", "resume", "space"}
        if unknown:
            raise _BadRequest(f"unknown open fields {sorted(unknown)}")
        space_name = body.get("space")
        if space_name is not None and not isinstance(space_name, str):
            raise _BadRequest("space must be a space name string")
        manager, space_name = self.service.manager_for(space_name)
        config = None
        if body.get("config") is not None:
            knobs = body["config"]
            if not isinstance(knobs, dict):
                raise _BadRequest("config must be a JSON object")
            bad = set(knobs) - _CONFIG_FIELDS
            if bad:
                raise _BadRequest(f"unknown config fields {sorted(bad)}")
            try:
                config = SessionConfig(**knobs)
            except (TypeError, ValueError) as error:
                raise _BadRequest(f"invalid config: {error}")
        seed_gids = body.get("seed_gids")
        if seed_gids is not None:
            if not isinstance(seed_gids, list):
                raise _BadRequest("seed_gids must be a list of gids")
            checked = []
            for gid in seed_gids:
                if isinstance(gid, bool) or not isinstance(gid, int):
                    raise _BadRequest("seed_gids entries must be integers")
                checked.append(self._gid(gid, manager))
            seed_gids = checked
        resume = body.get("resume")
        if resume is not None and not isinstance(resume, str):
            raise _BadRequest("resume must be a token string")
        session_id, shown = manager.open_session(
            config=config, seed_gids=seed_gids, resume=resume
        )
        reply = {
            "session_id": session_id,
            "resume_token": manager.resume_token(session_id),
            "display": _display_payload(shown),
        }
        if space_name is not None:
            reply["space"] = space_name
        self._reply(200, reply)

    def _mutate(self, space_name: str, body: dict) -> None:
        delta, verify = parse_mutation(body)
        self._reply(200, self.service.mutate(space_name, delta, verify=verify))


class ExplorationService:
    """A running HTTP front over one session manager or a space registry.

    Binds at construction time (``port=0`` picks an ephemeral port — the
    bound port is ``self.port`` immediately, so test clients never race
    the listener), serves from a background thread after :meth:`start`,
    and optionally runs an idle-eviction sweeper that persists and
    retires sessions nobody has touched for ``idle_ttl_s`` seconds.

    Exactly one of ``manager`` (the single-space deployment) or
    ``registry`` (multi-space hosting: routing, lazy builds, per-space
    TTLs) fronts the protocol.  In registry mode idle TTLs are
    configured *on the registry* (globally and per space in the
    manifest); the service only drives the sweep loop.

    Usable as a context manager::

        with ExplorationService(manager).start() as service:
            client = ExplorationClient(service.host, service.port)
    """

    def __init__(
        self,
        manager: Optional[SessionManager] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        idle_ttl_s: Optional[float] = None,
        sweep_interval_s: Optional[float] = None,
        registry: Optional[SpaceRegistry] = None,
        control: Optional[object] = None,
        obs: Optional[Observability] = None,
        metrics: bool = True,
        slow_click_ms: Optional[float] = None,
    ) -> None:
        if (manager is None) == (registry is None):
            raise ValueError("pass exactly one of manager= or registry=")
        if registry is not None and idle_ttl_s is not None:
            raise ValueError(
                "with a registry, configure idle TTLs on the registry "
                "(global idle_ttl_s / per-space manifest entries)"
            )
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValueError("idle_ttl_s must be > 0")
        if (
            manager is not None
            and idle_ttl_s is not None
            and manager.state_dir is None
        ):
            raise ValueError(
                "idle eviction needs a durable manager (state_dir): evicting "
                "without persistence would silently destroy live sessions"
            )
        self.manager = manager
        self.registry = registry
        #: Observability bundle: metrics registry + event bus + traces.
        #: ``metrics=False`` is the kill switch — ``self.obs`` stays
        #: ``None``, ``/metrics`` and the activity feed 404, and no
        #: interaction publishes anything.  Pass ``obs=`` to share a
        #: bundle the caller owns (replication workers do); otherwise
        #: the service constructs and owns one.
        self._owns_obs = False
        if not metrics:
            obs = None
        elif obs is None:
            obs = Observability(slow_click_ms=slow_click_ms)
            self._owns_obs = True
        self.obs = obs
        if obs is not None:
            if manager is not None:
                manager.attach_obs(obs)
            else:
                registry.attach_obs(obs)
        #: Replication hook: a worker process mounts its parent-facing
        #: command surface here (``POST /internal/<verb>`` → ``control
        #: .handle(verb, body)``).  ``None`` — every deployment except a
        #: replication worker — keeps the namespace a plain 404, so the
        #: verbs are unreachable on public-facing services.
        self.control = control
        self.idle_ttl_s = idle_ttl_s
        # Registry mode always runs the sweeper: TTLs (and whole spaces)
        # may be registered after the service started, so the decision
        # cannot be frozen at construction time — the loop re-reads the
        # registry's TTLs every tick and idles cheaply when none exist.
        self._sweep_wanted = registry is not None or idle_ttl_s is not None
        self.sweep_interval_s = sweep_interval_s
        self._httpd = _Server((host, port), partial(_Handler, self))
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._sweep_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._stats_lock = threading.Lock()
        self._requests = 0
        self._errors = 0
        self._sweep_failures = 0
        self._started_at = time.monotonic()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "ExplorationService":
        if self._stopping.is_set():
            # stop() closed the listening socket for good; a thread
            # spawned now would die instantly and every client connect
            # would be refused with nothing surfaced to the caller.
            raise RuntimeError("service was stopped; construct a new one")
        if self._serve_thread is not None:
            raise RuntimeError("service already started")
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-service:{self.port}",
            daemon=True,
        )
        self._serve_thread.start()
        if self._sweep_wanted:
            self._sweep_thread = threading.Thread(
                target=self._sweep_loop,
                name=f"repro-service-sweeper:{self.port}",
                daemon=True,
            )
            self._sweep_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drop live connections, join the threads.

        Deliberately does *not* close live sessions: a durable manager
        has already checkpointed every interaction, so stopping here is
        exactly the crash the resume path recovers from; callers wanting
        a graceful drain close sessions through the protocol first.
        """
        self._stopping.set()
        self._httpd.shutdown()
        self._httpd.close_connections()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if self._sweep_thread is not None:
            self._sweep_thread.join(timeout=5.0)
            self._sweep_thread = None
        if self._owns_obs and self.obs is not None:
            self.obs.close()

    def __enter__(self) -> "ExplorationService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _sweep_interval(self) -> float:
        """Seconds until the next sweep, re-derived from the live TTLs.

        A quarter of the shortest configured TTL keeps eviction timely;
        a registry with no TTLs (yet) is polled lazily once a second so
        a TTL registered later starts being honoured without a restart.
        """
        if self.sweep_interval_s is not None:
            return self.sweep_interval_s
        ttl = (
            self.registry.min_ttl_s()
            if self.registry is not None
            else self.idle_ttl_s
        )
        return max(ttl / 4.0, 0.05) if ttl is not None else 1.0

    def _sweep_loop(self) -> None:
        while not self._stopping.wait(self._sweep_interval()):
            try:
                if self.registry is not None:
                    self.registry.sweep_idle()
                else:
                    self.manager.evict_idle(self.idle_ttl_s)
            except Exception:  # noqa: BLE001 — one bad sweep (full disk,
                # a racing open) must not silently end eviction for the
                # rest of the service's life; failures are surfaced on
                # /healthz instead.
                self._count_sweep_failure()

    # -- routing ---------------------------------------------------------

    def manager_for(
        self, space: Optional[str]
    ) -> tuple[SessionManager, Optional[str]]:
        """The manager an ``open`` targets, plus the resolved space name.

        Registry mode routes by name (default: the manifest's first
        space) and may raise the building / not-found space errors; a
        single-space service refuses the ``space`` field outright — a
        client that believes it is talking to a multi-space deployment
        must hear so, not silently land on whatever space this is.
        """
        if self.registry is None:
            if space is not None:
                raise _BadRequest(
                    "this server hosts a single space; drop the space field"
                )
            return self.manager, None
        name = space if space is not None else self.registry.default_space
        return self.registry.manager(name), name

    def resolve(self, session_id: str) -> SessionManager:
        """The manager serving ``session_id`` (routed in registry mode)."""
        if self.registry is None:
            return self.manager
        return self.registry.route(session_id)

    def session_ids(self) -> list[str]:
        if self.registry is None:
            return self.manager.session_ids()
        return self.registry.session_ids()

    def mutate(self, space: str, delta, verify: bool = False) -> dict:
        """Apply a group delta to ``space`` as a new store epoch.

        Registry mode routes by name; a single-space service refuses the
        spaces namespace outright (same contract as ``GET /spaces`` — the
        path names a space this server cannot resolve).
        """
        if self.registry is None:
            raise SpaceNotFoundError(space)
        return self.registry.mutate(space, delta, verify=verify)

    # -- counters --------------------------------------------------------

    def count_request(self) -> None:
        with self._stats_lock:
            self._requests += 1

    def count_error(self) -> None:
        with self._stats_lock:
            self._errors += 1

    def _count_sweep_failure(self) -> None:
        """One source of truth: the registry counter when obs is on."""
        if self.obs is not None:
            self.obs.sweep_failures.inc()
        else:
            with self._stats_lock:
                self._sweep_failures += 1

    def sweep_failures(self) -> int:
        if self.obs is not None:
            return int(self.obs.sweep_failures.labels().get())
        with self._stats_lock:
            return self._sweep_failures

    # -- observability ----------------------------------------------------

    def metrics_text(self) -> Optional[str]:
        """The Prometheus exposition (``None`` when metrics are off)."""
        if self.obs is None:
            return None
        return self.obs.render_metrics()

    def health(self) -> dict:
        """The ``/healthz`` payload: service, runtime and cache stats.

        Single-space mode keeps the PR 4 shape (``manager``); registry
        mode reports the registry's aggregate counters plus a per-space
        section (state, live sessions, runtime + shared-cache stats) so
        one probe sees every hosted space.
        """
        with self._stats_lock:
            requests, errors = self._requests, self._errors
        sweep_failures = self.sweep_failures()
        degraded = (
            self.registry.any_degraded()
            if self.registry is not None
            else self.manager.degraded
        )
        payload = {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "requests": requests,
            "errors": errors,
            "idle_ttl_s": self.idle_ttl_s,
            "sweep_failures": sweep_failures,
        }
        if self.registry is not None:
            payload["registry"] = self.registry.stats()
            payload["spaces"] = self.registry.describe()
        else:
            payload["manager"] = self.manager.stats()
        return payload

    def __repr__(self) -> str:
        if self.registry is not None:
            return f"ExplorationService({self.url}, {self.registry!r})"
        return f"ExplorationService({self.url}, {len(self.manager)} live sessions)"
