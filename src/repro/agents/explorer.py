"""Simulated explorers.

The paper's evaluation relies on people (demo visitors, the user studies of
[5] and [14]); offline we substitute *agents* that drive
:class:`~repro.core.session.ExplorationSession` through the same loop
(DESIGN.md §4).  Agents have partial knowledge (they recognise a good group
when shown one, but cannot query for it — exactly the paper's premise that
"no querying mechanism is of help") and make noisy choices to model human
error.

Three agents:

- :class:`TargetSeekingExplorer` — ST tasks: walk toward one target group;
- :class:`CollectorExplorer` — MT tasks: harvest users into MEMO until the
  task's constraints hold (the PC-chair behaviour, including the paper's
  "delete a learned demographic value" move when balance stalls);
- :class:`IndividualBrowserBaseline` — the no-groups control of the [5]
  user study: inspect users one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.group import Group
from repro.core.session import ExplorationSession
from repro.core.tasks import MinShare, MultiTargetTask, SingleTargetTask


@dataclass(frozen=True)
class AgentConfig:
    """Shared agent knobs."""

    max_iterations: int = 30
    noise: float = 0.10  # probability of a suboptimal click (human error)
    harvest_per_step: int = 5  # users bookmarked per iteration (MT)
    recognition_threshold: float = 0.65  # member overlap at which the ST agent
    # accepts a displayed group as "the group I was looking for"
    seed: int = 0


@dataclass
class AgentResult:
    """Outcome of one simulated session."""

    completed: bool
    iterations: int
    progress: float
    effort: int  # items the explorer had to inspect (groups or users)
    trajectory: list[int] = field(default_factory=list)
    #: Governor escalation tier each click's selection reached (empty when
    #: the agent drove no session or the governor was off).
    governor_tiers: list[int] = field(default_factory=list)

    @property
    def satisfaction(self) -> float:
        """Satisfaction proxy in [0, 1]: task progress, full marks on completion.

        Matches how the [5] study scored sessions: a satisfied explorer is
        one whose goal was met; partial progress earns partial credit.
        """
        return 1.0 if self.completed else self.progress


class TargetSeekingExplorer:
    """ST agent: recognises the target by member overlap and walks to it."""

    def __init__(self, task: SingleTargetTask, config: AgentConfig | None = None):
        self.task = task
        self.config = config or AgentConfig()
        if task.target_gid is None:
            raise ValueError("TargetSeekingExplorer needs a concrete target gid")
        self._target_members = task.space[task.target_gid].members

    def _affinity(self, group: Group) -> float:
        """How much a displayed group resembles what the explorer remembers."""
        if group.size == 0:
            return 0.0
        overlap = len(
            np.intersect1d(group.members, self._target_members, assume_unique=True)
        )
        union = group.size + len(self._target_members) - overlap
        return overlap / union if union else 0.0

    def _navigation_score(self, group: Group) -> float:
        """Which way to walk: recall toward the target community, with a
        Jaccard bonus.  Recall lets the agent descend from huge coarse
        groups (high recall, low Jaccard) toward the target; the bonus
        prefers the tighter of two equally-covering directions."""
        if group.size == 0:
            return 0.0
        overlap = len(
            np.intersect1d(group.members, self._target_members, assume_unique=True)
        )
        recall = overlap / max(len(self._target_members), 1)
        return recall + 0.3 * self._affinity(group)

    def run(self, session: ExplorationSession) -> AgentResult:
        rng = np.random.default_rng(self.config.seed)
        shown = session.start()
        effort = len(shown)
        trajectory: list[int] = []
        tiers = self._observed_tiers(session)
        target_gid = self.task.target_gid
        assert target_gid is not None

        best_affinity = 0.0
        for iteration in range(1, self.config.max_iterations + 1):
            if not shown:
                break
            best_affinity = max(
                best_affinity, max(self._affinity(group) for group in shown)
            )
            # Recognition: the target (or something indistinguishable from
            # it — §III wants *a* discussion group she agrees with, not one
            # specific gid) on screen ends the hunt.
            recognised = next(
                (
                    group
                    for group in shown
                    if group.gid == target_gid
                    or self._affinity(group) >= self.config.recognition_threshold
                ),
                None,
            )
            if recognised is not None:
                session.bookmark_group(recognised.gid, "found it")
                return AgentResult(
                    completed=True,
                    iterations=iteration,
                    progress=1.0,
                    effort=effort,
                    trajectory=trajectory + [recognised.gid],
                    governor_tiers=tiers,
                )
            # Prefer unexplored directions (the explorer sees HISTORY and
            # will not re-click a dead end); when everything on screen is
            # stale, backtrack to the most promising earlier step — the
            # paper's HISTORY gesture.
            visited = set(trajectory)
            fresh = [group for group in shown if group.gid not in visited]
            if not fresh:
                best_step = self._best_backtrack(session, visited)
                if best_step is not None:
                    shown = session.backtrack(best_step)
                    fresh = [
                        group for group in shown if group.gid not in visited
                    ]
                if not fresh:
                    fresh = shown  # nothing new anywhere: retry in place
            scored = sorted(
                fresh, key=lambda group: (-self._navigation_score(group), group.gid)
            )
            choice = scored[0]
            if len(scored) > 1 and rng.random() < self.config.noise:
                choice = scored[int(rng.integers(1, len(scored)))]
            trajectory.append(choice.gid)
            shown = session.click(choice.gid)
            tiers.extend(self._observed_tiers(session))
            effort += len(shown)

        return self._final_result(
            session, effort, trajectory, best_affinity, tiers
        )

    def _best_backtrack(
        self, session: ExplorationSession, visited: set[int]
    ) -> int | None:
        """The recorded step whose display has the best unvisited option."""
        best_step = None
        best_score = 0.0
        for step in session.history:
            for gid in step.shown_gids:
                if gid in visited:
                    continue
                score = self._navigation_score(session.space[gid])
                if score > best_score:
                    best_score = score
                    best_step = step.step_id
        return best_step

    def _final_result(
        self,
        session: ExplorationSession,
        effort: int,
        trajectory: list[int],
        best_affinity: float,
        tiers: list[int],
    ) -> AgentResult:
        # Incomplete: partial satisfaction is the closest group ever shown —
        # the explorer walked away with *something*, just not the goal.
        progress = max(self.task.progress(session.memo), best_affinity)
        return AgentResult(
            completed=self.task.is_complete(session.memo),
            iterations=self.config.max_iterations,
            progress=progress,
            effort=effort,
            trajectory=trajectory,
            governor_tiers=tiers,
        )

    @staticmethod
    def _observed_tiers(session: ExplorationSession) -> list[int]:
        selection = session.last_selection
        return [selection.governor_tier] if selection is not None else []


class CollectorExplorer:
    """MT agent: the PC chair of Scenario 1.

    Per iteration: harvest useful members of the most promising displayed
    group into MEMO, then click the group most likely to help the unmet
    constraints.  When a :class:`MinShare` constraint stalls (e.g. gender
    balance), the agent deletes the dominant opposite token from CONTEXT —
    the paper's own unlearning example.
    """

    def __init__(self, task: MultiTargetTask, config: AgentConfig | None = None):
        self.task = task
        self.config = config or AgentConfig()

    # -- helpers ----------------------------------------------------------

    def _net_gain(self, user: int, memo_users: set[int]) -> float:
        """Net progress delta if ``user`` were bookmarked (can be negative).

        Negative deltas matter: a user outside the venue community bumps
        MinCount but dilutes MembersOf — the chair would not invite them.
        """
        if user in memo_users:
            return 0.0
        dataset = self.task.dataset
        users = list(memo_users)
        with_user = users + [user]
        before = float(
            np.mean([c.satisfaction(users, dataset) for c in self.task.constraints])
        )
        after = float(
            np.mean(
                [c.satisfaction(with_user, dataset) for c in self.task.constraints]
            )
        )
        return after - before

    def _group_promise(self, group: Group, memo_users: set[int]) -> float:
        """Expected usefulness of a group: mean positive member gain."""
        sample = group.members[: min(group.size, 20)]
        if len(sample) == 0:
            return 0.0
        gains = [max(0.0, self._net_gain(int(user), memo_users)) for user in sample]
        return float(np.mean(gains))

    # -- main loop ----------------------------------------------------------

    def run(self, session: ExplorationSession, seed_gids: list[int] | None = None) -> AgentResult:
        rng = np.random.default_rng(self.config.seed)
        shown = session.start(seed_gids=seed_gids)
        effort = len(shown)
        trajectory: list[int] = []
        tiers = TargetSeekingExplorer._observed_tiers(session)

        for iteration in range(1, self.config.max_iterations + 1):
            if not shown:
                break
            memo_users = set(session.memo.collected_users())

            # Harvest: bookmark the best members of the most promising group.
            ranked = sorted(
                shown,
                key=lambda group: (-self._group_promise(group, memo_users), group.gid),
            )
            best = ranked[0]
            scan = min(best.size, 80)
            effort += scan
            candidates = sorted(
                (int(user) for user in best.members[:scan]),
                key=lambda user: -self._net_gain(user, memo_users),
            )
            harvested = 0
            for user in candidates:
                if harvested >= self.config.harvest_per_step:
                    break
                # Re-check against the *updated* memo: gains interact
                # (the 4th female changes what the 5th is worth).
                if self._net_gain(user, memo_users) > 1e-9:
                    session.bookmark_user(user, f"step {iteration}")
                    memo_users.add(user)
                    harvested += 1

            if self.task.is_complete(session.memo):
                return AgentResult(
                    completed=True,
                    iterations=iteration,
                    progress=1.0,
                    effort=effort,
                    trajectory=trajectory,
                    governor_tiers=tiers,
                )

            # Unlearn when a share constraint stalls: the paper's CONTEXT
            # deletion gesture ("delete ... 'male' to obtain more
            # gender-balanced results").
            unmet_share = next(
                (
                    constraint
                    for constraint in self.task.unmet(session.memo)
                    if isinstance(constraint, MinShare)
                ),
                None,
            )
            if unmet_share is not None and iteration >= 2:
                column = self.task.dataset.column(unmet_share.attribute)
                for value in column.vocab.labels():
                    if value != unmet_share.value:
                        session.context.forget_token(
                            f"{unmet_share.attribute}={value}"
                        )

            # Click: the most promising group, with human noise.
            choice = ranked[0]
            if len(ranked) > 1 and rng.random() < self.config.noise:
                choice = ranked[int(rng.integers(1, len(ranked)))]
            trajectory.append(choice.gid)
            shown = session.click(choice.gid)
            tiers.extend(TargetSeekingExplorer._observed_tiers(session))
            effort += len(shown)

        return AgentResult(
            completed=self.task.is_complete(session.memo),
            iterations=self.config.max_iterations,
            progress=self.task.progress(session.memo),
            effort=effort,
            trajectory=trajectory,
            governor_tiers=tiers,
        )


class IndividualBrowserBaseline:
    """The control arm of the [5] study: no groups, user-by-user inspection.

    For an MT task the browser walks a ranked user list (most active first
    — the natural sort every rating site offers) and bookmarks anyone who
    helps; effort is the number of users inspected.  The same interaction
    budget as the group-based agent buys far less progress, which is the
    80%-vs-individuals comparison of experiment C5.
    """

    def __init__(self, task: MultiTargetTask, config: AgentConfig | None = None):
        self.task = task
        self.config = config or AgentConfig()

    def run(self, inspection_budget: int) -> AgentResult:
        dataset = self.task.dataset
        order = np.argsort(-dataset.user_activity(), kind="stable")
        memo_users: list[int] = []
        from repro.core.memo import Memo

        memo = Memo()
        inspected = 0
        for user in order:
            if inspected >= inspection_budget:
                break
            inspected += 1
            user = int(user)
            before = self.task.progress(memo)
            memo.bookmark_user(user)
            if self.task.progress(memo) <= before:
                memo.remove_user(user)
            if self.task.is_complete(memo):
                return AgentResult(
                    completed=True,
                    iterations=inspected,
                    progress=1.0,
                    effort=inspected,
                )
        return AgentResult(
            completed=self.task.is_complete(memo),
            iterations=inspected,
            progress=self.task.progress(memo),
            effort=inspected,
        )
