"""Simulated explorers standing in for the paper's live users."""

from repro.agents.explorer import (
    AgentConfig,
    AgentResult,
    CollectorExplorer,
    IndividualBrowserBaseline,
    TargetSeekingExplorer,
)
from repro.agents.scenarios import (
    ScenarioOutcome,
    discussion_group_target,
    pc_formation_study,
    run_discussion_search,
    run_pc_formation,
    satisfaction_study,
    seed_groups_for_venue,
    venue_community,
)

__all__ = [
    "AgentConfig",
    "AgentResult",
    "CollectorExplorer",
    "IndividualBrowserBaseline",
    "ScenarioOutcome",
    "TargetSeekingExplorer",
    "discussion_group_target",
    "pc_formation_study",
    "run_discussion_search",
    "run_pc_formation",
    "satisfaction_study",
    "seed_groups_for_venue",
    "venue_community",
]
