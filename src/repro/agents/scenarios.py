"""The paper's two demonstration scenarios, runnable end to end.

Scenario 1 (§III, MT): a PC chair assembles a geographically diverse,
gender-balanced committee for a database venue, seeded from "last year's
PC".  The paper reports *"less than 10 iterations on average"* for SIGMOD,
VLDB and CIKM — experiment C4 re-measures that with
:class:`~repro.agents.explorer.CollectorExplorer`.

Scenario 2 (§III, ST): an avid reader navigates BOOKCROSSING groups to find
a discussion group she agrees with.  The [5] study reports *"80%
satisfaction ... via user groups in contrast to individuals"* — experiment
C5 re-measures both arms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.agents.explorer import (
    AgentConfig,
    AgentResult,
    CollectorExplorer,
    IndividualBrowserBaseline,
    TargetSeekingExplorer,
)
from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.group import GroupSpace
from repro.core.runtime import GroupSpaceRuntime
from repro.core.session import SessionConfig
from repro.core.tasks import SingleTargetTask, committee_task
from repro.data.generators.bookcrossing import BookCrossingData
from repro.data.generators.dbauthors import DBAuthorsData


@dataclass
class ScenarioOutcome:
    """One scenario arm's aggregate over repeated runs."""

    label: str
    runs: list[AgentResult]

    @property
    def mean_iterations(self) -> float:
        return float(np.mean([run.iterations for run in self.runs]))

    @property
    def completion_rate(self) -> float:
        return float(np.mean([1.0 if run.completed else 0.0 for run in self.runs]))

    @property
    def mean_satisfaction(self) -> float:
        return float(np.mean([run.satisfaction for run in self.runs]))

    @property
    def mean_effort(self) -> float:
        return float(np.mean([run.effort for run in self.runs]))

    @property
    def mean_governor_tier(self) -> float:
        """Mean escalation tier across every click of every run (0 = off)."""
        tiers = [tier for run in self.runs for tier in run.governor_tiers]
        return float(np.mean(tiers)) if tiers else 0.0


# ---------------------------------------------------------------------------
# Scenario 1: expert-set formation (MT)
# ---------------------------------------------------------------------------


def venue_community(data: DBAuthorsData, venue: str) -> np.ndarray:
    """User indices with at least one publication at ``venue``."""
    dataset = data.dataset
    return dataset.users_of_item(dataset.items.code(venue))


def seed_groups_for_venue(space: GroupSpace, venue: str, limit: int = 3) -> list[int]:
    """Groups whose description mentions the venue — "last year's PC" seeds."""
    token = f"item:{venue}"
    seeds = [
        group.gid for group in space if token in group.description
    ]
    seeds.sort(key=lambda gid: -space[gid].size)
    return seeds[:limit]


def run_pc_formation(
    data: DBAuthorsData,
    space: GroupSpace,
    venue: str = "SIGMOD",
    committee_size: int = 12,
    agent_config: AgentConfig | None = None,
    session_config: SessionConfig | None = None,
    runtime: GroupSpaceRuntime | None = None,
) -> AgentResult:
    """One PC-formation session for one venue (experiment C4's unit).

    ``runtime`` is the serving runtime the session is opened on; repeated
    runs over the same runtime share its index and cross-session cache —
    exactly how several chairs exploring one DBLP space would be served.
    A private runtime is created when none is passed.
    """
    community = frozenset(
        int(user) for user in venue_community(data, venue)
    )
    task = committee_task(
        data.dataset,
        size=committee_size,
        community=community,
    )
    if runtime is None:
        runtime = GroupSpaceRuntime(space, share_cache=False)
    elif runtime.space is not space:
        raise ValueError("runtime serves a different group space")
    session = runtime.create_session(session_config or SessionConfig())
    agent = CollectorExplorer(task, agent_config or AgentConfig())
    return agent.run(session, seed_gids=seed_groups_for_venue(space, venue))


def pc_formation_study(
    data: DBAuthorsData,
    space: GroupSpace,
    venues: tuple[str, ...] = ("SIGMOD", "VLDB", "CIKM"),
    repeats: int = 5,
    committee_size: int = 12,
    session_config: SessionConfig | None = None,
    runtime: GroupSpaceRuntime | None = None,
) -> dict[str, ScenarioOutcome]:
    """C4: repeated PC formation per venue; the paper expects <10 iterations.

    All sessions of the study run against one serving runtime (built here
    when not supplied), so the index is constructed once and every
    repeat's precomputation warms the next — the multi-chair story.
    """
    if runtime is None:
        runtime = GroupSpaceRuntime(space)
    outcomes: dict[str, ScenarioOutcome] = {}
    for venue in venues:
        runs = [
            run_pc_formation(
                data,
                space,
                venue=venue,
                committee_size=committee_size,
                agent_config=AgentConfig(seed=repeat, max_iterations=25),
                session_config=session_config,
                runtime=runtime,
            )
            for repeat in range(repeats)
        ]
        outcomes[venue] = ScenarioOutcome(label=venue, runs=runs)
    return outcomes


# ---------------------------------------------------------------------------
# Scenario 2: discussion groups (ST)
# ---------------------------------------------------------------------------


def discussion_group_target(space: GroupSpace, genre: str) -> int | None:
    """A genre-lovers group: the largest group tagged favorite_genre=genre."""
    token = f"favorite_genre={genre}"
    matching = [group for group in space if token in group.description]
    if not matching:
        return None
    return max(matching, key=lambda group: group.size).gid


def run_discussion_search(
    data: BookCrossingData,
    space: GroupSpace,
    genre: str = "fiction",
    agent_config: AgentConfig | None = None,
    session_config: SessionConfig | None = None,
    runtime: GroupSpaceRuntime | None = None,
) -> AgentResult:
    """One ST session: find the genre discussion group (experiment C5 unit)."""
    target = discussion_group_target(space, genre)
    if target is None:
        raise ValueError(f"no discussion group for genre {genre!r} in this space")
    task = SingleTargetTask(space, target_gid=target)
    if runtime is None:
        runtime = GroupSpaceRuntime(space, share_cache=False)
    elif runtime.space is not space:
        raise ValueError("runtime serves a different group space")
    session = runtime.create_session(session_config or SessionConfig())
    agent = TargetSeekingExplorer(task, agent_config or AgentConfig())
    return agent.run(session)


def satisfaction_study(
    data: BookCrossingData,
    space: GroupSpace,
    genres: tuple[str, ...] = ("fiction", "romance", "mystery", "fantasy"),
    repeats: int = 5,
    session_config: SessionConfig | None = None,
) -> tuple[ScenarioOutcome, ScenarioOutcome]:
    """C5: group-based exploration vs individual browsing, same budget.

    The individual arm gets the group arm's mean *effort* as its inspection
    budget, so both arms spend comparable attention.  ``session_config``
    (engine, governor, pool-cache knobs) applies to every group-arm
    session, so the study can also quantify what escalation/caching buy.
    """
    runtime = GroupSpaceRuntime(space)
    group_runs: list[AgentResult] = []
    for genre in genres:
        target = discussion_group_target(space, genre)
        if target is None:
            continue
        for repeat in range(repeats):
            task = SingleTargetTask(space, target_gid=target)
            session = runtime.create_session(session_config or SessionConfig())
            agent = TargetSeekingExplorer(
                task, AgentConfig(seed=repeat, max_iterations=20)
            )
            group_runs.append(agent.run(session))
    group_outcome = ScenarioOutcome("groups", group_runs)

    # Individual-browsing arm: same attention budget, no group structure.
    budget = max(10, int(group_outcome.mean_effort))
    individual_runs: list[AgentResult] = []
    for genre in genres:
        target = discussion_group_target(space, genre)
        if target is None:
            continue
        target_members = space[target].members
        for repeat in range(repeats):
            individual_runs.append(
                _individual_group_hunt(data, space, target_members, budget, seed=repeat)
            )
    return group_outcome, ScenarioOutcome("individuals", individual_runs)


def _individual_group_hunt(
    data: BookCrossingData,
    space: GroupSpace,
    target_members: np.ndarray,
    budget: int,
    seed: int,
) -> AgentResult:
    """Individual browsing for an ST goal: inspect users one at a time.

    The browser succeeds once it has *seen* enough of the target community
    to identify it (half the group's members, capped at 25) — a generous
    stand-in for "found my discussion group user by user".
    """
    dataset = data.dataset
    rng = np.random.default_rng(seed)
    order = np.argsort(-dataset.user_activity(), kind="stable")
    # Humans skim with error: shuffle within blocks of 20.
    order = order.copy()
    for start in range(0, len(order), 20):
        block = order[start : start + 20]
        rng.shuffle(block)
        order[start : start + 20] = block
    needed = int(min(25, max(3, len(target_members) // 2)))
    seen = 0
    for position, user in enumerate(order[:budget], start=1):
        if int(user) in set(target_members.tolist()):
            seen += 1
            if seen >= needed:
                return AgentResult(
                    completed=True, iterations=position, progress=1.0, effort=position
                )
    return AgentResult(
        completed=False,
        iterations=budget,
        progress=seen / needed if needed else 0.0,
        effort=budget,
    )
