"""Group-discovery substrate: the four miners VEXUS names plus a baseline.

§II-A: *"For user datasets, different group discovery algorithms such as
LCM [16] and α-MOMRI [13] can be used.  In case of user data streams,
STREAMMINING [9] and BIRCH [18] can be employed."*  All four are
implemented here, plus Apriori as a validation/performance baseline.
"""

from repro.mining.apriori import AprioriConfig, close_itemsets, mine_frequent
from repro.mining.birch import Birch, ClusteringFeature
from repro.mining.itemsets import FrequentItemset, TransactionDB, brute_force_closed
from repro.mining.lcm import LCMConfig, LCMStats, mine_closed
from repro.mining.momri import (
    MOMRIConfig,
    MOMRISolution,
    ParetoArchive,
    alpha_dominates,
    momri,
)
from repro.mining.streammining import StreamMiner

__all__ = [
    "AprioriConfig",
    "Birch",
    "ClusteringFeature",
    "FrequentItemset",
    "LCMConfig",
    "LCMStats",
    "MOMRIConfig",
    "MOMRISolution",
    "ParetoArchive",
    "StreamMiner",
    "TransactionDB",
    "alpha_dominates",
    "brute_force_closed",
    "close_itemsets",
    "mine_closed",
    "mine_frequent",
    "momri",
]
