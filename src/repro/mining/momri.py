"""α-MOMRI: multi-objective group discovery (reconstruction of [13]).

VEXUS §II-A lists α-MOMRI (Omidvar-Tehrani et al., PKDD 2016) as an
alternative offline group-discovery backend.  No public implementation
exists, so this module reconstructs it from the cited paper's description
(DESIGN.md §4): discover *sets of k groups* that are Pareto-optimal under
multiple quality objectives, with an **α-relaxed dominance** that collapses
near-duplicate solutions — larger α means a coarser, cheaper front.

Objectives (all maximised, all in [0, 1]):

- ``coverage``   — fraction of the universe covered by the union of members;
- ``diversity``  — 1 − mean pairwise Jaccard overlap between the groups;
- ``homogeneity``— 1 − normalised mean within-group spread of a per-user
  value (e.g. mean rating), when values are supplied.

The search is an α-Pareto archive fed by seeded greedy construction plus
swap-based local search under a fixed evaluation budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mining.itemsets import FrequentItemset


@dataclass(frozen=True)
class MOMRISolution:
    """One k-group solution on the α-Pareto front."""

    groups: tuple[FrequentItemset, ...]
    objectives: dict[str, float] = field(hash=False, compare=False)

    def vector(self, names: tuple[str, ...]) -> tuple[float, ...]:
        return tuple(self.objectives[name] for name in names)


@dataclass
class MOMRIConfig:
    """Search knobs for :func:`momri`."""

    k: int = 3
    alpha: float = 0.05
    budget_evaluations: int = 2000
    n_seeds: int = 8
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.alpha < 0:
            raise ValueError("alpha must be >= 0")


class _Objectives:
    """Vectorised objective evaluation over candidate groups."""

    def __init__(
        self,
        candidates: list[FrequentItemset],
        n_transactions: int,
        values: Optional[np.ndarray],
    ) -> None:
        self.candidates = candidates
        self.n = max(n_transactions, 1)
        self.values = values
        self.names: tuple[str, ...] = (
            ("coverage", "diversity", "homogeneity")
            if values is not None
            else ("coverage", "diversity")
        )
        if values is not None:
            spread = float(values.max() - values.min()) if len(values) else 0.0
            self._value_scale = spread if spread > 0 else 1.0
        self._pair_jaccard: dict[tuple[int, int], float] = {}
        self._homogeneity: dict[int, float] = {}

    def evaluate(self, indices: tuple[int, ...]) -> dict[str, float]:
        groups = [self.candidates[index] for index in indices]
        union = np.unique(np.concatenate([group.tids for group in groups]))
        coverage = len(union) / self.n
        diversity = 1.0 - self._mean_overlap(indices)
        objectives = {"coverage": coverage, "diversity": diversity}
        if self.values is not None:
            objectives["homogeneity"] = float(
                np.mean([self._group_homogeneity(index) for index in indices])
            )
        return objectives

    def _mean_overlap(self, indices: tuple[int, ...]) -> float:
        if len(indices) < 2:
            return 0.0
        overlaps = [
            self._jaccard(low, high)
            for low, high in itertools.combinations(sorted(indices), 2)
        ]
        return float(np.mean(overlaps))

    def _jaccard(self, low: int, high: int) -> float:
        key = (low, high)
        cached = self._pair_jaccard.get(key)
        if cached is None:
            left = self.candidates[low].tids
            right = self.candidates[high].tids
            inter = len(np.intersect1d(left, right, assume_unique=True))
            union = len(left) + len(right) - inter
            cached = inter / union if union else 0.0
            self._pair_jaccard[key] = cached
        return cached

    def _group_homogeneity(self, index: int) -> float:
        cached = self._homogeneity.get(index)
        if cached is None:
            assert self.values is not None
            member_values = self.values[self.candidates[index].tids]
            spread = float(member_values.std()) if len(member_values) else 0.0
            cached = max(0.0, 1.0 - spread / self._value_scale)
            self._homogeneity[index] = cached
        return cached


def alpha_dominates(
    left: tuple[float, ...], right: tuple[float, ...], alpha: float
) -> bool:
    """True when ``left`` α-dominates ``right``.

    ε-dominance in the sense of Laumanns et al.: scaling ``left`` up by
    ``(1 + α)`` must match-or-beat ``right`` on every objective, and beat it
    strictly on at least one *unscaled* coordinate when α is zero.
    """
    scaled = tuple(value * (1.0 + alpha) for value in left)
    if any(s < r for s, r in zip(scaled, right)):
        return False
    if alpha > 0:
        return True
    return any(l > r for l, r in zip(left, right))


class ParetoArchive:
    """Archive of mutually non-α-dominated solutions."""

    def __init__(self, names: tuple[str, ...], alpha: float) -> None:
        self.names = names
        self.alpha = alpha
        self._solutions: dict[tuple[int, ...], MOMRISolution] = {}

    def offer(self, key: tuple[int, ...], solution: MOMRISolution) -> bool:
        """Insert unless α-dominated; evict members it α-dominates."""
        vector = solution.vector(self.names)
        for existing in self._solutions.values():
            if alpha_dominates(existing.vector(self.names), vector, self.alpha):
                return False
        dominated = [
            existing_key
            for existing_key, existing in self._solutions.items()
            if alpha_dominates(vector, existing.vector(self.names), self.alpha)
        ]
        for existing_key in dominated:
            del self._solutions[existing_key]
        self._solutions[key] = solution
        return True

    def solutions(self) -> list[MOMRISolution]:
        return sorted(
            self._solutions.values(),
            key=lambda solution: solution.vector(self.names),
            reverse=True,
        )

    def entries(self) -> list[tuple[tuple[int, ...], MOMRISolution]]:
        """(candidate-index key, solution) pairs, best objective vector first."""
        return sorted(
            self._solutions.items(),
            key=lambda entry: entry[1].vector(self.names),
            reverse=True,
        )

    def __len__(self) -> int:
        return len(self._solutions)


def momri(
    candidates: list[FrequentItemset],
    n_transactions: int,
    config: Optional[MOMRIConfig] = None,
    values: Optional[np.ndarray] = None,
) -> list[MOMRISolution]:
    """α-approximate Pareto front of k-group sets drawn from ``candidates``.

    ``values`` (optional, one float per transaction, e.g. each user's mean
    rating) switches on the third ``homogeneity`` objective.
    """
    config = config or MOMRIConfig()
    usable = [group for group in candidates if len(group.tids) > 0]
    if len(usable) < config.k:
        return []
    rng = np.random.default_rng(config.seed)
    objectives = _Objectives(usable, n_transactions, values)
    archive = ParetoArchive(objectives.names, config.alpha)
    evaluations = 0

    def evaluate(indices: tuple[int, ...]) -> MOMRISolution:
        nonlocal evaluations
        evaluations += 1
        measured = objectives.evaluate(indices)
        return MOMRISolution(tuple(usable[index] for index in indices), measured)

    # --- seeds: greedy builds biased toward each single objective ---------
    order_by_size = np.argsort([-len(group.tids) for group in usable])
    seeds: list[tuple[int, ...]] = [tuple(int(i) for i in order_by_size[: config.k])]
    for _ in range(config.n_seeds - 1):
        seeds.append(tuple(int(i) for i in rng.choice(len(usable), size=config.k, replace=False)))
    for seed_indices in seeds:
        key = tuple(sorted(seed_indices))
        archive.offer(key, evaluate(key))

    # --- local search: swap one member for a random outsider --------------
    if len(usable) > config.k:
        while evaluations < config.budget_evaluations and len(archive):
            entries = archive.entries()
            base_indices, _ = entries[int(rng.integers(len(entries)))]
            position = int(rng.integers(config.k))
            replacement = int(rng.integers(len(usable)))
            if replacement in base_indices:
                continue
            mutated = tuple(
                sorted(
                    replacement if slot == position else index
                    for slot, index in enumerate(base_indices)
                )
            )
            archive.offer(mutated, evaluate(mutated))

    return archive.solutions()
