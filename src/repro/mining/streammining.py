"""In-core frequent itemset mining over transaction streams.

VEXUS §II-A: *"In case of user data streams, STREAMMINING [9] and BIRCH
[18] can be employed."*  Reference [9] (Jin & Agrawal, ICDM 2005) describes
a one-pass, bounded-memory itemset miner; no public implementation exists,
so this is a reconstruction (DESIGN.md §4) built on the same foundations the
original uses: Karp–Papadimitriou–Shenker / Lossy-Counting style counting,
generalised from single items to itemsets via lazy lattice promotion.

Guarantees (as in Lossy Counting, and verified by the test suite):

- **singletons** — after ``N`` transactions, any item with true count
  ``c`` is tracked with count ``>= c - epsilon * N``; nothing with true
  frequency below ``support - epsilon`` is reported;
- **itemsets of size >= 2** — promoted lazily once all their subsets are
  tracked; counts are conservative (never overcounted), so reported sets
  are genuinely frequent in the tracked region.  Exactness for higher
  orders would need a second pass, exactly as [9] concedes.

Memory is bounded by O((1/epsilon) * promoted-lattice width); the miner
never stores transactions (the "in-core" property).
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.mining.itemsets import FrequentItemset

if TYPE_CHECKING:
    from repro.core.group import GroupDelta, GroupSpace


@dataclass
class _TrackedSet:
    """Counter state for one tracked itemset."""

    count: int
    delta: int  # maximum possible undercount (bucket index at insertion)


class StreamMiner:
    """One-pass frequent-itemset miner with bounded memory.

    Parameters
    ----------
    support:
        Report itemsets with estimated frequency >= ``support`` (fraction).
    epsilon:
        Counting slack (fraction); memory grows as O(1/epsilon).  Defaults
        to ``support / 10``.
    max_itemset_size:
        Lattice promotion stops at this size (VEXUS group descriptions stay
        short anyway).
    """

    def __init__(
        self,
        support: float = 0.05,
        epsilon: float | None = None,
        max_itemset_size: int = 3,
    ) -> None:
        if not 0 < support <= 1:
            raise ValueError("support must be in (0, 1]")
        self.support = support
        self.epsilon = epsilon if epsilon is not None else support / 10.0
        if not 0 < self.epsilon <= self.support:
            raise ValueError("epsilon must be in (0, support]")
        if max_itemset_size < 1:
            raise ValueError("max_itemset_size must be >= 1")
        self.max_itemset_size = max_itemset_size
        self.bucket_width = int(np.ceil(1.0 / self.epsilon))
        self.n_transactions = 0
        self._current_bucket = 1
        self._tracked: dict[tuple[int, ...], _TrackedSet] = {}

    # ------------------------------------------------------------------

    def add_transaction(self, transaction: Iterable[int]) -> None:
        """Consume one transaction (iterable of token codes)."""
        tokens = sorted(set(int(token) for token in transaction))
        self.n_transactions += 1

        token_set = set(tokens)
        # Count every tracked itemset contained in this transaction, and
        # lazily promote supersets whose parts are all tracked.
        for token in tokens:
            self._bump((token,))
        if self.max_itemset_size >= 2:
            self._count_and_promote(tokens, token_set)

        if self.n_transactions % self.bucket_width == 0:
            self._prune()
            self._current_bucket += 1

    def add_transactions(self, transactions: Iterable[Iterable[int]]) -> None:
        for transaction in transactions:
            self.add_transaction(transaction)

    # ------------------------------------------------------------------

    def _bump(self, key: tuple[int, ...]) -> None:
        entry = self._tracked.get(key)
        if entry is None:
            self._tracked[key] = _TrackedSet(count=1, delta=self._current_bucket - 1)
        else:
            entry.count += 1

    def _count_and_promote(self, tokens: list[int], token_set: set[int]) -> None:
        # Items that are themselves tracked with promising counts form the
        # promotion alphabet; this keeps subset enumeration bounded.
        threshold = max(1, int(self.support * self.n_transactions) // 2)
        hot = [
            token
            for token in tokens
            if self._tracked.get((token,), _TrackedSet(0, 0)).count >= threshold
        ]
        for size in range(2, self.max_itemset_size + 1):
            if len(hot) < size:
                break
            promoted_any = False
            for combo in itertools.combinations(hot, size):
                key = tuple(combo)
                if key in self._tracked:
                    self._tracked[key].count += 1
                    promoted_any = True
                    continue
                # Promote only when every (size-1)-subset is tracked — the
                # streaming analogue of the Apriori candidate condition.
                if all(
                    combo[:drop] + combo[drop + 1 :] in self._tracked
                    for drop in range(size)
                ):
                    self._tracked[key] = _TrackedSet(
                        count=1, delta=self._current_bucket - 1
                    )
                    promoted_any = True
            if not promoted_any:
                break

    def _prune(self) -> None:
        doomed = [
            key
            for key, entry in self._tracked.items()
            if entry.count + entry.delta <= self._current_bucket
        ]
        for key in doomed:
            del self._tracked[key]

    # ------------------------------------------------------------------

    def tracked_count(self) -> int:
        """Number of itemsets currently held in memory."""
        return len(self._tracked)

    def estimated_count(self, items: Iterable[int]) -> int:
        """Current (conservative) count estimate for an itemset, 0 if untracked."""
        key = tuple(sorted(set(int(token) for token in items)))
        entry = self._tracked.get(key)
        return entry.count if entry else 0

    def results(self) -> list[FrequentItemset]:
        """Itemsets with estimated frequency >= ``support - epsilon``.

        The classic Lossy-Counting output rule: report entries whose count
        exceeds ``(support - epsilon) * N``; supports are the conservative
        counts (tid-lists are not kept — this is a stream).
        """
        if self.n_transactions == 0:
            return []
        threshold = (self.support - self.epsilon) * self.n_transactions
        found = [
            FrequentItemset(key, entry.count, np.empty(0, dtype=np.int64))
            for key, entry in self._tracked.items()
            if entry.count >= threshold
        ]
        found.sort(key=lambda itemset: (len(itemset.items), itemset.items))
        return found


def delta_from_window(
    space: "GroupSpace",
    transactions: Sequence[Iterable[int]],
    itemsets: Iterable[FrequentItemset],
    token_vocab,
    min_group_size: int = 1,
    remove_missing: bool = False,
) -> "GroupDelta":
    """Turn one mined window into a :class:`~repro.core.group.GroupDelta`.

    The bridge between stream mining and online store mutation: feed a
    window of transactions through a :class:`StreamMiner`, then hand the
    current space, the window's transactions (indexed by user — the shape
    :meth:`repro.data.dataset.UserDataset.transactions` returns) and the
    miner's :meth:`StreamMiner.results` here; the returned delta applies
    through ``GroupSpaceRuntime.apply_deltas`` as one new epoch.

    Stream-mined itemsets carry no tid-lists (transactions are never
    stored), so members are resolved by one containment scan over the
    window: user ``u`` belongs to an itemset's group iff every item
    appears in ``transactions[u]``.  Descriptions are decoded through
    ``token_vocab`` and matched against the current space:

    - a mined description absent from the space becomes an **add**;
    - one present with different members becomes a member **churn**;
    - identical membership is dropped (no-op — keeps epochs minimal);
    - with ``remove_missing=True``, described groups of the current space
      that the window no longer supports become **removes**.  Off by
      default: a sliding window sees only recent activity, and absence
      from one window is weak evidence a long-lived group died.

    Mined groups smaller than ``min_group_size`` are ignored entirely
    (they neither add nor remove anything).
    """
    from repro.core.group import GroupDelta

    token_sets = [frozenset(int(t) for t in tokens) for tokens in transactions]
    added: list[tuple[tuple[str, ...], np.ndarray]] = []
    changed: list[tuple[int, np.ndarray]] = []
    mined_descriptions: set[tuple[str, ...]] = set()
    for itemset in itemsets:
        items = [int(item) for item in itemset.items]
        description = tuple(token_vocab.label(item) for item in items)
        if description in mined_descriptions:
            continue  # first mention wins; duplicates would collide
        members = np.array(
            [
                user
                for user, tokens in enumerate(token_sets)
                if all(item in tokens for item in items)
            ],
            dtype=np.int64,
        )
        if len(members) < min_group_size:
            continue
        mined_descriptions.add(description)
        current = space.by_description(description)
        if current is None:
            added.append((description, members))
        elif not np.array_equal(current.members, members):
            changed.append((current.gid, members))
    removed: list[int] = []
    if remove_missing:
        removed = [
            group.gid
            for group in space
            if group.description and group.description not in mined_descriptions
        ]
    return GroupDelta.build(added=added, removed=removed, changed=changed)
