"""LCM: Linear-time Closed itemset Miner (Uno et al., FIMI 2003).

The paper's default offline group-discovery algorithm (§II-A, [16]).  LCM
enumerates every frequent **closed** itemset exactly once using
*prefix-preserving closure extension* (ppc-extension): from a closed itemset
``P`` it extends with an item ``i`` greater than the core index, closes the
result, and recurses only when the closure did not introduce any item below
``i`` — which makes the enumeration a tree (no duplicate detection table
needed) and the total work linear in the number of closed itemsets.

Closed itemsets are exactly the group descriptions VEXUS wants: two
different itemsets with identical member sets collapse to the single maximal
description of that member set.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.mining.itemsets import FrequentItemset, TransactionDB


@dataclass
class LCMStats:
    """Counters describing one LCM run (used by benchmarks)."""

    closed_found: int = 0
    extensions_tried: int = 0
    ppc_rejections: int = 0
    support_rejections: int = 0


@dataclass
class LCMConfig:
    """Bounds for an LCM run.

    ``max_items`` caps description length (groups with ten-token
    descriptions are unreadable in the UI); ``max_results`` is a safety
    valve against pathological universes.
    """

    min_support: int = 2
    max_items: Optional[int] = None
    max_results: Optional[int] = None
    stats: LCMStats = field(default_factory=LCMStats)

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")
        if self.max_items is not None and self.max_items < 1:
            raise ValueError("max_items must be >= 1 when set")


def mine_closed(db: TransactionDB, config: Optional[LCMConfig] = None) -> list[FrequentItemset]:
    """All frequent closed itemsets of ``db`` (deterministic order).

    Returns itemsets sorted by (size, items).  The empty closed set (the
    closure of the full database) is included when the database itself is
    frequent — it is the root group "all users".
    """
    config = config or LCMConfig()
    results: list[FrequentItemset] = []
    if db.n_transactions < config.min_support:
        return results

    all_tids = np.arange(db.n_transactions, dtype=np.int64)
    root = db.closure(all_tids)
    # Closure over an empty database degenerates to "all tokens"; guard so the
    # root stays meaningful.
    if db.n_transactions == 0:
        return results

    stack: list[tuple[np.ndarray, np.ndarray, int]] = [(root, all_tids, -1)]
    frequent = db.frequent_tokens(config.min_support)

    while stack:
        itemset, tids, core = stack.pop()
        if config.max_items is not None and len(itemset) > config.max_items:
            # The closure exceeded the cap: the itemset is still closed, but
            # its description is too long for the UI — skip it and its subtree.
            continue
        results.append(
            FrequentItemset(tuple(int(item) for item in itemset), len(tids), tids)
        )
        config.stats.closed_found += 1
        if config.max_results is not None and len(results) >= config.max_results:
            break

        member_mask = set(int(item) for item in itemset)
        for item in frequent:
            if item <= core or item in member_mask:
                continue
            config.stats.extensions_tried += 1
            new_tids = np.intersect1d(tids, db.tids_of(item), assume_unique=True)
            if len(new_tids) < config.min_support:
                config.stats.support_rejections += 1
                continue
            closure = db.closure(new_tids)
            # ppc-extension check: items of the closure strictly below the
            # extension item must coincide with the parent's.
            closure_prefix = closure[closure < item]
            parent_prefix = itemset[itemset < item]
            if len(closure_prefix) != len(parent_prefix) or not np.array_equal(
                closure_prefix, parent_prefix
            ):
                config.stats.ppc_rejections += 1
                continue
            stack.append((closure, new_tids, item))

    results.sort(key=lambda itemset: (len(itemset.items), itemset.items))
    return results
