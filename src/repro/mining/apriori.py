"""Apriori frequent itemset mining (level-wise baseline).

VEXUS itself runs LCM; Apriori is here as the classical baseline the
benchmarks compare against (experiment C13) and as an independent oracle the
test suite uses to validate LCM: every closed itemset LCM reports must
appear among Apriori's frequent itemsets with the same support, and closing
Apriori's output must give exactly LCM's output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.mining.itemsets import FrequentItemset, TransactionDB


@dataclass
class AprioriConfig:
    """Bounds for an Apriori run."""

    min_support: int = 2
    max_items: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_support < 1:
            raise ValueError("min_support must be >= 1")


def mine_frequent(
    db: TransactionDB, config: Optional[AprioriConfig] = None
) -> list[FrequentItemset]:
    """All frequent itemsets (not just closed), deterministic order.

    Classic level-wise search: candidates of size ``k`` are joins of
    size-``k-1`` frequent itemsets sharing a ``k-2`` prefix, pruned by the
    downward-closure property, counted by tid-list intersection.
    """
    config = config or AprioriConfig()
    results: list[FrequentItemset] = []
    if db.n_transactions >= config.min_support:
        results.append(
            FrequentItemset((), db.n_transactions, np.arange(db.n_transactions, dtype=np.int64))
        )

    current: list[FrequentItemset] = []
    for token in db.frequent_tokens(config.min_support):
        tids = db.tids_of(token)
        current.append(FrequentItemset((token,), len(tids), tids))
    results.extend(current)

    size = 1
    frequent_keys = {itemset.items for itemset in current}
    while current and (config.max_items is None or size < config.max_items):
        by_prefix: dict[tuple[int, ...], list[FrequentItemset]] = {}
        for itemset in current:
            by_prefix.setdefault(itemset.items[:-1], []).append(itemset)
        next_level: list[FrequentItemset] = []
        next_keys: set[tuple[int, ...]] = set()
        for siblings in by_prefix.values():
            siblings.sort(key=lambda itemset: itemset.items)
            for first_index in range(len(siblings)):
                for second_index in range(first_index + 1, len(siblings)):
                    left = siblings[first_index]
                    right = siblings[second_index]
                    candidate = left.items + (right.items[-1],)
                    # Downward closure: every (k-1)-subset must be frequent.
                    if any(
                        candidate[:drop] + candidate[drop + 1 :] not in frequent_keys
                        for drop in range(len(candidate) - 2)
                    ):
                        continue
                    tids = np.intersect1d(
                        left.tids, right.tids, assume_unique=True
                    )
                    if len(tids) >= config.min_support:
                        mined = FrequentItemset(candidate, len(tids), tids)
                        next_level.append(mined)
                        next_keys.add(candidate)
        current = next_level
        frequent_keys = next_keys
        results.extend(current)
        size += 1

    results.sort(key=lambda itemset: (len(itemset.items), itemset.items))
    return results


def close_itemsets(
    db: TransactionDB, itemsets: list[FrequentItemset]
) -> list[FrequentItemset]:
    """Map each frequent itemset to its closure and deduplicate.

    Used in tests: ``close_itemsets(db, mine_frequent(db))`` must equal
    :func:`repro.mining.lcm.mine_closed` output exactly.
    """
    seen: dict[tuple[int, ...], FrequentItemset] = {}
    for itemset in itemsets:
        closed = tuple(int(token) for token in db.closure(itemset.tids))
        if closed not in seen:
            seen[closed] = FrequentItemset(closed, itemset.support, itemset.tids)
    return sorted(seen.values(), key=lambda itemset: (len(itemset.items), itemset.items))
