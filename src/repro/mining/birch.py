"""BIRCH clustering (Zhang, Ramakrishnan & Livny, SIGMOD 1996).

The second stream-capable group-discovery backend VEXUS names (§II-A,
[18]).  Users are featurised into vectors (demographics one-hot + activity
statistics); BIRCH absorbs them one at a time into a CF-tree of bounded
size, then a global agglomerative phase clusters the leaf subclusters.
Each final cluster becomes a user group (described post-hoc by its dominant
demographics, see :mod:`repro.core.discovery`).

Implemented from the paper: clustering features ``CF = (N, LS, SS)`` with
the additivity theorem, threshold-driven absorption, node splits by
farthest-pair seeding, and the optional global clustering phase.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage


@dataclass
class ClusteringFeature:
    """``(N, LS, SS)`` summary of a subcluster; additive under merge."""

    n: int
    linear_sum: np.ndarray
    squared_sum: float

    @classmethod
    def of_point(cls, point: np.ndarray) -> "ClusteringFeature":
        return cls(1, point.astype(np.float64).copy(), float(point @ point))

    @classmethod
    def empty(cls, dimensions: int) -> "ClusteringFeature":
        return cls(0, np.zeros(dimensions), 0.0)

    @property
    def centroid(self) -> np.ndarray:
        if self.n == 0:
            return self.linear_sum
        return self.linear_sum / self.n

    @property
    def radius(self) -> float:
        """RMS distance of member points to the centroid (paper eq. for R)."""
        if self.n == 0:
            return 0.0
        centroid = self.centroid
        variance = self.squared_sum / self.n - float(centroid @ centroid)
        return float(np.sqrt(max(variance, 0.0)))

    def merged_with(self, other: "ClusteringFeature") -> "ClusteringFeature":
        """CF additivity: the summary of the union of both point sets."""
        return ClusteringFeature(
            self.n + other.n,
            self.linear_sum + other.linear_sum,
            self.squared_sum + other.squared_sum,
        )

    def add(self, other: "ClusteringFeature") -> None:
        self.n += other.n
        self.linear_sum += other.linear_sum
        self.squared_sum += other.squared_sum

    def distance_to(self, other: "ClusteringFeature") -> float:
        """Euclidean centroid distance (paper's D0 metric)."""
        difference = self.centroid - other.centroid
        return float(np.sqrt(difference @ difference))


@dataclass
class _Entry:
    """One CF entry in a node: a subcluster summary, maybe with a child."""

    feature: ClusteringFeature
    child: Optional["_Node"] = None


@dataclass
class _Node:
    is_leaf: bool
    entries: list[_Entry] = field(default_factory=list)


@dataclass
class _Split:
    left: _Entry
    right: _Entry


class Birch:
    """CF-tree clustering with an agglomerative global phase.

    Parameters follow the paper: ``threshold`` caps subcluster radius,
    ``branching_factor`` caps entries per node, ``n_clusters`` (optional)
    turns on the global phase that merges leaf subclusters into exactly
    that many clusters.
    """

    def __init__(
        self,
        threshold: float = 0.5,
        branching_factor: int = 50,
        n_clusters: Optional[int] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError("threshold must be >= 0")
        if branching_factor < 2:
            raise ValueError("branching_factor must be >= 2")
        self.threshold = threshold
        self.branching_factor = branching_factor
        self.n_clusters = n_clusters
        self._root: Optional[_Node] = None
        self._dimensions: Optional[int] = None
        self._subcluster_labels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------

    def partial_fit(self, point: np.ndarray) -> None:
        """Absorb one point into the CF-tree."""
        point = np.asarray(point, dtype=np.float64)
        if self._dimensions is None:
            self._dimensions = len(point)
            self._root = _Node(is_leaf=True)
        elif len(point) != self._dimensions:
            raise ValueError(
                f"point has {len(point)} dimensions, tree has {self._dimensions}"
            )
        self._subcluster_labels = None  # global phase is now stale
        assert self._root is not None
        split = self._insert(self._root, ClusteringFeature.of_point(point))
        if split is not None:
            new_root = _Node(is_leaf=False, entries=[split.left, split.right])
            self._root = new_root

    def fit(self, points: np.ndarray) -> "Birch":
        for point in np.asarray(points, dtype=np.float64):
            self.partial_fit(point)
        return self

    # ------------------------------------------------------------------

    def _insert(self, node: _Node, feature: ClusteringFeature) -> Optional[_Split]:
        if node.is_leaf:
            return self._insert_into_leaf(node, feature)
        closest = min(node.entries, key=lambda entry: entry.feature.distance_to(feature))
        assert closest.child is not None
        child_split = self._insert(closest.child, feature)
        if child_split is None:
            closest.feature.add(feature)
            return None
        node.entries.remove(closest)
        node.entries.extend([child_split.left, child_split.right])
        if len(node.entries) <= self.branching_factor:
            return None
        return self._split(node)

    def _insert_into_leaf(
        self, node: _Node, feature: ClusteringFeature
    ) -> Optional[_Split]:
        if node.entries:
            closest = min(
                node.entries, key=lambda entry: entry.feature.distance_to(feature)
            )
            merged = closest.feature.merged_with(feature)
            if merged.radius <= self.threshold:
                closest.feature = merged
                return None
        node.entries.append(_Entry(feature))
        if len(node.entries) <= self.branching_factor:
            return None
        return self._split(node)

    def _split(self, node: _Node) -> _Split:
        """Farthest-pair seeding, then assign entries to the nearer seed."""
        features = node.entries
        n = len(features)
        best_pair = (0, 1)
        best_distance = -1.0
        for i in range(n):
            for j in range(i + 1, n):
                distance = features[i].feature.distance_to(features[j].feature)
                if distance > best_distance:
                    best_distance = distance
                    best_pair = (i, j)
        left_node = _Node(is_leaf=node.is_leaf)
        right_node = _Node(is_leaf=node.is_leaf)
        seed_left = features[best_pair[0]].feature
        seed_right = features[best_pair[1]].feature
        for entry in features:
            if entry.feature.distance_to(seed_left) <= entry.feature.distance_to(
                seed_right
            ):
                left_node.entries.append(entry)
            else:
                right_node.entries.append(entry)
        return _Split(
            _Entry(self._summarise(left_node), left_node),
            _Entry(self._summarise(right_node), right_node),
        )

    def _summarise(self, node: _Node) -> ClusteringFeature:
        assert self._dimensions is not None
        total = ClusteringFeature.empty(self._dimensions)
        for entry in node.entries:
            total.add(entry.feature)
        return total

    # ------------------------------------------------------------------

    def subclusters(self) -> list[ClusteringFeature]:
        """All leaf subcluster summaries, left-to-right."""
        found: list[ClusteringFeature] = []

        def walk(node: Optional[_Node]) -> None:
            if node is None:
                return
            if node.is_leaf:
                found.extend(entry.feature for entry in node.entries)
                return
            for entry in node.entries:
                walk(entry.child)

        walk(self._root)
        return found

    def subcluster_centroids(self) -> np.ndarray:
        subclusters = self.subclusters()
        if not subclusters:
            return np.empty((0, self._dimensions or 0))
        return np.vstack([feature.centroid for feature in subclusters])

    def _global_labels(self) -> np.ndarray:
        """Label each leaf subcluster via agglomerative global clustering."""
        if self._subcluster_labels is not None:
            return self._subcluster_labels
        centroids = self.subcluster_centroids()
        if len(centroids) == 0:
            self._subcluster_labels = np.empty(0, dtype=np.int64)
        elif self.n_clusters is None or len(centroids) <= self.n_clusters:
            self._subcluster_labels = np.arange(len(centroids), dtype=np.int64)
        else:
            weights = np.array([feature.n for feature in self.subclusters()])
            tree = linkage(centroids, method="ward")
            labels = fcluster(tree, t=self.n_clusters, criterion="maxclust")
            del weights  # ward on centroids; weights kept for future variants
            self._subcluster_labels = labels.astype(np.int64) - 1
        return self._subcluster_labels

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Cluster label per point: nearest subcluster's global label."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        centroids = self.subcluster_centroids()
        if len(centroids) == 0:
            raise RuntimeError("predict() before fit(): the tree is empty")
        labels = self._global_labels()
        distances = (
            (points**2).sum(axis=1, keepdims=True)
            - 2 * points @ centroids.T
            + (centroids**2).sum(axis=1)
        )
        return labels[np.argmin(distances, axis=1)]
