"""Transaction database and itemset primitives shared by all miners.

Group discovery in VEXUS (§II-A) runs frequent-itemset miners over user
transactions: each user is one transaction whose items are demographic
tokens (``gender=female``) and action tokens (``item:The Hobbit``).  A
frequent (closed) itemset *is* a user group — the itemset is the group's
description and its supporting transactions are the members.

:class:`TransactionDB` stores the *vertical* representation (per-token
sorted tid-lists) on numpy arrays; every miner in this package works off it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.data.vocab import Vocab


@dataclass(frozen=True)
class FrequentItemset:
    """A mined itemset: token codes, support and supporting transactions."""

    items: tuple[int, ...]
    support: int
    tids: np.ndarray  # sorted transaction ids

    def labels(self, vocab: Vocab) -> tuple[str, ...]:
        """Human-readable item labels (group description)."""
        return tuple(vocab.label(item) for item in self.items)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FrequentItemset):
            return NotImplemented
        return self.items == other.items and self.support == other.support

    def __hash__(self) -> int:
        return hash((self.items, self.support))


class TransactionDB:
    """Vertical transaction database: token -> sorted tid array.

    ``transactions`` is a list of (possibly unsorted) token-code iterables;
    duplicate tokens within one transaction are collapsed.
    """

    def __init__(
        self,
        transactions: Sequence[Iterable[int]],
        vocab: Vocab | None = None,
    ) -> None:
        self.vocab = vocab
        self.n_transactions = len(transactions)
        self._transactions = [
            np.unique(np.asarray(list(transaction), dtype=np.int64))
            for transaction in transactions
        ]
        n_tokens = 0
        for transaction in self._transactions:
            if len(transaction):
                if transaction[0] < 0:
                    raise ValueError("negative token code in transaction")
                n_tokens = max(n_tokens, int(transaction[-1]) + 1)
        self.n_tokens = n_tokens
        # Vertical representation: one sorted tid array per token.
        buckets: list[list[int]] = [[] for _ in range(n_tokens)]
        for tid, transaction in enumerate(self._transactions):
            for token in transaction:
                buckets[int(token)].append(tid)
        self._tidlists = [np.asarray(bucket, dtype=np.int64) for bucket in buckets]

    def transaction(self, tid: int) -> np.ndarray:
        """Sorted token codes of one transaction."""
        return self._transactions[tid]

    def tids_of(self, token: int) -> np.ndarray:
        """Sorted tids containing ``token`` (empty if out of range)."""
        if 0 <= token < self.n_tokens:
            return self._tidlists[token]
        return np.empty(0, dtype=np.int64)

    def support(self, token: int) -> int:
        """Number of transactions containing a single token."""
        return len(self.tids_of(token))

    def tids_of_itemset(self, items: Iterable[int]) -> np.ndarray:
        """Sorted tids containing *every* item (intersection of tid-lists).

        Intersects the rarest lists first so the working set shrinks fast.
        """
        item_list = sorted(set(items), key=self.support)
        if not item_list:
            return np.arange(self.n_transactions, dtype=np.int64)
        tids = self.tids_of(item_list[0])
        for item in item_list[1:]:
            if len(tids) == 0:
                break
            tids = np.intersect1d(tids, self.tids_of(item), assume_unique=True)
        return tids

    def support_of_itemset(self, items: Iterable[int]) -> int:
        """Number of transactions containing every item."""
        return len(self.tids_of_itemset(items))

    def closure(self, tids: np.ndarray) -> np.ndarray:
        """Tokens present in *all* of the given transactions (sorted).

        This is the closure operator of formal concept analysis: the unique
        maximal itemset shared by ``tids``.  Empty ``tids`` closes to every
        token (convention: returns all tokens, the top of the lattice).
        """
        if len(tids) == 0:
            return np.arange(self.n_tokens, dtype=np.int64)
        common = self._transactions[int(tids[0])]
        for tid in tids[1:]:
            if len(common) == 0:
                break
            common = np.intersect1d(
                common, self._transactions[int(tid)], assume_unique=True
            )
        return common

    def frequent_tokens(self, min_support: int) -> list[int]:
        """Tokens with support >= ``min_support``, ascending code order."""
        return [
            token
            for token in range(self.n_tokens)
            if len(self._tidlists[token]) >= min_support
        ]

    def __len__(self) -> int:
        return self.n_transactions

    def __repr__(self) -> str:
        return (
            f"TransactionDB({self.n_transactions} transactions, "
            f"{self.n_tokens} tokens)"
        )


def brute_force_closed(
    db: TransactionDB, min_support: int
) -> list[FrequentItemset]:
    """Reference oracle: all frequent closed itemsets by exhaustive closure.

    Exponential — only usable on tiny databases; exists so property tests
    can check LCM's output exactly.
    """
    seen: dict[tuple[int, ...], FrequentItemset] = {}
    from itertools import combinations

    tokens = db.frequent_tokens(min_support)
    for size in range(0, len(tokens) + 1):
        for candidate in combinations(tokens, size):
            tids = db.tids_of_itemset(candidate)
            if len(tids) < min_support:
                continue
            closed = tuple(int(token) for token in db.closure(tids))
            if closed not in seen:
                seen[closed] = FrequentItemset(closed, len(tids), tids)
    return sorted(seen.values(), key=lambda itemset: (len(itemset.items), itemset.items))
