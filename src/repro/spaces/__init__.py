"""Multi-space hosting: a registry + router over many group spaces.

One VEXUS process serving many populations: :mod:`repro.spaces.descriptor`
defines what a named space *is* (store / generator / builder recipes, the
``--spaces`` manifest format), :mod:`repro.spaces.registry` turns those
descriptors into serving state — lazy background index builds, a
``max_ready`` budget with durable LRU eviction, per-space idle TTLs, and
session-id routing the HTTP front (:mod:`repro.service`) hangs its
``space`` field, ``/spaces`` listing and 202-while-building replies off.
"""

from repro.spaces.descriptor import SpaceDescriptor, load_manifest, valid_space_name
from repro.spaces.registry import (
    SpaceBuildError,
    SpaceBuildingError,
    SpaceNotFoundError,
    SpaceRegistry,
)

__all__ = [
    "SpaceBuildError",
    "SpaceBuildingError",
    "SpaceDescriptor",
    "SpaceNotFoundError",
    "SpaceRegistry",
    "load_manifest",
    "valid_space_name",
]
