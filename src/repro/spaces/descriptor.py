"""Space descriptors: what a named group space is and how to build it.

VEXUS is one deployment serving *many* populations — §III alone walks DM
authors and BookCrossing readers through the same tool.  A
:class:`SpaceDescriptor` is the registry's unit of configuration: a
routing name plus exactly one recipe for materializing the space's
:class:`~repro.core.runtime.GroupSpaceRuntime`:

- ``store`` — offline artifacts written by ``repro discover`` (the
  production path: discovery ran once, the server only loads), with the
  dataset loaded from CSVs (``actions``/``demographics``) or synthesized
  by a ``generator`` spec;
- ``generator`` alone — synthesize the dataset *and* run discovery at
  build time (demo / benchmark spaces that need no files on disk);
- ``builder`` — an in-process callable returning a ready runtime
  (experiment fixtures; never serialized).

:func:`load_manifest` reads the JSON manifest ``repro serve --http
--spaces manifest.json`` consumes::

    {
      "defaults": {"idle_ttl_s": 900},
      "spaces": [
        {"name": "dm-authors",
         "generator": {"kind": "dbauthors", "n_authors": 1500, "seed": 7},
         "discovery": {"min_support": 0.04}},
        {"name": "books",
         "store": "stores/books",
         "actions": "data/books/actions.csv",
         "demographics": "data/books/demographics.csv",
         "dataset": "bookcrossing",
         "idle_ttl_s": 120}
      ]
    }

Relative paths resolve against the manifest's own directory, unknown
keys are rejected loudly (a typo'd knob must never become a silently
default-configured production space), and per-space ``idle_ttl_s``
overrides the registry-wide sweeper default — one hot demo space can
stay resident while short-TTL batch spaces come and go.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.runtime import GroupSpaceRuntime

#: Space names are routing keys: they prefix session ids, which flow into
#: resume tokens, which name state directories — so they live under the
#: resume-token alphabet (and never contain a path separator).
_NAME_PATTERN = re.compile(r"^[A-Za-z0-9_-]{1,48}$")

#: Generator spec kinds and the knobs each accepts (beyond "kind").
_GENERATOR_KNOBS = {
    "dbauthors": frozenset({"n_authors", "seed"}),
    "bookcrossing": frozenset({"n_users", "n_items", "n_ratings", "seed"}),
}

_DISCOVERY_KNOBS = frozenset(
    {"method", "min_support", "max_description", "min_item_support"}
)

_MANIFEST_KEYS = frozenset({"spaces", "defaults"})
_DEFAULTS_KEYS = frozenset({"idle_ttl_s", "max_sessions"})
_SPACE_KEYS = frozenset(
    {
        "name",
        "dataset",
        "store",
        "actions",
        "demographics",
        "generator",
        "discovery",
        "materialize_fraction",
        "idle_ttl_s",
        "max_sessions",
    }
)


def valid_space_name(name: str) -> bool:
    return isinstance(name, str) and _NAME_PATTERN.match(name) is not None


@dataclass
class SpaceDescriptor:
    """One named group space: routing key + materialization recipe.

    Exactly one of ``store`` / ``generator``-only / ``builder`` defines
    how the runtime is built (a ``store`` may use a ``generator`` to
    synthesize its dataset, but a generator without a store implies
    discovery at build time).  ``idle_ttl_s`` / ``max_sessions`` are
    per-space serving policy consumed by the registry; ``dataset``
    optionally pins the dataset name the space must be built on (store
    loads already enforce this through ``load_group_space``).
    """

    name: str
    dataset: Optional[str] = None
    store: Optional[Path] = None
    actions: Optional[Path] = None
    demographics: Optional[Path] = None
    generator: Optional[dict] = None
    discovery: Optional[dict] = None
    materialize_fraction: float = 0.10
    idle_ttl_s: Optional[float] = None
    max_sessions: Optional[int] = None
    builder: Optional[Callable[[], GroupSpaceRuntime]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not valid_space_name(self.name):
            raise ValueError(
                f"space name {self.name!r} must match [A-Za-z0-9_-]{{1,48}} "
                "(it names session-state directories and prefixes session ids)"
            )
        sources = sum(
            1
            for source in (self.builder, self.store, self.generator)
            if source is not None
        )
        # A store + generator pair is legal (the generator synthesizes
        # the dataset the stored space was discovered on); builder is
        # always exclusive.
        if self.builder is not None and sources > 1:
            raise ValueError(
                f"space {self.name!r}: builder excludes store/generator"
            )
        if self.builder is None and self.store is None and self.generator is None:
            raise ValueError(
                f"space {self.name!r} needs a store, a generator or a builder"
            )
        if self.store is not None:
            self.store = Path(self.store)
            if self.actions is None and self.generator is None:
                raise ValueError(
                    f"space {self.name!r}: a store needs its dataset — give "
                    "actions (+ demographics) CSVs or a generator spec"
                )
        if self.actions is not None:
            self.actions = Path(self.actions)
        if self.demographics is not None:
            self.demographics = Path(self.demographics)
        if self.generator is not None:
            self._check_generator(self.generator)
        if self.discovery is not None:
            unknown = set(self.discovery) - _DISCOVERY_KNOBS
            if unknown:
                raise ValueError(
                    f"space {self.name!r}: unknown discovery knobs "
                    f"{sorted(unknown)}"
                )
            if self.store is not None:
                raise ValueError(
                    f"space {self.name!r}: discovery knobs are meaningless "
                    "with a store (discovery already ran offline)"
                )
        if not 0.0 < self.materialize_fraction <= 1.0:
            raise ValueError(
                f"space {self.name!r}: materialize_fraction must be in (0, 1]"
            )
        if self.idle_ttl_s is not None and self.idle_ttl_s <= 0:
            raise ValueError(f"space {self.name!r}: idle_ttl_s must be > 0")
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(f"space {self.name!r}: max_sessions must be >= 1")

    def _check_generator(self, spec: dict) -> None:
        if not isinstance(spec, dict) or "kind" not in spec:
            raise ValueError(
                f"space {self.name!r}: generator spec needs a 'kind'"
            )
        knobs = _GENERATOR_KNOBS.get(spec["kind"])
        if knobs is None:
            raise ValueError(
                f"space {self.name!r}: unknown generator kind "
                f"{spec['kind']!r} (known: {sorted(_GENERATOR_KNOBS)})"
            )
        unknown = set(spec) - knobs - {"kind"}
        if unknown:
            raise ValueError(
                f"space {self.name!r}: unknown {spec['kind']} generator "
                f"knobs {sorted(unknown)}"
            )

    # -- materialization -------------------------------------------------

    def _dataset(self):
        if self.generator is not None:
            spec = dict(self.generator)
            kind = spec.pop("kind")
            if kind == "dbauthors":
                from repro.data.generators.dbauthors import (
                    DBAuthorsConfig,
                    generate_dbauthors,
                )

                dataset = generate_dbauthors(DBAuthorsConfig(**spec)).dataset
            else:
                from repro.data.generators.bookcrossing import (
                    BookCrossingConfig,
                    generate_bookcrossing,
                )

                dataset = generate_bookcrossing(BookCrossingConfig(**spec)).dataset
            if self.dataset is not None and dataset.name != self.dataset:
                raise ValueError(
                    f"space {self.name!r}: generator produced dataset "
                    f"{dataset.name!r}, manifest expects {self.dataset!r}"
                )
            return dataset
        from repro.data.etl import load_dataset

        return load_dataset(
            self.actions,
            self.demographics,
            name=self.dataset if self.dataset is not None else "dataset",
        ).dataset

    def build_dataset(self):
        """Load / synthesize just the dataset, without discovery or index.

        The replication tier's warm-boot path needs the dataset (workers
        bounds-check arena members against it) but maps every derived
        artifact from a cached arena snapshot — paying for discovery and
        index construction there would defeat the cache.  Builder
        descriptors have no separable dataset recipe and refuse.
        """
        if self.builder is not None:
            raise ValueError(
                f"space {self.name!r}: a builder descriptor has no "
                "standalone dataset recipe"
            )
        return self._dataset()

    def materialize(self) -> GroupSpaceRuntime:
        """Build this space's serving runtime (the registry's slow path).

        Runs on a registry build worker, never on a serving thread: a
        store load revalidates the persisted index against the live
        space's membership digest, a generator-only descriptor runs
        discovery and builds the index from scratch, and a builder is
        called as-is.  The returned runtime always carries this
        descriptor's name, so every session checkpoint it mints is
        stamped for this space and no other.
        """
        if self.builder is not None:
            runtime = self.builder()
            if runtime.name is None:
                runtime.name = self.name
            elif runtime.name != self.name:
                raise ValueError(
                    f"space {self.name!r}: builder returned a runtime "
                    f"named {runtime.name!r}"
                )
            return runtime
        dataset = self._dataset()
        if self.store is not None:
            return GroupSpaceRuntime.from_store(
                dataset, self.store, name=self.name
            )
        space = discover_groups(
            dataset, DiscoveryConfig(**(self.discovery or {}))
        )
        return GroupSpaceRuntime(
            space,
            materialize_fraction=self.materialize_fraction,
            name=self.name,
        )

    def describe(self) -> dict[str, object]:
        """The configuration slice of the ``/spaces`` wire payload."""
        return {
            "name": self.name,
            "dataset": self.dataset,
            "source": (
                "builder"
                if self.builder is not None
                else "store"
                if self.store is not None
                else "generator"
            ),
            "idle_ttl_s": self.idle_ttl_s,
            "max_sessions": self.max_sessions,
        }


def _descriptor_from_manifest(
    entry: dict, base: Path, defaults: dict
) -> SpaceDescriptor:
    if not isinstance(entry, dict):
        raise ValueError("each manifest space must be a JSON object")
    unknown = set(entry) - _SPACE_KEYS
    if unknown:
        raise ValueError(
            f"space {entry.get('name', '?')!r}: unknown manifest keys "
            f"{sorted(unknown)}"
        )
    if "name" not in entry:
        raise ValueError("every manifest space needs a name")
    fields = dict(defaults)
    fields.update(entry)
    for key in ("store", "actions", "demographics"):
        if fields.get(key) is not None:
            fields[key] = (base / fields[key]).resolve()
    return SpaceDescriptor(**fields)


def load_manifest(path: str | Path) -> list[SpaceDescriptor]:
    """Parse a multi-space manifest into descriptors (order preserved).

    The first space is the registry's default route.  Relative store /
    CSV paths resolve against the manifest's directory, so a manifest
    can travel with its stores.  Duplicate names and unknown keys raise.
    """
    path = Path(path)
    payload = json.loads(path.read_text(encoding="utf-8"))
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: manifest must be a JSON object")
    unknown = set(payload) - _MANIFEST_KEYS
    if unknown:
        raise ValueError(f"{path}: unknown manifest keys {sorted(unknown)}")
    defaults = payload.get("defaults") or {}
    if not isinstance(defaults, dict) or set(defaults) - _DEFAULTS_KEYS:
        raise ValueError(
            f"{path}: defaults accepts only {sorted(_DEFAULTS_KEYS)}"
        )
    spaces = payload.get("spaces")
    if not isinstance(spaces, list) or not spaces:
        raise ValueError(f"{path}: manifest needs a non-empty 'spaces' list")
    descriptors = [
        _descriptor_from_manifest(entry, path.parent, defaults)
        for entry in spaces
    ]
    names = [descriptor.name for descriptor in descriptors]
    if len(set(names)) != len(names):
        duplicates = sorted({name for name in names if names.count(name) > 1})
        raise ValueError(f"{path}: duplicate space names {duplicates}")
    return descriptors
