"""The multi-space hosting registry: many group spaces, one process.

After PR 4 a server process was hard-wired to exactly one
:class:`~repro.core.runtime.GroupSpaceRuntime`; VEXUS itself is a shared
tool — many analysts on *different* populations through one deployment.
:class:`SpaceRegistry` is the subsystem in between: it owns named
:class:`~repro.spaces.descriptor.SpaceDescriptor` entries and turns them
into serving state on demand.

- **Lazy background builds** — resolving a cold space queues its
  materialization (dataset load / discovery / index build, the
  expensive offline phase) on a private worker pool and raises
  :class:`SpaceBuildingError` immediately; the HTTP front maps that to
  ``202 {"state": "building"}`` with a retry hint, so a cold attach
  never blocks the serving threads of a hot space.
- **Space budget with durable LRU eviction** — ``max_ready`` bounds how
  many runtimes stay resident.  Over budget, the least-recently-routed
  idle space is evicted: its live sessions are first checkpointed
  through the PR 4 ``state_dir`` machinery (``evict_idle(0)``), so every
  resume token survives eviction exactly as it survives a crash, then
  the runtime and its caches are dropped.  A later open rebuilds the
  space lazily and ``open(resume=...)`` restores the sessions.
- **Routing + isolation** — each space's
  :class:`~repro.core.runtime.SessionManager` mints ids under the
  ``<space>-`` prefix (unique across the process, so
  :meth:`route` resolves any live session id to its manager), keeps its
  state under ``state_dir/<space>/``, and serves a runtime *named* for
  the space — session checkpoints are stamped with that name and the
  space's membership digest, so a reloaded or re-pointed store can
  never serve another space's sessions.
- **Per-space idle sweeping** — :meth:`sweep_idle` applies each
  descriptor's ``idle_ttl_s`` (falling back to the registry default), so
  one hot demo space can stay resident while short-TTL batch spaces are
  persisted and freed.
"""

from __future__ import annotations

import re
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.runtime import GroupSpaceRuntime, SessionManager, UnknownSessionError
from repro.spaces.descriptor import SpaceDescriptor

if TYPE_CHECKING:
    from repro.core.session import SessionConfig

#: A space name that *looks like* a worker tag.  Under a non-empty
#: ``id_tag`` (the replication tier's ``w<index>-``), ids would read
#: ``w0-w1-eval-s0001`` — and any id or resume token minted by a
#: differently-deployed registry over the same manifest becomes
#: indistinguishable from a tagged id of another space.  Refused loudly
#: at registration instead of misrouting resumes at 2 a.m.
_WORKER_TAG_LIKE = re.compile(r"^w\d+-")


class SpaceNotFoundError(KeyError):
    """A space name no descriptor was registered under (HTTP: 404)."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown space {self.name!r}"


class SpaceBuildingError(RuntimeError):
    """The space is materializing in the background (HTTP: 202 + retry).

    Not a failure: the request was accepted, the build is running (or
    queued) on the registry's worker pool, and ``retry_after_s`` is the
    registry's estimate — from the last completed build — of when an
    identical request will be served.
    """

    def __init__(self, name: str, retry_after_s: float) -> None:
        super().__init__(
            f"space {name!r} is building; retry in ~{retry_after_s:.1f}s"
        )
        self.name = name
        self.retry_after_s = retry_after_s


class SpaceBuildError(RuntimeError):
    """A space's materialization failed (HTTP: 500, surfaced on /spaces).

    The failure is sticky — every later resolve re-raises it with the
    original cause — until :meth:`SpaceRegistry.reset` (or an explicit
    evict) returns the space to cold for a retry, so a misconfigured
    manifest entry fails loudly instead of rebuilding in a loop.
    """

    def __init__(self, name: str, cause: str) -> None:
        super().__init__(f"space {name!r} failed to build: {cause}")
        self.name = name
        self.cause = cause


class _SpaceEntry:
    """One registered space: descriptor + lifecycle state.

    ``state`` moves ``cold -> building -> ready | failed``; eviction and
    :meth:`SpaceRegistry.reset` return it to ``cold``.  ``last_routed``
    (monotonic) orders LRU eviction; it is touched by every successful
    manager resolution, so "idle" means "no request routed here", not
    "no build finished here".
    """

    __slots__ = (
        "descriptor",
        "state",
        "manager",
        "error",
        "future",
        "last_routed",
        "builds",
        "evictions",
        "build_ms",
    )

    def __init__(self, descriptor: SpaceDescriptor) -> None:
        self.descriptor = descriptor
        self.state = "cold"
        self.manager: Optional[SessionManager] = None
        self.error: Optional[str] = None
        self.future: Optional[Future] = None
        self.last_routed = time.monotonic()
        self.builds = 0
        self.evictions = 0
        self.build_ms: Optional[float] = None


class SpaceRegistry:
    """Named space descriptors -> lazily built, budgeted serving state."""

    def __init__(
        self,
        descriptors: Iterable[SpaceDescriptor] = (),
        max_ready: Optional[int] = None,
        state_dir: Optional[str | Path] = None,
        default_config: Optional["SessionConfig"] = None,
        max_sessions: Optional[int] = None,
        idle_ttl_s: Optional[float] = None,
        build_workers: int = 2,
        checkpoint_interactions: bool = True,
        durability: str = "snapshot",
        compact_every: int = 64,
        id_tag: str = "",
        obs=None,
    ) -> None:
        if max_ready is not None and max_ready < 1:
            raise ValueError("max_ready must be >= 1")
        if idle_ttl_s is not None and idle_ttl_s <= 0:
            raise ValueError("idle_ttl_s must be > 0")
        if build_workers < 1:
            raise ValueError("build_workers must be >= 1")
        if durability not in ("snapshot", "journal"):
            raise ValueError(
                f"durability must be 'snapshot' or 'journal', got {durability!r}"
            )
        if durability == "journal" and state_dir is None:
            raise ValueError("durability='journal' needs a registry state_dir")
        self.max_ready = max_ready
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.default_config = default_config
        self.max_sessions = max_sessions
        #: Registry-wide idle TTL; a descriptor's own ``idle_ttl_s``
        #: overrides it per space (see :meth:`sweep_idle`).
        self.idle_ttl_s = idle_ttl_s
        self.checkpoint_interactions = checkpoint_interactions
        #: Durability mode threaded into every space's manager:
        #: ``"journal"`` gives each session an append-only interaction
        #: journal (O(1) durable clicks) with compact-then-evict
        #: semantics — budget/idle eviction folds each session's journal
        #: into its snapshot before the space's runtime is dropped.
        self.durability = durability
        self.compact_every = compact_every
        #: Deployment tag minted in front of every space's session-id
        #: prefix (ids become ``{id_tag}{space}-s0001``).  The
        #: replication tier sets ``w<index>-`` here so ids and resume
        #: tokens carry the worker that owns their in-memory state.
        self.id_tag = id_tag
        self._entries: dict[str, _SpaceEntry] = {}
        self._order: list[str] = []  # registration order; [0] is default
        self._lock = threading.Lock()
        self._executor = ThreadPoolExecutor(
            max_workers=build_workers, thread_name_prefix="repro-space-build"
        )
        #: Retry hint handed to SpaceBuildingError: the last completed
        #: build's wall time (seconds), before any build completes a
        #: conservative default.
        self._build_hint_s = 1.0
        self.spaces_evicted = 0
        #: Optional :class:`repro.obs.Observability` bundle, shared by
        #: every space's manager this registry builds.
        self.obs = obs
        for descriptor in descriptors:
            self.register(descriptor)
        if self._ttls_configured() and self.state_dir is None:
            raise ValueError(
                "idle TTLs need a registry state_dir: sweeping without "
                "persistence would silently destroy live sessions"
            )

    def attach_obs(self, obs) -> None:
        """Wire an observability bundle into the registry and its spaces.

        Managers already built pick it up immediately; spaces built
        later inherit it at construction.  The service front calls this
        when it owns the bundle (``ExplorationService(registry=...,
        obs=...)``).
        """
        self.obs = obs
        if obs is None:
            return
        with self._lock:
            managers = [
                entry.manager
                for entry in self._entries.values()
                if entry.manager is not None
            ]
        for manager in managers:
            manager.attach_obs(obs)

    def _note_space_eviction(self, name: str) -> None:
        """Reset + mark a retired space's observable state.

        The activity ring is cleared first (a rebuilt space must not
        inherit a ghost feed), then a space-level ``evict`` event is
        published as the feed's only survivor — the marker a live
        dashboard sees when a whole space was retired, as opposed to
        the per-session ``evict`` events the manager publishes while
        checkpointing.
        """
        obs = self.obs
        if obs is not None:
            obs.activity.clear_space(name)
            obs.publish("evict", space=name, detail={"space_evicted": True})

    def _ttls_configured(self) -> bool:
        return self.idle_ttl_s is not None or any(
            entry.descriptor.idle_ttl_s is not None
            for entry in self._entries.values()
        )

    # -- registration ----------------------------------------------------

    def register(self, descriptor: SpaceDescriptor, exist_ok: bool = False) -> None:
        """Add a space; ``exist_ok`` tolerates re-registration by name."""
        if self.id_tag and _WORKER_TAG_LIKE.match(descriptor.name):
            raise ValueError(
                f"space name {descriptor.name!r} is ambiguous under id tag "
                f"{self.id_tag!r}: it matches the worker-tag shape "
                f"'w<index>-', so session ids and resume tokens could not "
                f"be routed unambiguously — rename the space"
            )
        if descriptor.idle_ttl_s is not None and self.state_dir is None:
            raise ValueError(
                f"space {descriptor.name!r} sets idle_ttl_s but the "
                "registry has no state_dir to persist evicted sessions to"
            )
        with self._lock:
            if descriptor.name in self._entries:
                if exist_ok:
                    return
                raise ValueError(f"space {descriptor.name!r} already registered")
            self._entries[descriptor.name] = _SpaceEntry(descriptor)
            self._order.append(descriptor.name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def names(self) -> list[str]:
        with self._lock:
            return list(self._order)

    @property
    def default_space(self) -> str:
        """The first registered space: where space-less opens route."""
        with self._lock:
            if not self._order:
                raise SpaceNotFoundError("<default>")
            return self._order[0]

    # -- resolution ------------------------------------------------------

    def _entry(self, name: str) -> _SpaceEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise SpaceNotFoundError(name) from None

    def manager(self, name: str, wait: bool = False) -> SessionManager:
        """The serving manager of ``name``, building it first if needed.

        Ready spaces return immediately (and refresh their LRU stamp).
        Cold spaces queue a background build; with ``wait=False`` (the
        serving path) :class:`SpaceBuildingError` is raised at once so no
        serving thread ever blocks on index construction, with
        ``wait=True`` (CLI warm-up, experiments, tests) the call joins
        the build.  A failed space re-raises its sticky
        :class:`SpaceBuildError`.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.state == "ready":
                entry.last_routed = time.monotonic()
                return entry.manager
            if entry.state == "failed":
                raise SpaceBuildError(name, entry.error)
            if entry.state == "cold":
                entry.state = "building"
                entry.builds += 1
                entry.future = self._executor.submit(self._build, name)
            future = entry.future
            hint = self._build_hint_s
        if not wait:
            raise SpaceBuildingError(name, round(hint, 3))
        future.result()  # surfaces SpaceBuildError on failure
        return self.manager(name, wait=False)

    def runtime(self, name: str, wait: bool = True) -> GroupSpaceRuntime:
        """The (built) runtime of ``name`` — the experiments' entry point."""
        return self.manager(name, wait=wait).runtime

    def peek(self, name: str) -> str:
        """The space's lifecycle state without side effects.

        Unlike :meth:`manager`, peeking a cold space does *not* queue a
        build — the replication tier's ``rebind`` uses this to update an
        evicted space's arena record without resurrecting its runtime.
        """
        with self._lock:
            return self._entry(name).state

    def route(self, session_id: str) -> SessionManager:
        """The manager serving a live session id, whatever its space.

        Session ids are unique across spaces by construction (each
        manager mints under its ``<space>-`` prefix), so at most one
        ready manager answers.  Ids of evicted or never-opened sessions
        raise :class:`~repro.core.runtime.UnknownSessionError` — the
        client's cue to re-open with its resume token, which triggers
        the lazy rebuild.
        """
        with self._lock:
            candidates = [
                (name, entry.manager)
                for name, entry in self._entries.items()
                if entry.state == "ready"
            ]
        for name, manager in candidates:
            if manager.has_session(session_id):
                with self._lock:
                    entry = self._entries.get(name)
                    if entry is not None:
                        entry.last_routed = time.monotonic()
                return manager
        raise UnknownSessionError(session_id)

    def mutate(self, name: str, delta, verify: bool = False) -> dict:
        """Apply a :class:`~repro.core.group.GroupDelta` to a ready space.

        Publishes a new store epoch on the space's runtime — sessions
        pinned to older retained epochs keep serving until they drain —
        and returns the epoch report.  Only ready spaces mutate (there
        is no index to delta-maintain yet on a cold one): cold/building
        spaces raise :class:`SpaceBuildingError` and failed spaces
        re-raise their sticky :class:`SpaceBuildError`, exactly like the
        serving path.  A mutation is not a routing event, so it does not
        refresh the LRU stamp.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.state == "failed":
                raise SpaceBuildError(name, entry.error)
            if entry.state != "ready":
                raise SpaceBuildingError(name, round(self._build_hint_s, 3))
            manager = entry.manager
        return manager.apply_deltas(delta, verify=verify)

    # -- building --------------------------------------------------------

    def _build(self, name: str) -> None:
        """Worker-pool body: materialize one space, then enforce the budget."""
        with self._lock:
            descriptor = self._entry(name).descriptor
        started = time.monotonic()
        try:
            runtime = descriptor.materialize()
            manager = SessionManager(
                runtime,
                default_config=self.default_config,
                max_sessions=(
                    descriptor.max_sessions
                    if descriptor.max_sessions is not None
                    else self.max_sessions
                ),
                state_dir=(
                    self.state_dir / name if self.state_dir is not None else None
                ),
                checkpoint_interactions=self.checkpoint_interactions,
                id_prefix=f"{self.id_tag}{name}-",
                durability=self.durability,
                compact_every=self.compact_every,
                obs=self.obs,
            )
        except Exception as error:  # noqa: BLE001 — recorded, re-raised typed
            cause = f"{type(error).__name__}: {error}"
            with self._lock:
                entry = self._entry(name)
                entry.state = "failed"
                entry.error = cause
                entry.future = None
            raise SpaceBuildError(name, cause) from error
        elapsed = time.monotonic() - started
        with self._lock:
            entry = self._entry(name)
            entry.manager = manager
            entry.state = "ready"
            entry.error = None
            entry.future = None
            entry.last_routed = time.monotonic()
            entry.build_ms = round(elapsed * 1000.0, 3)
            # Builds dominated by index construction scale with the
            # space; the freshest completed build is the best available
            # retry hint for the next cold attach.
            self._build_hint_s = max(elapsed, 0.05)
        self._enforce_budget(protect=name)

    def _retire_entry(self, name: str, entry: _SpaceEntry) -> Optional[SessionManager]:
        """Try to take ``entry`` out of service (caller holds the lock).

        Closes the manager's admission first, so the live-session count
        is exact and no concurrent ``open`` can slip a session onto a
        manager the router is about to forget.  Without a ``state_dir``
        a space holding live sessions is *not* retirable — eviction must
        never destroy a session it cannot checkpoint — so admission is
        reopened and ``None`` returned.  On success the entry is cold
        and the (deregistered) manager is returned for checkpointing.
        """
        manager = entry.manager
        live = manager.close_admission()
        if self.state_dir is None and live > 0:
            manager.reopen_admission()
            return None
        entry.state = "cold"
        entry.manager = None
        entry.evictions += 1
        self.spaces_evicted += 1
        return manager

    def _enforce_budget(self, protect: Optional[str] = None) -> None:
        """Evict LRU idle spaces until at most ``max_ready`` stay resident.

        ``protect`` (the space that just finished building) is never the
        victim — evicting it would turn every cold attach into a
        build/evict livelock.  Without a ``state_dir``, spaces holding
        live sessions are skipped too (the budget is best-effort then):
        eviction must never silently destroy a session it cannot
        checkpoint.
        """
        if self.max_ready is None:
            return
        while True:
            with self._lock:
                ready = [
                    (name, entry)
                    for name, entry in self._entries.items()
                    if entry.state == "ready"
                ]
                if len(ready) <= self.max_ready:
                    return
                candidates = sorted(
                    (pair for pair in ready if pair[0] != protect),
                    key=lambda pair: pair[1].last_routed,
                )
                manager = None
                for name, entry in candidates:
                    manager = self._retire_entry(name, entry)
                    if manager is not None:
                        break
                if manager is None:
                    return  # every candidate is pinned by live sessions
            # Persist outside the registry lock: checkpointing takes each
            # session's own lock, so an in-flight click completes (and
            # checkpoints) before its session's final persist.
            manager.evict_idle(0.0)
            self._note_space_eviction(name)

    def evict(self, name: str) -> bool:
        """Persist + drop one space's serving state (False when refused).

        The durable analogue of a space-level restart: live sessions are
        checkpointed (given a ``state_dir``) and their resume tokens keep
        working across the next lazy build.  Without a ``state_dir`` a
        space holding live sessions refuses eviction — destroying
        unpersistable sessions is never an implicit side effect.  Also
        clears a sticky ``failed`` state so the next resolve retries the
        build.
        """
        with self._lock:
            entry = self._entry(name)
            if entry.state == "failed":
                entry.state = "cold"
                entry.error = None
                return False
            if entry.state != "ready":
                return False
            manager = self._retire_entry(name, entry)
            if manager is None:
                return False
        manager.evict_idle(0.0)
        self._note_space_eviction(name)
        return True

    reset = evict  # a failed space is retried through the same verb

    # -- sweeping --------------------------------------------------------

    def sweep_idle(self) -> int:
        """Apply per-space idle TTLs to every ready space's sessions.

        Each space sweeps under its descriptor's ``idle_ttl_s``, falling
        back to the registry default; spaces with neither are exempt
        (one hot demo space can stay pinned while batch spaces expire).
        Returns the number of sessions evicted.  Only durable managers
        are swept — enforced at configuration time, re-checked here.
        """
        with self._lock:
            targets = [
                (
                    entry.manager,
                    entry.descriptor.idle_ttl_s
                    if entry.descriptor.idle_ttl_s is not None
                    else self.idle_ttl_s,
                )
                for entry in self._entries.values()
                if entry.state == "ready"
            ]
        evicted = 0
        for manager, ttl in targets:
            if ttl is None or manager.state_dir is None:
                continue
            evicted += len(manager.evict_idle(ttl))
        return evicted

    def min_ttl_s(self) -> Optional[float]:
        """The shortest configured idle TTL (sizes the sweeper interval)."""
        with self._lock:
            ttls = [
                entry.descriptor.idle_ttl_s
                if entry.descriptor.idle_ttl_s is not None
                else self.idle_ttl_s
                for entry in self._entries.values()
            ]
        ttls = [ttl for ttl in ttls if ttl is not None]
        return min(ttls) if ttls else None

    # -- introspection ---------------------------------------------------

    def any_degraded(self) -> bool:
        """Whether any ready space's durable layer is failing.

        The process-level health signal ``/healthz`` surfaces: a load
        balancer should stop routing *writes* here while any hosted
        space cannot persist them (per-space detail is on ``/spaces``).
        """
        with self._lock:
            managers = [
                entry.manager
                for entry in self._entries.values()
                if entry.state == "ready" and entry.manager is not None
            ]
        return any(manager.degraded for manager in managers)

    def session_ids(self) -> list[str]:
        """Live session ids across every ready space (sorted)."""
        with self._lock:
            managers = [
                entry.manager
                for entry in self._entries.values()
                if entry.state == "ready"
            ]
        ids: list[str] = []
        for manager in managers:
            ids.extend(manager.session_ids())
        return sorted(ids)

    def describe(self) -> dict[str, dict]:
        """Per-space state + stats: the ``/spaces`` and healthz payload."""
        with self._lock:
            snapshot = [
                (name, self._entries[name]) for name in self._order
            ]
        described: dict[str, dict] = {}
        for name, entry in snapshot:
            row = entry.descriptor.describe()
            row.update(
                {
                    "state": entry.state,
                    "builds": entry.builds,
                    "evictions": entry.evictions,
                    "build_ms": entry.build_ms,
                    "error": entry.error,
                }
            )
            manager = entry.manager
            if manager is not None:
                row["live_sessions"] = len(manager)
                row["groups"] = len(manager.runtime.space)
                row["degraded"] = manager.degraded
                row["stats"] = manager.stats()
            described[name] = row
        return described

    def stats(self) -> dict[str, object]:
        with self._lock:
            states = [entry.state for entry in self._entries.values()]
        return {
            "spaces": len(states),
            "ready": states.count("ready"),
            "building": states.count("building"),
            "failed": states.count("failed"),
            "max_ready": self.max_ready,
            "spaces_evicted": self.spaces_evicted,
            "durable": self.state_dir is not None,
            "durability": self.durability,
            "degraded_spaces": self._degraded_count(),
        }

    def _degraded_count(self) -> int:
        with self._lock:
            managers = [
                entry.manager
                for entry in self._entries.values()
                if entry.manager is not None
            ]
        return sum(1 for manager in managers if manager.degraded)

    def drain(self) -> dict[str, int]:
        """Checkpoint + retire every live session in every ready space.

        The graceful-shutdown primitive behind ``cli serve``'s
        ``SIGTERM`` handler (and worker recycling in the replication
        tier): each ready manager persists and deregisters all of its
        sessions — journal mode compacts them — so every walk resumes
        bitwise-identical after a restart.  Needs a ``state_dir``;
        without one there is nowhere to checkpoint and this is a no-op.
        Returns per-space drained-session counts.
        """
        if self.state_dir is None:
            return {}
        with self._lock:
            ready = [
                (name, entry.manager)
                for name, entry in self._entries.items()
                if entry.state == "ready" and entry.manager is not None
            ]
        return {
            name: len(manager.evict_idle(0.0)) for name, manager in ready
        }

    def shutdown(self, wait: bool = True) -> None:
        """Stop the build workers (pending builds finish when ``wait``)."""
        self._executor.shutdown(wait=wait)

    def __repr__(self) -> str:
        counters = self.stats()
        return (
            f"SpaceRegistry({counters['spaces']} spaces, "
            f"{counters['ready']} ready, max_ready={self.max_ready})"
        )
