"""Exploration task models: single-target (ST) and multi-target (MT).

§III: *"Explorers can seek to achieve either a single target task (ST),
where the goal is to find a single group in its entirety (e.g., finding an
audience group for targeted advertisement), or a multi-target task (MT),
where the goal is to identify several users of interest while exploring
user groups (e.g., forming an expert-set for a conference)."*

Tasks are declarative: they inspect a MEMO (and the dataset) and report
completion and progress.  The simulated explorers in :mod:`repro.agents`
drive sessions until their task completes — which is how the paper's
"<10 iterations" and "80% satisfaction" numbers are regenerated.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.group import Group, GroupSpace
from repro.core.memo import Memo
from repro.data.dataset import UserDataset


class ExplorationTask(ABC):
    """Common interface: completion + progress in [0, 1]."""

    @abstractmethod
    def is_complete(self, memo: Memo) -> bool: ...

    @abstractmethod
    def progress(self, memo: Memo) -> float: ...


# ---------------------------------------------------------------------------
# constraints (used by MT tasks)
# ---------------------------------------------------------------------------


class Constraint(ABC):
    """A requirement over a set of collected users."""

    @abstractmethod
    def satisfaction(self, users: Sequence[int], dataset: UserDataset) -> float:
        """Degree of satisfaction in [0, 1]; 1.0 means satisfied."""

    def is_satisfied(self, users: Sequence[int], dataset: UserDataset) -> bool:
        return self.satisfaction(users, dataset) >= 1.0


@dataclass(frozen=True)
class MinCount(Constraint):
    """At least ``count`` users collected."""

    count: int

    def satisfaction(self, users: Sequence[int], dataset: UserDataset) -> float:
        if self.count <= 0:
            return 1.0
        return min(1.0, len(users) / self.count)


@dataclass(frozen=True)
class MinDistinct(Constraint):
    """Collected users span >= ``distinct`` values of ``attribute``.

    The geographic-diversity requirement of Scenario 1 ("geographically
    distributed researchers") is ``MinDistinct("country", 4)``.
    """

    attribute: str
    distinct: int

    def satisfaction(self, users: Sequence[int], dataset: UserDataset) -> float:
        if self.distinct <= 0:
            return 1.0
        values = {dataset.demographic_value(user, self.attribute) for user in users}
        return min(1.0, len(values) / self.distinct)


@dataclass(frozen=True)
class MinShare(Constraint):
    """At least ``share`` of collected users have ``attribute == value``.

    Gender balance ("gender-balanced committee") is
    ``MinShare("gender", "female", 0.4)``.
    """

    attribute: str
    value: str
    share: float

    def satisfaction(self, users: Sequence[int], dataset: UserDataset) -> float:
        if not users:
            return 0.0
        hits = sum(
            1
            for user in users
            if dataset.demographic_value(user, self.attribute) == self.value
        )
        actual = hits / len(users)
        if self.share <= 0:
            return 1.0
        return min(1.0, actual / self.share)


@dataclass(frozen=True)
class MembersOf(Constraint):
    """All collected users belong to a fixed user pool (e.g. one community)."""

    pool: frozenset[int]

    def satisfaction(self, users: Sequence[int], dataset: UserDataset) -> float:
        if not users:
            return 0.0
        inside = sum(1 for user in users if user in self.pool)
        return inside / len(users)


# ---------------------------------------------------------------------------
# tasks
# ---------------------------------------------------------------------------


@dataclass
class SingleTargetTask(ExplorationTask):
    """ST: reach one specific group (bookmark it in MEMO).

    The target can be a gid or any predicate over groups; completion is
    "a bookmarked group satisfies the predicate".
    """

    space: GroupSpace
    target_gid: int | None = None
    predicate: object = None  # Callable[[Group], bool]

    def __post_init__(self) -> None:
        if self.target_gid is None and self.predicate is None:
            raise ValueError("SingleTargetTask needs a target gid or predicate")

    def _matches(self, group: Group) -> bool:
        if self.target_gid is not None and group.gid == self.target_gid:
            return True
        if self.predicate is not None and self.predicate(group):  # type: ignore[operator]
            return True
        return False

    def is_complete(self, memo: Memo) -> bool:
        return any(self._matches(self.space[gid]) for gid in memo.collected_groups())

    def progress(self, memo: Memo) -> float:
        if self.is_complete(memo):
            return 1.0
        # Partial credit: best member overlap with the target group.
        if self.target_gid is None:
            return 0.0
        target_members = self.space[self.target_gid].members
        best = 0.0
        for gid in memo.collected_groups():
            overlap = len(np.intersect1d(self.space[gid].members, target_members))
            best = max(best, overlap / max(len(target_members), 1))
        return best


@dataclass
class MultiTargetTask(ExplorationTask):
    """MT: collect users satisfying every constraint (the PC-chair task)."""

    dataset: UserDataset
    constraints: list[Constraint] = field(default_factory=list)

    def is_complete(self, memo: Memo) -> bool:
        users = memo.collected_users()
        return all(
            constraint.is_satisfied(users, self.dataset)
            for constraint in self.constraints
        )

    def progress(self, memo: Memo) -> float:
        if not self.constraints:
            return 1.0
        users = memo.collected_users()
        return float(
            np.mean(
                [
                    constraint.satisfaction(users, self.dataset)
                    for constraint in self.constraints
                ]
            )
        )

    def unmet(self, memo: Memo) -> list[Constraint]:
        """Constraints still violated — what the agent should chase next."""
        users = memo.collected_users()
        return [
            constraint
            for constraint in self.constraints
            if not constraint.is_satisfied(users, self.dataset)
        ]


def committee_task(
    dataset: UserDataset,
    size: int = 12,
    min_countries: int = 4,
    min_female_share: float = 0.35,
    min_male_share: float = 0.30,
    min_seniorities: int = 3,
    community: frozenset[int] | None = None,
) -> MultiTargetTask:
    """The Scenario-1 task: a geographically diverse, gender-balanced PC.

    Balance is two-sided (min shares for both genders), so the committee
    really is mixed.  ``community`` (optional) restricts members to one
    venue community — the SIGMOD/VLDB/CIKM-specific variants of
    experiment C4.
    """
    constraints: list[Constraint] = [
        MinCount(size),
        MinDistinct("country", min_countries),
        MinShare("gender", "female", min_female_share),
        MinShare("gender", "male", min_male_share),
        MinDistinct("seniority", min_seniorities),
    ]
    if community is not None:
        constraints.append(MembersOf(community))
    return MultiTargetTask(dataset, constraints)
