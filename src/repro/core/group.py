"""User groups and the group space.

§I: *"The aggregation of users' demographics and actions forms groups such
as 'young professionals in Paris' ... All group members share common
demographics and actions that describe the group."*

A :class:`Group` pairs a *description* (the common tokens) with its
*members* (user indices).  A :class:`GroupSpace` is the set of groups the
offline discovery step produced, with the lookups exploration needs.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.data.dataset import UserDataset
from repro.data.vocab import Vocab
from repro.mining.itemsets import FrequentItemset


@dataclass(frozen=True)
class Group:
    """One user group: description tokens + member user indices."""

    gid: int
    description: tuple[str, ...]
    members: np.ndarray = field(hash=False, compare=False)

    def __post_init__(self) -> None:
        members = np.asarray(self.members, dtype=np.int64)
        object.__setattr__(self, "members", members)

    @property
    def size(self) -> int:
        return len(self.members)

    @property
    def label(self) -> str:
        """Human-readable description (the hover text of GROUPVIZ)."""
        if not self.description:
            return "all users"
        return " & ".join(self.description)

    def contains_user(self, user: int) -> bool:
        position = np.searchsorted(self.members, user)
        return position < len(self.members) and self.members[position] == user

    def __repr__(self) -> str:
        return f"Group(#{self.gid} [{self.label}] n={self.size})"


class GroupSpace:
    """All discovered groups over one dataset.

    Construction enforces sorted-unique member arrays so every similarity
    computation downstream may assume them.
    """

    def __init__(self, dataset: UserDataset, groups: Sequence[Group]) -> None:
        self.dataset = dataset
        self.groups = list(groups)
        for expected_gid, group in enumerate(self.groups):
            if group.gid != expected_gid:
                raise ValueError(
                    f"group ids must be dense: position {expected_gid} holds #{group.gid}"
                )
        self._by_description: Optional[dict[tuple[str, ...], int]] = None

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------

    @classmethod
    def from_itemsets(
        cls,
        dataset: UserDataset,
        itemsets: Iterable[FrequentItemset],
        token_vocab: Vocab,
        min_size: int = 2,
        drop_root: bool = True,
    ) -> "GroupSpace":
        """Turn mined closed itemsets into groups.

        ``drop_root`` removes the empty-description group ("all users"),
        which is never a useful exploration target.
        """
        groups: list[Group] = []
        for itemset in itemsets:
            if drop_root and not itemset.items:
                continue
            if itemset.support < min_size:
                continue
            description = tuple(token_vocab.label(item) for item in itemset.items)
            groups.append(
                Group(len(groups), description, np.sort(np.unique(itemset.tids)))
            )
        return cls(dataset, groups)

    @classmethod
    def from_cluster_labels(
        cls,
        dataset: UserDataset,
        labels: np.ndarray,
        min_size: int = 2,
        describe_top: int = 3,
        purity_floor: float = 0.6,
    ) -> "GroupSpace":
        """Turn a clustering (one label per user) into described groups.

        Clusters have no intrinsic description, so one is attached post hoc:
        the demographic values covering at least ``purity_floor`` of the
        cluster, best ``describe_top`` of them (this is how VEXUS can sit on
        top of BIRCH output).
        """
        labels = np.asarray(labels)
        groups: list[Group] = []
        for label in np.unique(labels):
            members = np.flatnonzero(labels == label).astype(np.int64)
            if len(members) < min_size:
                continue
            dominant: list[tuple[float, str]] = []
            for attribute in dataset.attributes:
                counts = dataset.column(attribute).counts(members)
                value, count = max(counts.items(), key=lambda pair: pair[1])
                share = count / len(members)
                if share >= purity_floor:
                    dominant.append((share, f"{attribute}={value}"))
            dominant.sort(reverse=True)
            description = tuple(token for _, token in dominant[:describe_top])
            if not description:
                description = (f"cluster:{int(label)}",)
            groups.append(Group(len(groups), description, members))
        return cls(dataset, groups)

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.groups)

    def __getitem__(self, gid: int) -> Group:
        return self.groups[gid]

    def __iter__(self):
        return iter(self.groups)

    def memberships(self) -> list[np.ndarray]:
        """Member arrays in gid order (the index-construction input)."""
        return [group.members for group in self.groups]

    def descriptions(self) -> list[tuple[str, ...]]:
        return [group.description for group in self.groups]

    def by_description(self, description: Iterable[str]) -> Optional[Group]:
        """The group with exactly this description, if any."""
        if self._by_description is None:
            self._by_description = {
                group.description: group.gid for group in self.groups
            }
        gid = self._by_description.get(tuple(description))
        return self.groups[gid] if gid is not None else None

    def groups_containing(self, user: int) -> list[Group]:
        return [group for group in self.groups if group.contains_user(user)]

    def largest(self, count: int) -> list[Group]:
        """The ``count`` largest groups (ties broken by gid)."""
        order = sorted(self.groups, key=lambda group: (-group.size, group.gid))
        return order[:count]

    def __repr__(self) -> str:
        return f"GroupSpace({len(self.groups)} groups over {self.dataset.name!r})"


@dataclass(frozen=True)
class GroupDelta:
    """One mutation step against a group space: add / remove / member-churn.

    The unit the online-mutation path (``data/stream.py`` windows mined by
    ``mining/streammining.py``, or an explicit ``POST /spaces/<name>/mutate``)
    hands to :meth:`GroupSpace.apply_delta`.  ``removed`` and the gids in
    ``changed`` refer to the *current* space; ``added`` groups receive fresh
    dense gids at the end of the compacted space.
    """

    added: tuple[tuple[tuple[str, ...], np.ndarray], ...] = ()
    removed: tuple[int, ...] = ()
    changed: tuple[tuple[int, np.ndarray], ...] = ()

    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.changed)

    @classmethod
    def build(
        cls,
        added: Iterable[tuple[Iterable[str], "np.ndarray | Sequence[int]"]] = (),
        removed: Iterable[int] = (),
        changed: Iterable[tuple[int, "np.ndarray | Sequence[int]"]] = (),
    ) -> "GroupDelta":
        """Normalize loose inputs (JSON bodies, test literals) into a delta.

        Member arrays become sorted-unique int64 — the invariant every
        similarity computation downstream assumes.
        """
        return cls(
            added=tuple(
                (tuple(str(token) for token in description),
                 np.unique(np.asarray(members, dtype=np.int64)))
                for description, members in added
            ),
            removed=tuple(sorted({int(gid) for gid in removed})),
            changed=tuple(
                (int(gid), np.unique(np.asarray(members, dtype=np.int64)))
                for gid, members in changed
            ),
        )


def apply_group_delta(
    space: GroupSpace, delta: GroupDelta
) -> tuple[GroupSpace, np.ndarray, np.ndarray, np.ndarray]:
    """Apply a :class:`GroupDelta`, compacting gids to stay dense.

    Returns ``(new_space, old_to_new, changed_old_gids, changed_new_gids)``:

    - ``old_to_new``: int64 array over the old gid range; ``-1`` marks a
      removed group, every surviving gid maps to its (possibly shifted)
      position in the new space.  Compaction is order-preserving, so the
      relative order of surviving gids — and with it every gid-ascending
      tie-break downstream — is unchanged.
    - ``changed_old_gids``: old gids whose *content* went stale (removed or
      member-churned) — the fingerprint-invalidation set.
    - ``changed_new_gids``: new gids whose membership is new or changed
      (churn survivors plus appended additions) — the rows the index must
      recompute from scratch.
    """
    n_old = len(space)
    removed = set(delta.removed)
    changed_members: dict[int, np.ndarray] = {}
    for gid, members in delta.changed:
        if not 0 <= gid < n_old:
            raise ValueError(f"changed gid {gid} outside the space (0..{n_old - 1})")
        if gid in removed:
            raise ValueError(f"gid {gid} is both removed and changed")
        if gid in changed_members:
            raise ValueError(f"gid {gid} changed twice in one delta")
        changed_members[gid] = np.asarray(members, dtype=np.int64)
    for gid in removed:
        if not 0 <= gid < n_old:
            raise ValueError(f"removed gid {gid} outside the space (0..{n_old - 1})")
    n_users = space.dataset.n_users
    for members in changed_members.values():
        if len(members) and (members[0] < 0 or members[-1] >= n_users):
            raise ValueError("changed member index out of range for this dataset")
    for _, members in delta.added:
        if len(members) and (members[0] < 0 or members[-1] >= n_users):
            raise ValueError("added member index out of range for this dataset")

    old_to_new = np.full(n_old, -1, dtype=np.int64)
    groups: list[Group] = []
    changed_new: list[int] = []
    for gid in range(n_old):
        if gid in removed:
            continue
        new_gid = len(groups)
        old_to_new[gid] = new_gid
        if gid in changed_members:
            changed_new.append(new_gid)
            groups.append(
                Group(new_gid, space[gid].description, changed_members[gid])
            )
        else:
            old = space[gid]
            groups.append(
                old if old.gid == new_gid else Group(new_gid, old.description, old.members)
            )
    for description, members in delta.added:
        new_gid = len(groups)
        changed_new.append(new_gid)
        groups.append(Group(new_gid, tuple(description), members))

    changed_old = np.array(
        sorted(removed | set(changed_members)), dtype=np.int64
    )
    return (
        GroupSpace(space.dataset, groups),
        old_to_new,
        changed_old,
        np.array(changed_new, dtype=np.int64),
    )


def theoretical_group_count(n_attributes: int, n_values_per_attribute: int) -> int:
    """Upper bound on the number of candidate groups (§I's 10^6 example).

    Every user set sharing at least one attribute value can form a group, so
    the candidate descriptions are all non-empty partial assignments of
    values to attributes: ``(v + 1)^a - 1``.  With the paper's four
    attributes and five values each this is 1,295 *conjunctive* descriptions
    — the paper's "order of 10^6" additionally counts arbitrary unions of
    such cells (any set of users with one shared token): ``2^(a*v)``-ish;
    we report the conjunctive bound and measure empirical counts in C6.
    """
    if n_attributes < 0 or n_values_per_attribute < 0:
        raise ValueError("counts must be non-negative")
    return (n_values_per_attribute + 1) ** n_attributes - 1


def powerset_group_count(n_attributes: int, n_values_per_attribute: int) -> float:
    """The looser §I bound: any subset of the attribute-value tokens.

    ``2^(a*v) - 1`` descriptions; with 4 attributes x 5 values this is
    ``2^20 - 1 ≈ 10^6`` — the figure the paper quotes.
    """
    if n_attributes < 0 or n_values_per_attribute < 0:
        raise ValueError("counts must be non-negative")
    return math.pow(2, n_attributes * n_values_per_attribute) - 1
