"""CONTEXT module: the visible, editable feedback state.

§II-B: *"VEXUS shows the explicit current status of the feedback vector in
the CONTEXT module.  Hence the explorer can easily understand how VEXUS
results are currently biased.  She can easily unlearn ... by deleting it
from CONTEXT."*  (Fig. 2 renders it as chips like ``[cikm][male]``.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.feedback import FeedbackKey, FeedbackVector
from repro.data.dataset import UserDataset


@dataclass(frozen=True)
class ContextEntry:
    """One chip in the CONTEXT panel."""

    kind: str  # "user" | "token"
    label: str
    score: float
    key: FeedbackKey


class ContextView:
    """Read/edit window over the session's feedback vector."""

    def __init__(self, feedback: FeedbackVector, dataset: UserDataset) -> None:
        self._feedback = feedback
        self._dataset = dataset

    def entries(self, top: int = 12) -> list[ContextEntry]:
        """The highest-mass feedback entries, labelled for display."""
        shown: list[ContextEntry] = []
        for key, score in self._feedback.top(top):
            kind, payload = key
            if kind == "user":
                label = self._dataset.users.label(int(payload))  # type: ignore[arg-type]
            else:
                label = str(payload)
            shown.append(ContextEntry(kind=kind, label=label, score=score, key=key))
        return shown

    def forget(self, entry: ContextEntry) -> bool:
        """Delete one chip — the §II-B unlearning gesture."""
        return self._feedback.unlearn(entry.key)

    def forget_token(self, token: str) -> bool:
        """Unlearn a demographic value by its token label (e.g. 'gender=male')."""
        return self._feedback.unlearn_token(token)

    def forget_user_label(self, user_label: str) -> bool:
        """Unlearn a user by display name."""
        if user_label not in self._dataset.users:
            return False
        return self._feedback.unlearn_user(self._dataset.users.code(user_label))

    def bias_summary(self) -> dict[str, float]:
        """Total mass per kind — how user- vs attribute-driven the bias is."""
        mass = {"user": 0.0, "token": 0.0}
        for (kind, _), score in self._feedback.top(len(self._feedback)):
            mass[kind] += score
        return mass
