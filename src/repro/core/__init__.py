"""VEXUS core: groups, the exploration loop, and everything §II describes.

Public entry points:

- :func:`~repro.core.discovery.discover_groups` — offline phase
  (dataset -> group space via LCM / Apriori / α-MOMRI / stream / BIRCH);
- :class:`~repro.core.session.ExplorationSession` — online phase
  (start / click / backtrack / bookmark, with feedback learning).
"""

from repro.core.context import ContextEntry, ContextView
from repro.core.discovery import (
    DiscoveryConfig,
    discover_groups,
    group_space_with_descriptions_only,
)
from repro.core.features import FeatureSpace, user_feature_matrix
from repro.core.feedback import FeedbackVector
from repro.core.graph import build_group_graph, navigation_summary
from repro.core.group import (
    Group,
    GroupSpace,
    powerset_group_count,
    theoretical_group_count,
)
from repro.core.history import History, Step
from repro.core.memo import Memo
from repro.core.profile import ExplorerProfile
from repro.core.runtime import (
    GroupSpaceRuntime,
    SessionManager,
    SharedPairCache,
)
from repro.core.selection import SelectionConfig, SelectionResult, select_k
from repro.core.session import ExplorationSession, SessionConfig
from repro.core.store import (
    load_group_space,
    load_index,
    load_session_state,
    save_group_space,
    save_index,
    save_session_state,
)
from repro.core.similarity import (
    jaccard,
    jaccard_distance,
    mean_pairwise_jaccard,
    overlap_size,
    weighted_jaccard,
)
from repro.core.tasks import (
    Constraint,
    ExplorationTask,
    MembersOf,
    MinCount,
    MinDistinct,
    MinShare,
    MultiTargetTask,
    SingleTargetTask,
    committee_task,
)

__all__ = [
    "Constraint",
    "ContextEntry",
    "ContextView",
    "DiscoveryConfig",
    "ExplorationSession",
    "ExplorationTask",
    "ExplorerProfile",
    "FeatureSpace",
    "FeedbackVector",
    "Group",
    "GroupSpace",
    "GroupSpaceRuntime",
    "History",
    "Memo",
    "MembersOf",
    "MinCount",
    "MinDistinct",
    "MinShare",
    "MultiTargetTask",
    "SelectionConfig",
    "SelectionResult",
    "SessionConfig",
    "SessionManager",
    "SharedPairCache",
    "SingleTargetTask",
    "Step",
    "build_group_graph",
    "committee_task",
    "discover_groups",
    "group_space_with_descriptions_only",
    "jaccard",
    "jaccard_distance",
    "load_group_space",
    "load_index",
    "load_session_state",
    "mean_pairwise_jaccard",
    "navigation_summary",
    "overlap_size",
    "powerset_group_count",
    "save_group_space",
    "save_index",
    "save_session_state",
    "select_k",
    "theoretical_group_count",
    "user_feature_matrix",
    "weighted_jaccard",
]
