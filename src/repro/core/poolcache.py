"""Session-scoped memoization of per-pool selection precomputation.

The greedy selector (:mod:`repro.core.selection`) derives everything it
scores from one pooled sparse membership matrix: the pool×relevant
coverage incidence, per-candidate coverage positions, lazily materialized
pool×pool Jaccard columns, and the description-attribute incidence.  A
single click affords rebuilding all of it (~45% of a converged budgeted
``select_k``), but a *session* is a walk over heavily overlapping
neighborhoods — the original VEXUS system precomputes exactly these
shared statistics so every click after the first pays only for what
changed.

:class:`PoolStatsCache` is that reuse layer, owned by one
:class:`~repro.core.session.ExplorationSession` (or one benchmark loop)
and keyed on *content fingerprints* so stale reuse is impossible by
construction:

- **structure layer** — :class:`_PoolStructure` holds every
  feedback-independent precomputation for one ``(pool, relevant)`` pair.
  Keyed on the ordered tuple of per-group fingerprints (gid, size, member
  hash) plus the relevant-set fingerprint: mutating a group's members or
  re-running discovery changes the fingerprint and misses.  A pool that
  *permutes* a cached pool (profile re-ranking reorders, it does not
  recompute) is served by row-permuting the donor's CSR slices instead of
  rebuilding.  When the owning session hands over the similarity index's
  membership matrix, cold builds slice rows out of it (validated against
  the pool's member arrays) rather than re-concatenating per click.
- **Jaccard pair layer** — every materialized similarity column publishes
  its (group, group) → Jaccard entries into a bounded shared dict, so a
  click whose pool overlaps *any* earlier pool assembles most of each
  column from cached pairs and runs the sparse mat-vec only over the
  missing rows.  Both paths go through
  :func:`repro.core.similarity.jaccard_column`, so patched and fresh
  columns are bitwise identical.
- **feedback layer** — the feedback-dependent arrays (coverage weights,
  per-candidate §II-B group weights) keyed on the feedback vector's
  *content* key (:meth:`repro.core.feedback.FeedbackVector.state_key`),
  so a backtrack that restores a snapshot hits even though the vector
  object mutated in between.
- **result layer** — full ``select_k`` results keyed on (pool, relevant,
  feedback content, prior key, config).  A hit returns the identical
  display and scores; it is what makes the paper's backtrack/re-click
  HISTORY gesture effectively free.

- **governor layer** — where the adaptive budget governor's escalation
  stopped on each (pool, config), so a budgeted re-click *resumes* at the
  recorded tier instead of restarting from tier 1 (see
  :mod:`repro.core.selection`).

When the owning session belongs to a
:class:`~repro.core.runtime.GroupSpaceRuntime`, the structure and Jaccard
pair layers additionally consult the runtime's cross-session
:class:`~repro.core.runtime.SharedPairCache` before computing, so one
session's precomputation warms every other session over the same group
space.  The feedback, result and governor layers stay private per
session by construction — they encode one explorer's CONTEXT.

Every layer is LRU/size-bounded so long sessions stay in bounded memory,
and every layer is *transparent*: cached and uncached runs return the
same groups and scores (property-tested in
``tests/core/test_poolcache.py``).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from collections.abc import Callable, Sequence
from typing import Any, Hashable, Optional

import numpy as np
from scipy import sparse

from repro.core.feedback import FeedbackVector
from repro.core.group import Group
from repro.core.similarity import jaccard_column, membership_matrix
from repro.obs.trace import traced

#: (gid, member count, member-content hash) — identifies one group's
#: membership by value, not by object identity.
GroupFingerprint = tuple[int, int, int]


def group_fingerprint(group: Group) -> GroupFingerprint:
    """Content fingerprint of one group's member set."""
    members = np.ascontiguousarray(group.members)
    return (group.gid, len(members), hash(members.tobytes()))


def pool_fingerprint(pool: Sequence[Group]) -> tuple[GroupFingerprint, ...]:
    """Ordered fingerprint of a candidate pool (pool order is floor-fill order)."""
    return tuple(group_fingerprint(group) for group in pool)


def relevant_fingerprint(relevant: np.ndarray) -> tuple[int, int]:
    """Content fingerprint of the relevant-user array."""
    array = np.ascontiguousarray(np.asarray(relevant, dtype=np.int64))
    return (len(array), hash(array.tobytes()))


def _attribute_of(token: str) -> str:
    """The analysis direction a description token belongs to.

    ``gender=female`` -> ``gender``; ``item:The Hobbit`` -> ``item``.
    """
    if token.startswith("item:"):
        return "item"
    attribute, separator, _ = token.partition("=")
    return attribute if separator else token


class _PoolStructure:
    """Feedback-independent precomputation for one (pool, relevant) pair.

    Everything both selection engines read that does not depend on the
    feedback vector or the prior: the pooled membership CSR, the
    pool×relevant coverage incidence and per-candidate positions, the
    description-attribute incidence, and the lazily materialized Jaccard
    columns.  Instances are immutable apart from ``sim_columns`` growing,
    which only ever *adds* values that any fresh computation would produce
    bitwise-identically — so sharing one structure across many
    ``select_k`` calls cannot change any score.
    """

    __slots__ = (
        "pool",
        "fingerprints",
        "key",
        "_stable_key",
        "relevant",
        "n_relevant",
        "n_columns",
        "members_matrix",
        "member_sizes",
        "cover",
        "positions",
        "group_attributes",
        "attrs",
        "attr_count",
        "sim_columns",
        "pair_sims",
        "pair_capacity",
        "shared_pairs",
        "shared_version",
        "published_columns",
    )

    def __init__(
        self,
        pool: Sequence[Group],
        relevant: np.ndarray,
        fingerprints: Optional[tuple[GroupFingerprint, ...]] = None,
        relevant_key: Optional[tuple[int, int]] = None,
        space_matrix: Optional[sparse.csr_matrix] = None,
    ) -> None:
        self.pool = list(pool)
        self.fingerprints = (
            pool_fingerprint(self.pool) if fingerprints is None else fingerprints
        )
        relevant_key = (
            relevant_fingerprint(relevant) if relevant_key is None else relevant_key
        )
        self.key = (self.fingerprints, relevant_key)
        self._stable_key: Optional[str] = None
        self.relevant = np.unique(np.asarray(relevant, dtype=np.int64))
        self.n_relevant = len(self.relevant)
        memberships = [group.members for group in self.pool]
        matrix = self._slice_space_matrix(space_matrix, memberships)
        if matrix is None:
            n_columns = max(
                (int(members.max()) + 1 for members in memberships if len(members)),
                default=0,
            )
            if self.n_relevant:
                n_columns = max(n_columns, int(self.relevant.max()) + 1)
            matrix = membership_matrix(memberships, n_columns)
        self.members_matrix = matrix
        self.n_columns = matrix.shape[1]
        self.member_sizes = np.array(
            [len(members) for members in memberships], dtype=np.float64
        )
        self._build_cover()
        self.group_attributes = [
            frozenset(_attribute_of(token) for token in group.description)
            for group in self.pool
        ]
        self._build_attrs()
        self.sim_columns: dict[int, np.ndarray] = {}
        self.pair_sims: Optional[dict] = None
        self.pair_capacity = 0
        # Cross-session pair layer (a runtime's SharedPairCache) plus the
        # runtime version observed when this structure was served — every
        # shared read/publish is stamped with it, so a store mutation
        # mid-click invalidates rather than races.
        self.shared_pairs: Optional[Any] = None
        self.shared_version = 0
        # Columns already visible to the shared layer; when the live
        # count grows past this, the owning cache republishes a snapshot
        # so other sessions inherit the materialized columns.
        self.published_columns = 0

    def _slice_space_matrix(
        self,
        space_matrix: Optional[sparse.csr_matrix],
        memberships: list[np.ndarray],
    ) -> Optional[sparse.csr_matrix]:
        """Pool rows sliced out of the session's space-level membership CSR.

        Only trusted after validating the sliced column indices against the
        pool's actual member arrays — a mutated store silently diverging
        from the index is exactly the staleness this cache must never
        serve.  Any mismatch falls back to a direct build.
        """
        if space_matrix is None or not self.pool:
            return None
        n_rows, width = space_matrix.shape
        gids = [group.gid for group in self.pool]
        if min(gids) < 0 or max(gids) >= n_rows:
            return None
        if self.n_relevant and int(self.relevant.max()) >= width:
            return None
        sliced = space_matrix[gids]
        expected = (
            np.concatenate(memberships)
            if memberships
            else np.empty(0, dtype=np.int64)
        )
        if sliced.nnz != len(expected) or not np.array_equal(
            sliced.indices, expected
        ):
            return None
        return sliced

    def _build_cover(self) -> None:
        if self.n_relevant and self.pool:
            cover = self.members_matrix[:, self.relevant].tocsr()
            cover.data = cover.data.astype(np.float64)
            self.cover: Optional[sparse.csr_matrix] = cover
            indptr = cover.indptr
            indices = cover.indices
            self.positions = [
                indices[indptr[i] : indptr[i + 1]].astype(np.int64)
                for i in range(len(self.pool))
            ]
        else:
            self.cover = None
            self.positions = [np.empty(0, dtype=np.int64) for _ in self.pool]

    def _build_attrs(self) -> None:
        vocabulary = sorted(
            {attr for attrs in self.group_attributes for attr in attrs}
        )
        attr_index = {attr: i for i, attr in enumerate(vocabulary)}
        npool = len(self.pool)
        self.attrs = np.zeros((npool, max(len(vocabulary), 1)), dtype=bool)
        for index, attrs in enumerate(self.group_attributes):
            for attr in attrs:
                self.attrs[index, attr_index[attr]] = True
        self.attr_count = np.maximum(
            np.array(
                [len(attrs) for attrs in self.group_attributes], dtype=np.int64
            ),
            1,
        )

    # -- durable identity ------------------------------------------------

    @property
    def stable_key(self) -> str:
        """Cross-process content identity of this (pool, relevant) pair.

        ``key`` hashes member bytes with the process-salted builtin
        ``hash`` — the right trade-off for the per-click hot path, but
        meaningless in another process.  Durable state (the governor-tier
        layer persisted by :func:`repro.core.store.save_session_state`)
        instead keys on this sha256 digest of the *ordered* pool (gid,
        size, member bytes) plus the deduplicated relevant set, so a
        session restored after a restart lands on the same keys a fresh
        build of the same content produces.  Computed lazily and cached:
        warm clicks that never touch the governor or persistence pay
        nothing.
        """
        if self._stable_key is None:
            digest = hashlib.sha256()
            for group in self.pool:
                members = np.ascontiguousarray(group.members, dtype=np.int64)
                digest.update(np.int64(group.gid).tobytes())
                digest.update(np.int64(len(members)).tobytes())
                digest.update(members.tobytes())
            digest.update(b"|relevant|")
            digest.update(self.relevant.tobytes())
            self._stable_key = digest.hexdigest()
        return self._stable_key

    # -- Jaccard columns ------------------------------------------------

    def sim_column(self, index: int) -> np.ndarray:
        """Jaccard of every pool entry to ``pool[index]``, lazily cached.

        With a session pair dict and/or a cross-session
        :class:`~repro.core.runtime.SharedPairCache` attached, the column
        is assembled from previously published (group, group)
        similarities — the session layer first (lock-free), then one
        batched, version-stamped shared lookup — and only the still
        missing rows pay a (partial) sparse mat-vec.  Either way every
        entry comes from :func:`repro.core.similarity.jaccard_column`,
        so cached, patched and fresh columns are bitwise identical.
        """
        cached = self.sim_columns.get(index)
        if cached is not None:
            return cached
        members = self.pool[index].members
        pairs = self.pair_sims
        shared = self.shared_pairs
        column: Optional[np.ndarray] = None
        computed: list[int] = []
        if pairs or shared is not None:
            own = self.fingerprints[index]
            column = np.empty(len(self.pool), dtype=np.float64)
            missing: list[int] = []
            missing_keys: list[tuple] = []
            for position, fingerprint in enumerate(self.fingerprints):
                key = (own, fingerprint) if own <= fingerprint else (fingerprint, own)
                value = pairs.get(key) if pairs else None
                if value is None:
                    missing.append(position)
                    missing_keys.append(key)
                else:
                    column[position] = value
            if missing and shared is not None:
                found = shared.get_pairs(missing_keys, self.shared_version)
                if found:
                    still_missing: list[int] = []
                    for position, key in zip(missing, missing_keys):
                        value = found.get(key)
                        if value is None:
                            still_missing.append(position)
                        else:
                            column[position] = value
                    missing = still_missing
            if len(missing) == len(self.pool):
                column = None  # nothing cached anywhere: one full mat-vec
            elif missing:
                rows = self.members_matrix[missing]
                column[missing] = jaccard_column(
                    rows, self.member_sizes[missing], members
                )
                computed = missing
        if column is None:
            column = jaccard_column(self.members_matrix, self.member_sizes, members)
            computed = list(range(len(self.pool)))
        self._publish_pairs(index, column, computed)
        self.sim_columns[index] = column
        return column

    def _publish_pairs(
        self, index: int, column: np.ndarray, computed: list[int]
    ) -> None:
        """Publish one column's pair values to the session + shared layers.

        The session dict absorbs the full column (local lookups stay
        lock-free, including values that arrived from the shared layer);
        the shared layer receives only the *freshly computed* entries —
        everything else it either already holds or published itself.
        """
        pairs = self.pair_sims
        shared = self.shared_pairs
        session_wants = pairs is not None and len(pairs) < self.pair_capacity
        shared_wants = shared is not None and computed
        if not session_wants and not shared_wants:
            return
        own = self.fingerprints[index]
        values = column.tolist()
        if session_wants:
            for position, fingerprint in enumerate(self.fingerprints):
                key = (
                    (own, fingerprint) if own <= fingerprint else (fingerprint, own)
                )
                pairs[key] = values[position]
        if shared_wants:
            fresh: dict[tuple, float] = {}
            for position in computed:
                fingerprint = self.fingerprints[position]
                key = (
                    (own, fingerprint) if own <= fingerprint else (fingerprint, own)
                )
                fresh[key] = values[position]
            shared.publish_pairs(fresh, self.shared_version)

    def snapshot(self) -> "_PoolStructure":
        """An independent view of this structure for another session.

        Shares every immutable array (membership CSR, coverage incidence,
        attribute matrices) but owns fresh mutable state: a copied
        ``sim_columns`` dict and *no* pair/shared bindings — the serving
        cache re-attaches those per session.  This is what
        :class:`~repro.core.runtime.SharedPairCache` stores and returns,
        so no two sessions ever mutate the same dict concurrently.
        """
        twin = object.__new__(_PoolStructure)
        twin.pool = self.pool
        twin.fingerprints = self.fingerprints
        twin.key = self.key
        twin._stable_key = self._stable_key
        twin.relevant = self.relevant
        twin.n_relevant = self.n_relevant
        twin.n_columns = self.n_columns
        twin.members_matrix = self.members_matrix
        twin.member_sizes = self.member_sizes
        twin.cover = self.cover
        twin.positions = self.positions
        twin.group_attributes = self.group_attributes
        twin.attrs = self.attrs
        twin.attr_count = self.attr_count
        twin.sim_columns = dict(self.sim_columns)
        twin.pair_sims = None
        twin.pair_capacity = 0
        twin.shared_pairs = None
        twin.shared_version = 0
        twin.published_columns = len(twin.sim_columns)
        return twin

    # -- permutation reuse ----------------------------------------------

    def permuted(
        self,
        pool: Sequence[Group],
        fingerprints: tuple[GroupFingerprint, ...],
        relevant_key: tuple[int, int],
    ) -> Optional["_PoolStructure"]:
        """This structure re-ordered to serve ``pool`` (same groups, new order).

        Profile re-ranking permutes the candidate pool without changing its
        content; row-permuting the existing CSR slices (and re-keying the
        materialized Jaccard columns) is far cheaper than a rebuild.
        Returns ``None`` when ``pool`` is not a permutation of this
        structure's groups.
        """
        if len(pool) != len(self.pool):
            return None
        old_position = {
            fingerprint: position
            for position, fingerprint in enumerate(self.fingerprints)
        }
        try:
            perm = [old_position[fingerprint] for fingerprint in fingerprints]
        except KeyError:
            return None
        permutation = np.asarray(perm, dtype=np.int64)
        twin = object.__new__(_PoolStructure)
        twin.pool = list(pool)
        twin.fingerprints = fingerprints
        twin.key = (fingerprints, relevant_key)
        twin._stable_key = None  # pool order is part of the identity
        twin.relevant = self.relevant
        twin.n_relevant = self.n_relevant
        twin.n_columns = self.n_columns
        twin.members_matrix = self.members_matrix[permutation]
        twin.member_sizes = self.member_sizes[permutation]
        twin.cover = self.cover[permutation] if self.cover is not None else None
        twin.positions = [self.positions[i] for i in perm]
        twin.group_attributes = [self.group_attributes[i] for i in perm]
        twin.attrs = self.attrs[permutation]
        twin.attr_count = self.attr_count[permutation]
        new_position = {old: new for new, old in enumerate(perm)}
        twin.sim_columns = {
            new_position[old]: column[permutation]
            for old, column in self.sim_columns.items()
            if old in new_position
        }
        twin.pair_sims = self.pair_sims
        twin.pair_capacity = self.pair_capacity
        twin.shared_pairs = self.shared_pairs
        twin.shared_version = self.shared_version
        twin.published_columns = 0
        return twin


class PoolStatsCache:
    """Bounded, fingerprint-keyed reuse of per-pool selection state.

    One instance per exploration session (or benchmark loop).  All layers
    are transparent caches: a hit returns exactly what a fresh computation
    would, a content change anywhere (store mutation, re-discovery,
    feedback drift) changes the fingerprint and misses.  ``capacity`` /
    ``result_capacity`` bound the structure and result layers with LRU
    eviction; ``pair_capacity`` bounds the shared Jaccard pair dict
    (publication simply stops at the cap), so long sessions hold bounded
    memory.
    """

    def __init__(
        self,
        capacity: int = 32,
        result_capacity: int = 64,
        pair_capacity: int = 200_000,
        space_matrix: Optional[sparse.csr_matrix] = None,
        shared: Optional[Any] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if result_capacity < 0 or pair_capacity < 0:
            raise ValueError("capacities must be >= 0")
        self.capacity = capacity
        self.result_capacity = result_capacity
        self.pair_capacity = pair_capacity
        self.space_matrix = space_matrix
        #: Cross-session layer (a :class:`repro.core.runtime.SharedPairCache`)
        #: consulted for structures and Jaccard pairs before computing.
        #: Feedback/result layers stay private to this session cache.
        self.shared = shared
        self._structures: "OrderedDict[tuple, _PoolStructure]" = OrderedDict()
        self._by_set: dict[tuple, tuple] = {}
        self._feedback_layers: "OrderedDict[tuple, tuple]" = OrderedDict()
        self._results: "OrderedDict[tuple, Any]" = OrderedDict()
        self._dense_weights: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
        self._pair_sims: dict[tuple, float] = {}
        self._governor_tiers: "OrderedDict[tuple, int]" = OrderedDict()
        self.last_structure_key: Optional[tuple] = None
        self.structure_hits = 0
        self.structure_permuted = 0
        self.structure_misses = 0
        self.shared_structure_hits = 0
        self.feedback_hits = 0
        self.feedback_misses = 0
        self.result_hits = 0
        self.result_misses = 0
        self.governor_resumes = 0
        self.evictions = 0

    # -- structure layer -------------------------------------------------

    @traced("cache_lookup")
    def structure_for(
        self,
        pool: Sequence[Group],
        relevant: np.ndarray,
        fingerprints: Optional[tuple[GroupFingerprint, ...]] = None,
        relevant_key: Optional[tuple[int, int]] = None,
    ) -> tuple[_PoolStructure, str]:
        """The structure for ``(pool, relevant)`` plus how it was obtained.

        Returns ``(structure, state)`` with state ``"warm"`` (exact,
        permuted or cross-session reuse) or ``"miss"`` (fresh build, now
        cached — and published to the shared layer when one is attached).
        """
        if fingerprints is None:
            fingerprints = pool_fingerprint(pool)
        if relevant_key is None:
            relevant_key = relevant_fingerprint(relevant)
        key = (fingerprints, relevant_key)
        shared = self.shared
        shared_version = shared.version if shared is not None else 0
        structure = self._structures.get(key)
        if structure is not None:
            self._structures.move_to_end(key)
            self.structure_hits += 1
            structure.shared_version = shared_version
            self.last_structure_key = key
            return structure, "warm"
        set_key = (frozenset(fingerprints), relevant_key)
        donor_key = self._by_set.get(set_key)
        state = "miss"
        if donor_key is not None and donor_key in self._structures:
            donor = self._structures[donor_key]
            structure = donor.permuted(pool, fingerprints, relevant_key)
            if structure is not None:
                self.structure_permuted += 1
                state = "warm"
        if structure is None and shared is not None:
            # Cross-session reuse: another session over the same runtime
            # already built this (pool, relevant) structure.  The lookup
            # returns an independent snapshot, so this session's column
            # materialization never touches the donor's dicts.
            structure = shared.lookup_structure(key, shared_version)
            if structure is not None:
                self.shared_structure_hits += 1
                state = "warm"
        if structure is None:
            structure = _PoolStructure(
                pool,
                relevant,
                fingerprints=fingerprints,
                relevant_key=relevant_key,
                space_matrix=self.space_matrix,
            )
            self.structure_misses += 1
            if shared is not None and shared.publish_structure(
                key, structure, shared_version
            ):
                structure.published_columns = len(structure.sim_columns)
        structure.pair_sims = self._pair_sims
        structure.pair_capacity = self.pair_capacity
        structure.shared_pairs = shared
        structure.shared_version = shared_version
        self._structures[key] = structure
        self._by_set[set_key] = key
        self.last_structure_key = key
        while len(self._structures) > self.capacity:
            evicted_key, evicted = self._structures.popitem(last=False)
            evicted_set = (frozenset(evicted.fingerprints), evicted_key[1])
            if self._by_set.get(evicted_set) == evicted_key:
                del self._by_set[evicted_set]
            self.evictions += 1
        return structure, state

    def touch_last(self) -> None:
        """Mark the most recently served pool as hot again (LRU refresh).

        Drill-down and STATS reads signal the explorer is studying the
        current neighborhood; keeping its statistics resident makes the
        likely next click warm.
        """
        key = self.last_structure_key
        if key is not None and key in self._structures:
            self._structures.move_to_end(key)

    def republish_structure(self, key: Optional[tuple] = None) -> None:
        """Refresh the shared copy of a pool with its live columns.

        A structure is first published at build time, before any Jaccard
        column exists; the selection engines then materialize columns for
        every group that enters the display.  Called at the end of
        ``select_k`` with the clicked pool's structure key (falling back
        to the most recently served structure), this pushes an updated
        snapshot so *other* sessions inherit the materialized columns
        instead of re-assembling them pair by pair.  No-op without a
        shared layer or when nothing new was materialized.
        """
        shared = self.shared
        if key is None:
            key = self.last_structure_key
        if shared is None or key is None:
            return
        structure = self._structures.get(key)
        if structure is None:
            return
        if len(structure.sim_columns) <= structure.published_columns:
            return
        if shared.publish_structure(key, structure, structure.shared_version):
            structure.published_columns = len(structure.sim_columns)

    # -- feedback layer --------------------------------------------------

    def feedback_layer_for(
        self,
        structure: _PoolStructure,
        feedback: Optional[FeedbackVector],
        prior: Optional[Callable[[Group], float]],
        prior_key: Optional[Hashable],
        compute: Callable[[], tuple],
    ) -> tuple:
        """Cached (weights, total_weight, group_feedback) for one structure.

        Keyed on the feedback vector's content key plus the caller-supplied
        prior key; an unkeyable prior (``prior`` given without
        ``prior_key``) is computed fresh every time rather than guessed at.
        """
        if prior is not None and prior_key is None:
            return compute()
        feedback_key = feedback.state_key() if feedback is not None else None
        key = (structure.key, feedback_key, prior_key)
        layer = self._feedback_layers.get(key)
        if layer is not None:
            self._feedback_layers.move_to_end(key)
            self.feedback_hits += 1
            return layer
        layer = compute()
        self.feedback_misses += 1
        self._feedback_layers[key] = layer
        while len(self._feedback_layers) > max(2 * self.capacity, 4):
            self._feedback_layers.popitem(last=False)
        return layer

    def dense_user_weights(
        self,
        feedback: FeedbackVector,
        size: int,
    ) -> np.ndarray:
        """Memoized ``feedback.user_weights(size, floor=0.0)`` by content key."""
        key = (feedback.state_key(), size)
        weights = self._dense_weights.get(key)
        if weights is None:
            weights = feedback.user_weights(size, floor=0.0)
            self._dense_weights[key] = weights
            while len(self._dense_weights) > 8:
                self._dense_weights.popitem(last=False)
        else:
            self._dense_weights.move_to_end(key)
        return weights

    # -- result layer ----------------------------------------------------

    def result_key(
        self,
        fingerprints: tuple[GroupFingerprint, ...],
        relevant_key: tuple[int, int],
        feedback: Optional[FeedbackVector],
        prior: Optional[Callable[[Group], float]],
        prior_key: Optional[Hashable],
        config_key: Hashable,
    ) -> Optional[tuple]:
        """Memo key for a full ``select_k`` call; ``None`` when unkeyable."""
        if prior is not None and prior_key is None:
            return None
        feedback_key = feedback.state_key() if feedback is not None else None
        return (fingerprints, relevant_key, feedback_key, prior_key, config_key)

    def lookup_result(self, key: tuple) -> Optional[Any]:
        result = self._results.get(key)
        if result is None:
            self.result_misses += 1
            return None
        self._results.move_to_end(key)
        self.result_hits += 1
        return result

    def store_result(self, key: tuple, result: Any) -> None:
        if self.result_capacity == 0:
            return
        self._results[key] = result
        while len(self._results) > self.result_capacity:
            self._results.popitem(last=False)

    # -- governor layer --------------------------------------------------

    def governor_resume_tier(self, structure_key: tuple, config_key: Hashable) -> int:
        """Highest escalation tier the last governed click on this pool
        reached (0 when the pool has not been governed yet).

        Keyed on the structure's content fingerprints plus the selection
        config, so a mutated pool or different governor knobs start cold.
        The budgeted escalation path uses this to *resume* at the
        recorded tier instead of re-exploring tiers that already
        converged on this pool — a scheduling hint only, never a result.
        """
        key = (structure_key, config_key)
        tier = self._governor_tiers.get(key)
        if tier is None:
            return 0
        self._governor_tiers.move_to_end(key)
        return tier

    def note_governor_resume(self) -> None:
        """Count one escalation that actually resumed past tier 1.

        Called by the selection engine *after* escalation ran with a
        recorded start tier — a mere lookup is not a resume (the click
        may exhaust its budget before ever escalating).
        """
        self.governor_resumes += 1

    def record_governor_tier(
        self, structure_key: tuple, config_key: Hashable, tier: int
    ) -> None:
        """Record where this pool's escalation stopped (LRU-bounded)."""
        key = (structure_key, config_key)
        self._governor_tiers[key] = tier
        self._governor_tiers.move_to_end(key)
        while len(self._governor_tiers) > max(2 * self.capacity, 4):
            self._governor_tiers.popitem(last=False)

    def export_governor_tiers(self) -> list[tuple[Any, Any, int]]:
        """Governor layer as ``(structure_key, config_key, tier)`` rows.

        The selection engine keys this layer on
        :attr:`_PoolStructure.stable_key` (a content digest) plus the
        selection-config tuple — both process-independent — so the rows
        survive serialization and a later :meth:`import_governor_tiers`
        in another process resumes escalation exactly where this one
        stopped.  Rows are emitted in LRU order (oldest first) so a
        bounded re-import keeps the same retention behaviour.
        """
        return [
            (structure_key, config_key, tier)
            for (structure_key, config_key), tier in self._governor_tiers.items()
        ]

    def import_governor_tiers(
        self, rows: Sequence[tuple[Any, Any, int]]
    ) -> None:
        """Restore rows exported by :meth:`export_governor_tiers`."""
        for structure_key, config_key, tier in rows:
            self.record_governor_tier(structure_key, config_key, int(tier))

    # -- targeted invalidation -------------------------------------------

    def invalidate_fingerprints(
        self, stale: "frozenset[GroupFingerprint] | set[GroupFingerprint]"
    ) -> int:
        """Drop every entry touching one of these group fingerprints.

        The per-fingerprint counterpart of :meth:`clear` for store
        mutations: only entries whose *content* actually changed
        (removed or member-churned groups) are evicted; everything else
        stays warm.  The governor layer is untouched — it keys on
        process-independent content digests, so stale rows simply never
        hit again.  Returns the number of entries dropped.
        """
        if not stale:
            return 0
        dropped = 0
        for key in [
            key
            for key in self._structures
            if any(fingerprint in stale for fingerprint in key[0])
        ]:
            evicted = self._structures.pop(key)
            set_key = (frozenset(evicted.fingerprints), key[1])
            if self._by_set.get(set_key) == key:
                del self._by_set[set_key]
            if self.last_structure_key == key:
                self.last_structure_key = None
            dropped += 1
        # Feedback layers key on ``structure.key`` = (fingerprints,
        # relevant_key); results key directly on the fingerprint tuple.
        for key in [
            key
            for key in self._feedback_layers
            if any(fingerprint in stale for fingerprint in key[0][0])
        ]:
            del self._feedback_layers[key]
            dropped += 1
        for key in [
            key
            for key in self._results
            if any(fingerprint in stale for fingerprint in key[0])
        ]:
            del self._results[key]
            dropped += 1
        for key in [
            key
            for key in self._pair_sims
            if key[0] in stale or key[1] in stale
        ]:
            del self._pair_sims[key]
            dropped += 1
        return dropped

    # -- introspection ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._structures)

    def stats(self) -> dict[str, int]:
        """Counter snapshot (what the perf harness reports)."""
        return {
            "structures": len(self._structures),
            "structure_hits": self.structure_hits,
            "structure_permuted": self.structure_permuted,
            "structure_misses": self.structure_misses,
            "shared_structure_hits": self.shared_structure_hits,
            "feedback_hits": self.feedback_hits,
            "feedback_misses": self.feedback_misses,
            "result_hits": self.result_hits,
            "result_misses": self.result_misses,
            "governor_resumes": self.governor_resumes,
            "evictions": self.evictions,
            "pair_entries": len(self._pair_sims),
        }

    def clear(self) -> None:
        self._structures.clear()
        self._by_set.clear()
        self._feedback_layers.clear()
        self._results.clear()
        self._dense_weights.clear()
        self._pair_sims.clear()
        self._governor_tiers.clear()
        self.last_structure_key = None

    def __repr__(self) -> str:
        counters = self.stats()
        return (
            f"PoolStatsCache({counters['structures']}/{self.capacity} pools, "
            f"{counters['structure_hits']} hits, "
            f"{counters['structure_misses']} misses, "
            f"{counters['result_hits']} result hits)"
        )
