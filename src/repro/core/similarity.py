"""Set similarity between groups.

§II-A uses Jaccard over member sets to rank each group's inverted index;
§II-B extends it to a *weighted* similarity so the greedy optimizer can
favour groups aligned with the explorer's feedback.

Besides the scalar functions, this module owns the *pooled* similarity
primitives: one sparse group×user membership matrix and the dense
pool×pool Jaccard matrix derived from its self-product.  Both the
inverted index (:mod:`repro.index.inverted`) and the selection engine
(:mod:`repro.core.selection`) build on these instead of re-deriving
pairwise similarities one pair at a time.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Optional

import numpy as np
from scipy import sparse


def jaccard(left: np.ndarray, right: np.ndarray) -> float:
    """Jaccard similarity of two sorted-unique index arrays."""
    if len(left) == 0 and len(right) == 0:
        return 1.0
    intersection = len(np.intersect1d(left, right, assume_unique=True))
    union = len(left) + len(right) - intersection
    return intersection / union if union else 0.0


def jaccard_distance(left: np.ndarray, right: np.ndarray) -> float:
    """1 − Jaccard similarity (the paper's phrasing: 'Jaccard distance')."""
    return 1.0 - jaccard(left, right)


def overlap_size(left: np.ndarray, right: np.ndarray) -> int:
    """|left ∩ right| — nonzero iff the group graph has an edge (§II)."""
    return len(np.intersect1d(left, right, assume_unique=True))


def weighted_jaccard(
    left: np.ndarray,
    right: np.ndarray,
    weights: np.ndarray,
) -> float:
    """Jaccard where each user counts with an importance weight.

    ``weights`` is a dense per-user weight vector (e.g. the feedback scores
    of §II-B plus a uniform floor).  Reduces to plain Jaccard when all
    weights are equal.
    """
    if len(left) == 0 and len(right) == 0:
        return 1.0
    intersection = np.intersect1d(left, right, assume_unique=True)
    union = np.union1d(left, right)
    union_weight = float(weights[union].sum())
    if union_weight <= 0.0:
        return 0.0
    return float(weights[intersection].sum()) / union_weight


def membership_matrix(
    memberships: Sequence[np.ndarray], n_users: int
) -> sparse.csr_matrix:
    """Sparse |G|×|users| 0/1 matrix: row g marks group g's members.

    The self-product of this matrix yields all pairwise intersection sizes
    in one sparse multiply — the shared backbone of the inverted index and
    the pooled Jaccard matrix below.  Member arrays are assumed unique
    (the :class:`~repro.core.group.GroupSpace` invariant); duplicates
    would inflate intersection counts.
    """
    count = len(memberships)
    arrays = [np.asarray(members, dtype=np.int64) for members in memberships]
    lengths = np.array([len(members) for members in arrays], dtype=np.int64)
    indptr = np.zeros(count + 1, dtype=np.int64)
    np.cumsum(lengths, out=indptr[1:])
    column_indices = (
        np.concatenate(arrays) if count else np.empty(0, dtype=np.int64)
    )
    data = np.ones(len(column_indices), dtype=np.int64)
    # Sorted-unique member arrays mean the buffers are already canonical
    # CSR, so the matrix is assembled directly — no COO round trip.
    return sparse.csr_matrix(
        (data, column_indices, indptr),
        shape=(count, max(n_users, 1)),
    )


def membership_matrix_from_csr(
    indices: np.ndarray, indptr: np.ndarray, n_users: int
) -> sparse.csr_matrix:
    """:func:`membership_matrix` assembled from pre-pooled CSR buffers.

    ``indices``/``indptr`` are the already-concatenated member columns and
    row offsets (the layout a shared-memory arena stores) — the matrix is
    assembled directly over those buffers, so attaching a replica costs
    one ``ones`` allocation for the data vector instead of re-pooling
    every member array.  Bitwise-identical to
    ``membership_matrix(memberships, n_users)`` over the per-group views
    ``indices[indptr[g]:indptr[g+1]]``, a property the arena tests assert.
    """
    indices = np.asarray(indices, dtype=np.int64)
    indptr = np.asarray(indptr, dtype=np.int64)
    data = np.ones(len(indices), dtype=np.int64)
    return sparse.csr_matrix(
        (data, indices, indptr),
        shape=(len(indptr) - 1, max(n_users, 1)),
    )


def jaccard_column(
    members_matrix: sparse.csr_matrix,
    member_sizes: np.ndarray,
    members: np.ndarray,
) -> np.ndarray:
    """Jaccard of every row of ``members_matrix`` to the set ``members``.

    One sparse mat-vec against a 0/1 indicator of ``members`` yields all
    intersection sizes at once; matches :func:`jaccard` entrywise (two
    empty sets similar at 1.0).  This is the single column of the pooled
    Jaccard matrix that the selection engine materializes lazily and that
    :class:`repro.core.poolcache.PoolStatsCache` patches across
    overlapping candidate pools — both must go through this function so
    cached and freshly computed values are bitwise identical.
    """
    indicator = np.zeros(members_matrix.shape[1], dtype=np.float64)
    indicator[members] = 1.0
    intersections = np.asarray(members_matrix @ indicator, dtype=np.float64)
    unions = (
        np.asarray(member_sizes, dtype=np.float64)
        + float(len(members))
        - intersections
    )
    return np.where(
        unions > 0, intersections / np.where(unions > 0, unions, 1.0), 1.0
    )


def pairwise_jaccard_matrix(
    memberships: Sequence[np.ndarray], n_users: Optional[int] = None
) -> np.ndarray:
    """Dense |G|×|G| Jaccard matrix via one sparse membership self-product.

    Matches :func:`jaccard` entrywise (two empty sets similar at 1.0, the
    diagonal is 1.0) but costs one sparse multiply instead of O(|G|²)
    pairwise ``intersect1d`` calls — intended for candidate pools of a few
    hundred groups, where the dense result is small.
    """
    count = len(memberships)
    if count == 0:
        return np.zeros((0, 0), dtype=np.float64)
    arrays = [np.asarray(members, dtype=np.int64) for members in memberships]
    if n_users is None:
        n_users = max(
            (int(members.max()) + 1 for members in arrays if len(members)),
            default=0,
        )
    matrix = membership_matrix(arrays, n_users)
    intersections = np.asarray(
        (matrix @ matrix.T).toarray(), dtype=np.float64
    )
    sizes = np.array([len(members) for members in arrays], dtype=np.float64)
    unions = sizes[:, None] + sizes[None, :] - intersections
    return np.where(unions > 0, intersections / np.where(unions > 0, unions, 1.0), 1.0)


def mean_pairwise_jaccard(memberships: list[np.ndarray]) -> float:
    """Average Jaccard over all pairs (0 when fewer than two groups)."""
    count = len(memberships)
    if count < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(count):
        for j in range(i + 1, count):
            total += jaccard(memberships[i], memberships[j])
            pairs += 1
    return total / pairs
