"""Set similarity between groups.

§II-A uses Jaccard over member sets to rank each group's inverted index;
§II-B extends it to a *weighted* similarity so the greedy optimizer can
favour groups aligned with the explorer's feedback.
"""

from __future__ import annotations

import numpy as np


def jaccard(left: np.ndarray, right: np.ndarray) -> float:
    """Jaccard similarity of two sorted-unique index arrays."""
    if len(left) == 0 and len(right) == 0:
        return 1.0
    intersection = len(np.intersect1d(left, right, assume_unique=True))
    union = len(left) + len(right) - intersection
    return intersection / union if union else 0.0


def jaccard_distance(left: np.ndarray, right: np.ndarray) -> float:
    """1 − Jaccard similarity (the paper's phrasing: 'Jaccard distance')."""
    return 1.0 - jaccard(left, right)


def overlap_size(left: np.ndarray, right: np.ndarray) -> int:
    """|left ∩ right| — nonzero iff the group graph has an edge (§II)."""
    return len(np.intersect1d(left, right, assume_unique=True))


def weighted_jaccard(
    left: np.ndarray,
    right: np.ndarray,
    weights: np.ndarray,
) -> float:
    """Jaccard where each user counts with an importance weight.

    ``weights`` is a dense per-user weight vector (e.g. the feedback scores
    of §II-B plus a uniform floor).  Reduces to plain Jaccard when all
    weights are equal.
    """
    if len(left) == 0 and len(right) == 0:
        return 1.0
    intersection = np.intersect1d(left, right, assume_unique=True)
    union = np.union1d(left, right)
    union_weight = float(weights[union].sum())
    if union_weight <= 0.0:
        return 0.0
    return float(weights[intersection].sum()) / union_weight


def mean_pairwise_jaccard(memberships: list[np.ndarray]) -> float:
    """Average Jaccard over all pairs (0 when fewer than two groups)."""
    count = len(memberships)
    if count < 2:
        return 0.0
    total = 0.0
    pairs = 0
    for i in range(count):
        for j in range(i + 1, count):
            total += jaccard(memberships[i], memberships[j])
            pairs += 1
    return total / pairs
