"""HISTORY module: the exploration trajectory with backtracking.

§II-A: *"The sequence of selected groups is visualized in HISTORY.  The
explorer can backtrack to any previous step in HISTORY."*

Steps form a tree, not a list: backtracking to an earlier step and clicking
a different group branches the trajectory (both branches stay inspectable).
Each step snapshots everything needed to restore the session exactly —
shown groups and the feedback vector — which the round-trip property test
relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.feedback import FeedbackKey


@dataclass(frozen=True)
class Step:
    """One exploration step (immutable once recorded)."""

    step_id: int
    parent_id: Optional[int]
    clicked_gid: Optional[int]  # group whose click produced this step; None = start
    shown_gids: tuple[int, ...]
    feedback_snapshot: dict[FeedbackKey, float] = field(hash=False, compare=False)

    @property
    def is_root(self) -> bool:
        return self.parent_id is None


class History:
    """Append-only step tree with a movable cursor."""

    def __init__(self) -> None:
        self._steps: list[Step] = []
        self._children: dict[int, list[int]] = {}
        self._current: Optional[int] = None

    # ------------------------------------------------------------------

    def record(
        self,
        clicked_gid: Optional[int],
        shown_gids: list[int],
        feedback_snapshot: dict[FeedbackKey, float],
    ) -> Step:
        """Append a step under the cursor and move the cursor to it."""
        step = Step(
            step_id=len(self._steps),
            parent_id=self._current,
            clicked_gid=clicked_gid,
            shown_gids=tuple(shown_gids),
            feedback_snapshot=dict(feedback_snapshot),
        )
        self._steps.append(step)
        if step.parent_id is not None:
            self._children.setdefault(step.parent_id, []).append(step.step_id)
        self._current = step.step_id
        return step

    def backtrack(self, step_id: int) -> Step:
        """Move the cursor to any previously recorded step (O(1))."""
        if not 0 <= step_id < len(self._steps):
            raise KeyError(f"unknown history step {step_id}")
        self._current = step_id
        return self._steps[step_id]

    def discard_last(self) -> Step:
        """Remove the most recently recorded step and return it.

        The one exception to "append-only": rolling back an interaction
        whose durable journal append failed — the step must disappear
        again so the session's in-memory state matches what the client
        was told (503: not applied).  Only ever called right after
        :meth:`record`, before anything could reference the step.
        """
        if not self._steps:
            raise KeyError("history is empty; nothing to discard")
        step = self._steps.pop()
        if step.parent_id is not None:
            children = self._children.get(step.parent_id)
            if children is not None:
                if step.step_id in children:
                    children.remove(step.step_id)
                if not children:
                    del self._children[step.parent_id]
        if self._current == step.step_id:
            self._current = step.parent_id
        return step

    # ------------------------------------------------------------------

    @property
    def current(self) -> Optional[Step]:
        return self._steps[self._current] if self._current is not None else None

    def step(self, step_id: int) -> Step:
        return self._steps[step_id]

    def children_of(self, step_id: int) -> list[Step]:
        return [self._steps[child] for child in self._children.get(step_id, [])]

    def path(self) -> list[Step]:
        """Root-to-cursor chain (what the HISTORY panel draws)."""
        chain: list[Step] = []
        cursor = self._current
        while cursor is not None:
            step = self._steps[cursor]
            chain.append(step)
            cursor = step.parent_id
        chain.reverse()
        return chain

    def __len__(self) -> int:
        return len(self._steps)

    def __iter__(self):
        return iter(self._steps)

    def __repr__(self) -> str:
        position = self._current if self._current is not None else "-"
        return f"History({len(self._steps)} steps, cursor at {position})"
