"""Persistence for offline pre-processing artifacts.

The paper's pipeline (Fig. 1) runs group discovery and index construction
*offline*; a real deployment computes them once and serves many exploration
sessions.  This module persists both artifacts — the group space and the
partially materialized similarity index — plus a session's state (feedback,
history, memo), using portable formats only (JSON + ``.npz``; no pickle).

Layout of a store directory::

    <dir>/space.json      descriptions, gids, dataset name
    <dir>/members.npz     member arrays (flattened + offsets)
    <dir>/index.json      materialization fraction, prefix ranking
    <dir>/session.json    feedback snapshot, history tree, memo
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from collections.abc import Sequence
from pathlib import Path
from typing import Optional

import numpy as np

from repro.core import faults
from repro.core.group import Group, GroupSpace
from repro.core.selection import SelectionConfig
from repro.core.session import ExplorationSession, SessionConfig
from repro.data.dataset import UserDataset
from repro.index.inverted import SimilarityIndex

_FORMAT_VERSION = 1


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory so a rename inside it survives power loss.

    ``os.replace`` makes a write *atomic* but not *durable*: the new
    directory entry lives in the directory's own metadata, which the
    kernel may hold dirty long after the file's data is on disk.  Every
    durable rename in this codebase (session checkpoints, journal
    rotation) pairs with this call.
    """
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def durable_replace_bytes(final: Path, data: bytes) -> None:
    """Atomically and *durably* replace ``final``'s contents with ``data``.

    write staging -> fsync staging -> rename over final -> fsync the
    directory: the full sequence, so after a crash at any instant the
    file holds either the complete old contents or the complete new ones
    (write-then-rename alone leaves both a torn-staging and a
    lost-rename window).  The journal append path reuses the same
    primitives via :mod:`repro.core.faults`, which also owns the
    ``store.pre_replace`` crash point injected between the staging fsync
    and the rename.
    """
    staging = final.with_name(final.name + ".tmp")
    fd = os.open(staging, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        faults.write(fd, data)
        faults.fsync(fd)
    finally:
        os.close(fd)
    faults.crash_point("store.pre_replace")
    os.replace(staging, final)
    fsync_directory(final.parent)


def space_digest(memberships: Sequence[np.ndarray]) -> str:
    """Stable content digest of a group space's member arrays.

    Hashes every group's length + member indices in gid order with
    sha256, so the digest is identical across processes and hash seeds
    (unlike :func:`repro.core.poolcache.group_fingerprint`, which is
    process-local by design).  ``save_index`` stamps the index with the
    digest of the space it was built on; ``load_index`` recomputes it
    from the live space, so an on-disk index that went stale through
    store mutation raises instead of silently serving wrong neighbors.
    """
    digest = hashlib.sha256()
    for members in memberships:
        array = np.ascontiguousarray(np.asarray(members, dtype=np.int64))
        digest.update(np.int64(len(array)).tobytes())
        digest.update(array.tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# group space
# ---------------------------------------------------------------------------


def save_group_space(space: GroupSpace, directory: str | Path) -> None:
    """Write a group space under ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    memberships = space.memberships()
    offsets = np.zeros(len(memberships) + 1, dtype=np.int64)
    np.cumsum([len(members) for members in memberships], out=offsets[1:])
    flat = (
        np.concatenate(memberships)
        if memberships
        else np.empty(0, dtype=np.int64)
    )
    np.savez_compressed(directory / "members.npz", offsets=offsets, members=flat)
    manifest = {
        "version": _FORMAT_VERSION,
        "dataset": space.dataset.name,
        "n_groups": len(space),
        "descriptions": [list(group.description) for group in space],
    }
    (directory / "space.json").write_text(
        json.dumps(manifest), encoding="utf-8"
    )


def load_group_space(dataset: UserDataset, directory: str | Path) -> GroupSpace:
    """Rebuild a group space saved by :func:`save_group_space`.

    ``dataset`` must be the same population the space was discovered on
    (checked by name); member indices are not revalidated beyond bounds.
    """
    directory = Path(directory)
    manifest = json.loads((directory / "space.json").read_text(encoding="utf-8"))
    if manifest["version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported store version {manifest['version']}")
    if manifest["dataset"] != dataset.name:
        raise ValueError(
            f"store was built on dataset {manifest['dataset']!r}, "
            f"got {dataset.name!r}"
        )
    arrays = np.load(directory / "members.npz")
    offsets = arrays["offsets"]
    flat = arrays["members"]
    if len(flat) and flat.max() >= dataset.n_users:
        raise ValueError("stored member index out of range for this dataset")
    groups = [
        Group(
            gid,
            tuple(description),
            flat[offsets[gid] : offsets[gid + 1]],
        )
        for gid, description in enumerate(manifest["descriptions"])
    ]
    return GroupSpace(dataset, groups)


# ---------------------------------------------------------------------------
# similarity index
# ---------------------------------------------------------------------------


def save_index(index: SimilarityIndex, directory: str | Path) -> None:
    """Persist the materialized prefix of a similarity index.

    The payload is stamped with the content digest of the memberships the
    index was built on, so :func:`load_index` can refuse to pair it with
    a group space that has since been mutated or re-discovered.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    prefix = [
        [[neighbor.group, neighbor.similarity] for neighbor in index.materialized_neighbors(gid)]
        for gid in range(index.n_groups)
    ]
    r_indptr = index._reserve_indptr
    reserve = [
        [
            [int(gid), float(sim)]
            for gid, sim in zip(
                index._reserve_ids[r_indptr[g] : r_indptr[g + 1]].tolist(),
                index._reserve_sims[r_indptr[g] : r_indptr[g + 1]].tolist(),
            )
        ]
        for g in range(index.n_groups)
    ]
    payload = {
        "version": _FORMAT_VERSION,
        "n_groups": index.n_groups,
        "n_users": index.n_users,
        "materialize_fraction": index.materialize_fraction,
        "prefix": prefix,
        "prefix_complete": [bool(flag) for flag in index._prefix_complete],
        "reserve": reserve,
        "tail_complete": [bool(flag) for flag in index._tail_complete],
        "space_digest": space_digest(index._memberships),
    }
    (directory / "index.json").write_text(json.dumps(payload), encoding="utf-8")


def load_index(space: GroupSpace, directory: str | Path) -> SimilarityIndex:
    """Rebuild an index saved by :func:`save_index` without recomputing.

    The memberships come from ``space``; the stored prefix replaces the
    construction pass (useful when the O(|G|^2) build is the bottleneck).
    The stored space digest is re-validated against the *live* space
    before any reuse: an index saved for a since-mutated store raises
    here instead of silently serving wrong neighbors.
    """
    directory = Path(directory)
    payload = json.loads((directory / "index.json").read_text(encoding="utf-8"))
    if payload["version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported store version {payload['version']}")
    if payload["n_groups"] != len(space):
        raise ValueError(
            f"index stores {payload['n_groups']} groups, space has {len(space)}"
        )
    live_digest = space_digest(space.memberships())
    stored_digest = payload.get("space_digest")
    if stored_digest is not None and stored_digest != live_digest:
        raise ValueError(
            "stored index is stale: it was built on a group space whose "
            f"membership digest was {stored_digest[:12]}..., but the live "
            f"space digests to {live_digest[:12]}...; re-run discovery / "
            "index construction instead of serving wrong neighbors"
        )
    index = SimilarityIndex.__new__(SimilarityIndex)
    index.n_groups = payload["n_groups"]
    index.n_users = payload["n_users"]
    index.materialize_fraction = payload["materialize_fraction"]
    index._memberships = [
        np.asarray(members, dtype=np.int64) for members in space.memberships()
    ]
    index._sizes = np.array([len(members) for members in index._memberships])
    counts = np.array(
        [len(entry) for entry in payload["prefix"]], dtype=np.int64
    )
    indptr = np.zeros(index.n_groups + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    flat = [pair for entry in payload["prefix"] for pair in entry]
    index._prefix_ids = np.array(
        [pair[0] for pair in flat], dtype=np.int64
    )
    index._prefix_sims = np.array(
        [pair[1] for pair in flat], dtype=np.float64
    )
    index._prefix_indptr = indptr
    index._prefix_complete = np.array(
        payload["prefix_complete"], dtype=bool
    )
    # Maintenance reserve (absent in older payloads: loads empty, which
    # delta maintenance tolerates — it just recomputes more rows).
    reserve = payload.get("reserve")
    if reserve is None:
        reserve = [[] for _ in range(index.n_groups)]
    r_counts = np.array([len(entry) for entry in reserve], dtype=np.int64)
    r_indptr = np.zeros(index.n_groups + 1, dtype=np.int64)
    np.cumsum(r_counts, out=r_indptr[1:])
    r_flat = [pair for entry in reserve for pair in entry]
    index._reserve_ids = np.array(
        [pair[0] for pair in r_flat], dtype=np.int64
    )
    index._reserve_sims = np.array(
        [pair[1] for pair in r_flat], dtype=np.float64
    )
    index._reserve_indptr = r_indptr
    tail = payload.get("tail_complete")
    index._tail_complete = (
        np.array(tail, dtype=bool)
        if tail is not None
        else index._prefix_complete.copy()
    )
    index._exact_cache = {}
    index._matrix = None  # lazily rebuilt on the first exact lookup
    return index


# ---------------------------------------------------------------------------
# session state
# ---------------------------------------------------------------------------


def _encode_config(config: SessionConfig) -> dict:
    """JSON form of a session's configuration (selection nested)."""
    fields = {
        field.name: getattr(config, field.name)
        for field in dataclasses.fields(SessionConfig)
        if field.name != "selection"
    }
    fields["selection"] = dataclasses.asdict(config.selection)
    return fields


def _decode_config(payload: Optional[dict]) -> Optional[SessionConfig]:
    if payload is None:
        return None
    fields = dict(payload)
    selection = fields.pop("selection", None)
    return SessionConfig(
        **fields,
        selection=SelectionConfig(**selection) if selection is not None else None,
    )


def load_session_config(directory: str | Path) -> Optional[SessionConfig]:
    """The configuration a persisted session ran under, if recorded.

    Lets :meth:`repro.core.runtime.SessionManager.open_session` resume a
    session with exactly the knobs it was exploring with — a restored
    analyst must not silently land on a different k / engine / governor.
    Returns ``None`` for legacy payloads that predate config stamping.
    """
    directory = Path(directory)
    payload = json.loads((directory / "session.json").read_text(encoding="utf-8"))
    if payload["version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported store version {payload['version']}")
    return _decode_config(payload.get("config"))


def _retuple(value):
    """Recursively turn JSON arrays back into the tuples they were.

    Governor keys are nested tuples of scalars (structure digest,
    selection-config astuple); JSON flattens tuples to lists, and dict
    keys must be hashable again on the way back in.
    """
    if isinstance(value, list):
        return tuple(_retuple(item) for item in value)
    return value


def save_session_state(
    session: ExplorationSession,
    directory: str | Path,
    journal_seq: Optional[int] = None,
) -> None:
    """Persist everything needed to resume an exploration session.

    The payload is stamped with the dataset name and the content digest
    of the group space the session was exploring, so
    :func:`load_session_state` can refuse to graft a session onto a
    space that has since been mutated or re-discovered (same contract as
    :func:`load_index`).  Alongside the display/feedback/history/memo
    state it records the session's configuration, the explorer profile,
    and the pool cache's governor-tier layer (keyed on stable content
    digests), so a resumed session's next governed click escalates from
    where the persisted one stopped.

    ``journal_seq`` (journal-mode managers) stamps the snapshot with the
    last interaction sequence number it covers; recovery replays only
    journal records *after* it, which is what makes replay idempotent
    when a crash lands between the snapshot replace and the journal
    rotation.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": _FORMAT_VERSION,
        "dataset": session.space.dataset.name,
        # Multi-space routing stamp: which named space (if any) this
        # session belongs to.  The digest below catches content drift;
        # the name additionally catches two *different* spaces that
        # happen to share content (or a manifest rename), so state saved
        # under one space name can never resume under another.
        "space": session.runtime.name,
        # The session's *pinned* epoch digest (cached on the epoch: this
        # runs per interaction checkpoint and must not re-hash the whole
        # space on every click).  A session opened before a mutation
        # keeps checkpointing its own generation's digest, so resume
        # lands back on that exact retained epoch, not whatever the
        # runtime currently serves.
        "space_digest": session.epoch.digest(),
        "epoch": session.epoch.number,
        "config": _encode_config(session.config),
        "profile": {
            "token_weight": dict(session.profile.token_weight),
            "visited_gids": list(session.profile.visited_gids),
            "steps_observed": session.profile.steps_observed,
        },
        "governor_tiers": (
            [
                [structure_key, list(config_key), tier]
                for structure_key, config_key, tier in (
                    session.pool_cache.export_governor_tiers()
                )
            ]
            if session.pool_cache is not None
            else []
        ),
        "displayed": session.displayed_gids(),
        "feedback": [
            [kind, key, value]
            for (kind, key), value in session.feedback.snapshot().items()
        ],
        "history": [
            {
                "step_id": step.step_id,
                "parent_id": step.parent_id,
                "clicked_gid": step.clicked_gid,
                "shown_gids": list(step.shown_gids),
                "feedback": [
                    [kind, key, value]
                    for (kind, key), value in step.feedback_snapshot.items()
                ],
            }
            for step in session.history
        ],
        "cursor": (
            session.history.current.step_id
            if session.history.current is not None
            else None
        ),
        "memo_groups": {str(gid): note for gid, note in session.memo.groups.items()},
        "memo_users": {str(user): note for user, note in session.memo.users.items()},
    }
    if journal_seq is not None:
        payload["journal_seq"] = int(journal_seq)
    # Durable atomic replace: this runs as a per-interaction checkpoint,
    # and the crash the whole mechanism exists for can land mid-write.
    # A truncated session.json would turn "lost the click in flight"
    # into "lost the session"; staging + fsync + rename + directory
    # fsync keeps the previous checkpoint intact until the new one is
    # durably complete (and lets a concurrent resume read a consistent
    # file, never a torn one).
    durable_replace_bytes(
        directory / "session.json", json.dumps(payload).encode("utf-8")
    )


def load_session_journal_seq(directory: str | Path) -> int:
    """The journal sequence number a persisted snapshot covers.

    ``0`` for snapshots that predate the journal (or were written by a
    snapshot-mode manager): every journal record replays on top of them.
    """
    directory = Path(directory)
    payload = json.loads((directory / "session.json").read_text(encoding="utf-8"))
    return int(payload.get("journal_seq") or 0)


def load_session_state(
    session: ExplorationSession, directory: str | Path
) -> ExplorationSession:
    """Restore a session saved by :func:`save_session_state` in place.

    ``session`` must be freshly constructed over the same space; its
    history/feedback/memo/profile (and the governor-tier layer of its
    pool cache) are replaced by the stored state.  The stored space
    digest is re-validated against the live space first — session state
    saved for a since-mutated store raises here instead of silently
    restoring a display of groups that no longer exist (mirroring
    :func:`load_index`; legacy payloads without a digest load as before).
    """
    directory = Path(directory)
    payload = json.loads((directory / "session.json").read_text(encoding="utf-8"))
    if payload["version"] != _FORMAT_VERSION:
        raise ValueError(f"unsupported store version {payload['version']}")
    if len(session.history) > 0:
        raise ValueError("load_session_state needs a fresh session")
    stored_dataset = payload.get("dataset")
    if stored_dataset is not None and stored_dataset != session.space.dataset.name:
        raise ValueError(
            f"session state was saved on dataset {stored_dataset!r}, "
            f"got {session.space.dataset.name!r}"
        )
    stored_space = payload.get("space")
    live_space = session.runtime.name
    if (
        stored_space is not None
        and live_space is not None
        and stored_space != live_space
    ):
        # Both sides are named: a cross-space graft is refused even when
        # the content digests happen to agree (two manifest entries over
        # one store, or a renamed space).  One-sided names stay loadable
        # so pre-registry payloads and anonymous runtimes keep working.
        raise ValueError(
            f"session state belongs to space {stored_space!r}; it cannot "
            f"be resumed onto space {live_space!r}"
        )
    stored_digest = payload.get("space_digest")
    if stored_digest is not None:
        live_digest = session.epoch.digest()
        if stored_digest != live_digest:
            # Not the current generation — but the runtime retains
            # recent epochs precisely so a session checkpointed before a
            # mutation can resume against the generation it was actually
            # exploring.  The digest is the authority (epoch numbers are
            # informative only: they restart at 0 on process restart).
            resolved = session.runtime.resolve_digest(stored_digest)
            if resolved is None:
                from repro.core.runtime import StaleEpochError

                stored_epoch = payload.get("epoch")
                stamp = (
                    f" (saved at epoch {stored_epoch})"
                    if stored_epoch is not None
                    else ""
                )
                raise StaleEpochError(
                    "stored session state is stale: it was saved on a group "
                    f"space whose membership digest was {stored_digest[:12]}..."
                    f"{stamp}, but the live space digests to "
                    f"{live_digest[:12]}... and no retained epoch matches; "
                    "the session cannot be resumed onto a mutated store"
                )
            session.rebind_epoch(resolved)

    def decode(entries):
        return {
            (kind, key if kind == "token" else int(key)): float(value)
            for kind, key, value in entries
        }

    for step in payload["history"]:
        # Rebuild the tree in recorded order: set the cursor to each step's
        # parent before recording so branching is preserved.
        if step["parent_id"] is not None:
            session.history.backtrack(step["parent_id"])
        session.history.record(
            step["clicked_gid"], step["shown_gids"], decode(step["feedback"])
        )
    if payload["cursor"] is not None:
        session.history.backtrack(payload["cursor"])
    session.feedback.restore(decode(payload["feedback"]))
    for gid, note in payload["memo_groups"].items():
        session.memo.bookmark_group(int(gid), note)
    for user, note in payload["memo_users"].items():
        session.memo.bookmark_user(int(user), note)
    profile = payload.get("profile")
    if profile is not None:
        session.profile.token_weight = {
            token: float(weight)
            for token, weight in profile["token_weight"].items()
        }
        session.profile.visited_gids = [int(gid) for gid in profile["visited_gids"]]
        session.profile.steps_observed = int(profile["steps_observed"])
    if session.pool_cache is not None:
        session.pool_cache.import_governor_tiers(
            [
                (structure_key, _retuple(config_key), int(tier))
                for structure_key, config_key, tier in payload.get(
                    "governor_tiers", []
                )
            ]
        )
    session._displayed = [session.space[gid] for gid in payload["displayed"]]
    return session


def append_epoch_record(directory: str | Path, report: dict) -> None:
    """Append one mutation report to the state directory's epoch lineage.

    ``epochs.json`` is an *advisory* audit trail (one JSON object per
    line: epoch number, digest, parent digest, delta counts) — epochs
    themselves are in-memory serving state, so this file is never read
    on the recovery path and a failed append must not fail a mutation.
    Appends are O(1); no rewrite of prior lineage.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    line = json.dumps(
        {
            key: report[key]
            for key in (
                "epoch",
                "digest",
                "parent_digest",
                "n_groups",
                "added",
                "removed",
                "changed",
            )
            if key in report
        }
    )
    with open(directory / "epochs.json", "a", encoding="utf-8") as handle:
        handle.write(line + "\n")


def load_epoch_lineage(directory: str | Path) -> list[dict]:
    """The recorded epoch lineage, oldest first (empty when none).

    Torn tail lines (a crash mid-append) are skipped, matching the
    file's advisory contract.
    """
    path = Path(directory) / "epochs.json"
    if not path.exists():
        return []
    records: list[dict] = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            continue
    return records
