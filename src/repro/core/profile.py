"""Explorer profile: anticipating the next exploration step.

§I: *"VEXUS builds an explorer profile and uses it to anticipate follow-up
steps and select groups on-the-fly depending on the explorer's evolving
needs."*

The profile complements the feedback vector: where feedback captures *what*
the explorer rewarded, the profile captures *how* the trajectory evolves —
which description tokens keep recurring, and how recently.  The session
uses it to pre-rank the candidate pool before the greedy selector runs, so
anticipated directions are inside the pool even when the pool is capped.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.group import Group

#: Per-step decay of old observations: recent clicks matter more.
RECENCY_DECAY = 0.8


@dataclass
class ExplorerProfile:
    """Recency-weighted token statistics over the visited trajectory."""

    token_weight: dict[str, float] = field(default_factory=dict)
    visited_gids: list[int] = field(default_factory=list)
    steps_observed: int = 0

    def observe(self, group: Group) -> None:
        """Record one clicked group."""
        for token in self.token_weight:
            self.token_weight[token] *= RECENCY_DECAY
        share = 1.0 / max(len(group.description), 1)
        for token in group.description:
            self.token_weight[token] = self.token_weight.get(token, 0.0) + share
        self.visited_gids.append(group.gid)
        self.steps_observed += 1

    def interest(self, group: Group) -> float:
        """Predicted affinity of a candidate group with the trajectory."""
        if not group.description:
            return 0.0
        return sum(
            self.token_weight.get(token, 0.0) for token in group.description
        ) / len(group.description)

    def rank(self, candidates: Sequence[Group]) -> list[Group]:
        """Stable re-ranking: interest descending, original order as tiebreak.

        Stability matters — when the profile knows nothing (cold start) the
        pool must keep the inverted index's similarity order.
        """
        indexed = list(enumerate(candidates))
        indexed.sort(key=lambda pair: (-self.interest(pair[1]), pair[0]))
        return [group for _, group in indexed]

    def top_tokens(self, count: int = 8) -> list[tuple[str, float]]:
        entries = sorted(
            self.token_weight.items(), key=lambda item: (-item[1], item[0])
        )
        return entries[:count]

    def reset(self) -> None:
        self.token_weight.clear()
        self.visited_gids.clear()
        self.steps_observed = 0
