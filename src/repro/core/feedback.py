"""Explorer feedback learning.

§II-B *Feedback Learning*: feedback is *"a probability vector over all
users and demographic values"*.  Choosing a group is positive feedback: the
scores of the group's members and of its description tokens increase, the
vector is renormalised to sum to 1, and everything not rewarded decays
toward zero implicitly.  The CONTEXT module shows the vector; deleting an
entry *unlearns* it.

Keys are ``("user", user_index)`` and ``("token", description_token)``.
The invariant — non-negative entries summing to exactly 1 whenever the
vector is non-empty — is property-tested under random learn/unlearn
sequences.
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Optional

import numpy as np

FeedbackKey = tuple[str, object]

#: Entries below this mass are dropped at normalisation time; they are the
#: "scores tending to zero" of §II-B and keeping them would let the vector
#: grow without bound over a long session.
PRUNE_EPSILON = 1e-9


#: How much one click shifts the vector toward the clicked group.  The
#: update is exponential-decay (s <- (1-eta) * s + eta * d): repeated
#: rewards compound, unrewarded keys shrink geometrically toward zero —
#: exactly the "gradually end up with a lower score tending to zero"
#: behaviour §II-B describes — and the sum-to-1 invariant holds by
#: construction.
LEARNING_RATE = 0.4


class FeedbackVector:
    """Normalised preference scores over users and description tokens."""

    def __init__(self, learning_rate: float = LEARNING_RATE) -> None:
        if not 0 < learning_rate <= 1:
            raise ValueError("learning_rate must be in (0, 1]")
        self.learning_rate = learning_rate
        self._scores: dict[FeedbackKey, float] = {}
        self._version = 0
        self._state_key: Optional[frozenset] = None

    def _touch(self) -> None:
        """Invalidate derived state after any mutation."""
        self._version += 1
        self._state_key = None

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by learn/unlearn/reset/restore)."""
        return self._version

    def state_key(self) -> Optional[frozenset]:
        """Content-equality key of the current vector (``None`` when empty).

        Two vectors holding the same scores — e.g. the same click replayed
        after a HISTORY backtrack restored the snapshot — produce *equal*
        keys, so :class:`repro.core.poolcache.PoolStatsCache` can key its
        feedback-dependent layers on actual content rather than object
        identity.  The frozenset is cached until the next mutation.
        """
        if not self._scores:
            return None
        if self._state_key is None:
            self._state_key = frozenset(self._scores.items())
        return self._state_key

    # ------------------------------------------------------------------
    # learning
    # ------------------------------------------------------------------

    def learn_group(
        self,
        members: np.ndarray,
        description: Iterable[str],
        reward: float = 1.0,
    ) -> None:
        """Positive feedback for choosing a group (§II-B).

        The clicked group defines a reward distribution ``d`` (half its
        mass uniformly over members, half uniformly over description
        tokens); the vector moves toward it by ``learning_rate * reward``.
        """
        if reward <= 0:
            raise ValueError("reward must be positive")
        description = list(description)
        distribution: dict[FeedbackKey, float] = {}
        member_share = 0.5 if description else 1.0
        token_share = 1.0 - member_share
        if len(members):
            per_member = member_share / len(members)
            for user in members.tolist():
                distribution[("user", int(user))] = per_member
        elif description:
            token_share = 1.0  # degenerate group: all mass on tokens
        if description:
            per_token = token_share / len(description)
            for token in description:
                distribution[("token", token)] = per_token
        if not distribution:
            return
        total = sum(distribution.values())
        distribution = {key: value / total for key, value in distribution.items()}

        self._touch()
        if not self._scores:
            self._scores = distribution
        else:
            eta = min(1.0, self.learning_rate * reward)
            for key in self._scores:
                self._scores[key] *= 1.0 - eta
            for key, value in distribution.items():
                self._scores[key] = self._scores.get(key, 0.0) + eta * value
        self._normalise()

    def unlearn(self, key: FeedbackKey) -> bool:
        """Delete one entry (the CONTEXT deletion gesture); True if present."""
        if key in self._scores:
            self._touch()
            del self._scores[key]
            self._normalise()
            return True
        return False

    def unlearn_token(self, token: str) -> bool:
        return self.unlearn(("token", token))

    def unlearn_user(self, user: int) -> bool:
        return self.unlearn(("user", int(user)))

    def reset(self) -> None:
        self._touch()
        self._scores.clear()

    def _normalise(self) -> None:
        total = sum(self._scores.values())
        if total <= 0.0:
            self._scores.clear()
            return
        pruned = {
            key: value / total
            for key, value in self._scores.items()
            if value / total > PRUNE_EPSILON
        }
        # Prune, then renormalise the survivors so the invariant holds exactly.
        remaining = sum(pruned.values())
        self._scores = {key: value / remaining for key, value in pruned.items()}

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def score(self, key: FeedbackKey) -> float:
        return self._scores.get(key, 0.0)

    def user_score(self, user: int) -> float:
        return self._scores.get(("user", int(user)), 0.0)

    def token_score(self, token: str) -> float:
        return self._scores.get(("token", token), 0.0)

    def total(self) -> float:
        return sum(self._scores.values())

    def __len__(self) -> int:
        return len(self._scores)

    def __contains__(self, key: FeedbackKey) -> bool:
        return key in self._scores

    def top(self, count: int = 10) -> list[tuple[FeedbackKey, float]]:
        """Highest-scored entries (what CONTEXT displays)."""
        entries = sorted(
            self._scores.items(), key=lambda item: (-item[1], repr(item[0]))
        )
        return entries[:count]

    def group_weight(
        self, members: np.ndarray, description: Iterable[str]
    ) -> float:
        """How aligned a group is with the feedback so far (§II-B).

        Sum of the group's member scores and description-token scores; in
        [0, 1] by the normalisation invariant (at most the whole vector).
        """
        weight = sum(self._scores.get(("user", int(user)), 0.0) for user in members.tolist())
        weight += sum(
            self._scores.get(("token", token), 0.0) for token in description
        )
        return weight

    def user_weights(self, n_users: int, floor: float = 0.0) -> np.ndarray:
        """Dense per-user weight vector (for weighted similarity/coverage)."""
        weights = np.full(n_users, floor, dtype=np.float64)
        for (kind, key), value in self._scores.items():
            if kind == "user":
                user = int(key)  # type: ignore[arg-type]
                if 0 <= user < n_users:
                    weights[user] += value
        return weights

    def snapshot(self) -> dict[FeedbackKey, float]:
        """Copy of the raw scores (HISTORY stores these for backtracking)."""
        return dict(self._scores)

    def restore(self, snapshot: dict[FeedbackKey, float]) -> None:
        self._touch()
        self._scores = dict(snapshot)

    def __repr__(self) -> str:
        return f"FeedbackVector({len(self._scores)} entries, mass={self.total():.3f})"
