"""The VEXUS exploration loop.

§II wires five modules around an explorer: GROUPVIZ shows k groups, a click
is implicit positive feedback (CONTEXT), the next k similar-but-diverse
groups are computed within the latency budget, HISTORY records each step
with backtracking, MEMO collects the analysis goal.  This module owns that
loop; visualization (:mod:`repro.viz`) and simulated explorers
(:mod:`repro.agents`) plug into it from outside.

Interaction costs, matching §II-B: ``click`` = one materialized index
lookup + the time-budgeted greedy (the only non-O(1) part, bounded by its
budget); ``backtrack``, ``bookmark`` and CONTEXT edits are O(1) in the
group space size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.context import ContextView
from repro.core.feedback import FeedbackVector
from repro.core.group import Group, GroupSpace
from repro.core.history import History, Step
from repro.core.memo import Memo
from repro.core.poolcache import PoolStatsCache
from repro.core.profile import ExplorerProfile
from repro.core.runtime import GroupSpaceRuntime
from repro.core.selection import SelectionConfig, SelectionResult, select_k
from repro.index.inverted import SimilarityIndex
from repro.obs.trace import span


@dataclass
class SessionConfig:
    """Session-level knobs (defaults follow the paper's choices)."""

    k: int = 5  # ≤ 7 (Miller's law, §II-A)
    time_budget_ms: Optional[float] = 100.0  # continuity-preserving latency
    similarity_floor: float = 0.01  # lower bound on similarity (§II-B)
    max_pool: int = 200
    materialize_fraction: float = 0.10
    reward: float = 1.0
    use_profile: bool = True
    #: §II-B: "To incorporate feedback in the greedy optimizer behind the
    #: group visualizer, we consider a weighted similarity function."  When
    #: on, the candidate pool is re-ranked by feedback-weighted Jaccard to
    #: the clicked group before selection.
    weighted_similarity: bool = False
    #: Selection engine behind every click: the vectorized lazy-greedy
    #: engine ("celf", default) or the brute-force parity oracle
    #: ("reference") — see :mod:`repro.core.selection`.
    engine: str = "celf"
    #: Adaptive budget governor: spend converged-early budget slack on
    #: escalation tiers (restart fills, wider pools, deeper swaps) within
    #: the same deadline — see :mod:`repro.core.selection`.
    governor: bool = False
    #: Reuse pool statistics across this session's clicks via a
    #: :class:`repro.core.poolcache.PoolStatsCache` (transparent: cached
    #: and uncached sessions show identical displays).
    cache_pools: bool = True
    #: Structure entries the session cache retains (LRU-bounded).
    cache_capacity: int = 32
    #: Explicit selection config; built from the session-level knobs above
    #: in ``__post_init__`` when left ``None`` (and guaranteed non-None
    #: afterwards).
    selection: Optional[SelectionConfig] = None

    def __post_init__(self) -> None:
        # The paper keeps k <= 7 (limited options, P1); the hard ceiling here
        # is looser so experiment C7 can sweep past the knee and show *why*
        # 7 is the right default.
        if self.k < 1 or self.k > 15:
            raise ValueError("k must be in 1..15 (P1 wants <= 7)")
        if self.cache_capacity < 1:
            raise ValueError("cache_capacity must be >= 1")
        if self.selection is None:
            self.selection = SelectionConfig(
                k=self.k,
                time_budget_ms=self.time_budget_ms,
                max_candidates=self.max_pool,
                engine=self.engine,
                governor=self.governor,
            )
        else:
            if self.selection.engine != self.engine:
                # An explicit SelectionConfig is authoritative; a
                # *non-default* SessionConfig.engine disagreeing with it is
                # a caller error (e.g. a parity experiment that would
                # silently measure one engine against itself).
                if self.engine != "celf":
                    raise ValueError(
                        f"engine={self.engine!r} conflicts with "
                        f"selection.engine={self.selection.engine!r}; set one"
                    )
                self.engine = self.selection.engine
            if self.governor and not self.selection.governor:
                # Same authority rule for the governor: an explicit
                # selection config that disables it must not be silently
                # overridden by the session-level convenience flag.
                raise ValueError(
                    "governor=True conflicts with selection.governor=False; "
                    "set one"
                )
            self.governor = self.selection.governor


class ExplorationSession:
    """One explorer's interactive walk over a group space.

    Every session is served by a
    :class:`~repro.core.runtime.GroupSpaceRuntime` that owns the shared
    artifacts (similarity index, pooled membership CSR, cross-session
    cache).  Passing ``runtime`` explicitly — or creating the session via
    :meth:`GroupSpaceRuntime.create_session` / a
    :class:`~repro.core.runtime.SessionManager` — shares those artifacts
    with every other session on the runtime; the legacy
    ``ExplorationSession(space, index, config)`` form keeps working by
    wrapping its arguments in a private runtime (no cross-session layer,
    identical behaviour to the pre-runtime stack).
    """

    def __init__(
        self,
        space: Optional[GroupSpace] = None,
        index: Optional[SimilarityIndex] = None,
        config: Optional[SessionConfig] = None,
        runtime: Optional[GroupSpaceRuntime] = None,
    ) -> None:
        self.config = config or SessionConfig()
        if runtime is None:
            if space is None:
                raise ValueError("ExplorationSession needs a space or a runtime")
            runtime = GroupSpaceRuntime(
                space,
                index=index,
                materialize_fraction=self.config.materialize_fraction,
                share_cache=False,
            )
        else:
            current = runtime.current_epoch()
            if space is not None and space is not current.space:
                raise ValueError(
                    "space and runtime disagree; pass one or the other"
                )
            if index is not None and index is not current.index:
                raise ValueError(
                    "index and runtime disagree; the runtime owns the index"
                )
        self.runtime = runtime
        # One atomic epoch read: reading ``runtime.space`` and
        # ``runtime.index`` as two separate property accesses could
        # straddle an ``apply_deltas`` swap and pair a new space with an
        # old index.  The session pins this epoch for its whole life —
        # in-flight clicks keep reading a consistent generation while
        # mutations publish new epochs around it.
        self.epoch = runtime.current_epoch()
        self.space = self.epoch.space
        self.index = self.epoch.index
        self.feedback = FeedbackVector()
        self.history = History()
        self.memo = Memo()
        self.profile = ExplorerProfile()
        self.context = ContextView(self.feedback, self.space.dataset)
        self._displayed: list[Group] = []
        self.last_selection: Optional[SelectionResult] = None
        # Session-scoped reuse of pool statistics across clicks: keyed on
        # content fingerprints (transparent), seeded with the runtime's
        # membership matrix so cold pools slice rows instead of
        # rebuilding, and wired to the runtime's cross-session layer
        # (when it has one) so other sessions' precomputation is
        # consulted before computing.  Feedback/result layers stay
        # private to this session.
        self.pool_cache: Optional[PoolStatsCache] = (
            runtime.session_cache(
                capacity=self.config.cache_capacity, index=self.index
            )
            if self.config.cache_pools
            else None
        )

    def rebind_epoch(self, epoch) -> None:
        """Re-pin a *fresh* session onto a retained older epoch.

        The resume hook: a checkpoint saved under epoch N must replay
        against epoch N's space and index even when the runtime has
        since moved on.  Only a session with no history may rebind —
        state already accumulated against one generation cannot be
        reinterpreted against another.
        """
        if len(self.history) or self._displayed or len(self.feedback):
            raise ValueError("rebind_epoch requires a fresh session")
        self.epoch = epoch
        self.space = epoch.space
        self.index = epoch.index
        self.context = ContextView(self.feedback, self.space.dataset)
        if self.pool_cache is not None:
            self.pool_cache = self.runtime.session_cache(
                capacity=self.config.cache_capacity, index=self.index
            )

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------

    def start(self, seed_gids: Optional[list[int]] = None) -> list[Group]:
        """Show the initial k groups.

        With no seeds, the pool is the largest groups (a summary of the
        dataset); with seeds (e.g. last year's PC in Scenario 1) the pool is
        the seeds plus their index neighborhoods.
        """
        with span("pool_build"):
            if seed_gids is None:
                pool = self.space.largest(self.config.max_pool)
            else:
                pool_ids: list[int] = []
                for gid in seed_gids:
                    if gid not in pool_ids:
                        pool_ids.append(gid)
                    for neighbor in self.index.neighbors(
                        gid, self.config.max_pool
                    ):
                        if neighbor.group not in pool_ids:
                            pool_ids.append(neighbor.group)
                pool = [
                    self.space[gid] for gid in pool_ids[: self.config.max_pool]
                ]
        relevant = np.arange(self.space.dataset.n_users, dtype=np.int64)
        result = select_k(
            pool, relevant, self.feedback, self.config.selection,
            cache=self.pool_cache,
        )
        self._displayed = result.groups
        self.last_selection = result
        self.history.record(None, result.gids(), self.feedback.snapshot())
        return list(self._displayed)

    def click(self, gid: int) -> list[Group]:
        """Select a displayed group; learn feedback; show the next k.

        The next candidates come from the clicked group's inverted index
        prefix, filtered by the similarity lower bound, profile-reranked,
        then greedily optimized for diversity + coverage of the clicked
        group's members within the time budget (§II-B).
        """
        group = self.space[gid]
        self.feedback.learn_group(
            group.members, group.description, reward=self.config.reward
        )
        self.profile.observe(group)

        with span("pool_build"):
            neighbors = self.index.neighbors(gid, self.config.max_pool)
            pool = [
                self.space[neighbor.group]
                for neighbor in neighbors
                if neighbor.similarity >= self.config.similarity_floor
            ]
            if self.config.weighted_similarity and len(self.feedback):
                pool = self._rerank_weighted(group, pool)
            prior = None
            prior_key = None
            if self.config.use_profile and self.profile.steps_observed > 1:
                pool = self.profile.rank(pool)
                prior = self.profile.interest
                prior_key = self._profile_key()
            if not pool:
                # Dead end in the graph: stay on the clicked group's display.
                pool = [group]
        result = select_k(
            pool, group.members, self.feedback, self.config.selection,
            prior=prior, cache=self.pool_cache, prior_key=prior_key,
        )
        self._displayed = result.groups
        self.last_selection = result
        self.history.record(gid, result.gids(), self.feedback.snapshot())
        return list(self._displayed)

    def _profile_key(self) -> tuple:
        """Hashable content identity of the profile-interest prior.

        Lets the pool cache key its feedback/result layers on what the
        prior would actually *score* rather than skipping memoization
        whenever a prior callable is present.
        """
        return (
            self.profile.steps_observed,
            tuple(sorted(self.profile.token_weight.items())),
        )

    def _rerank_weighted(self, clicked: Group, pool: list[Group]) -> list[Group]:
        """Re-rank the pool by feedback-weighted Jaccard to the clicked group.

        Users the explorer rewarded count more in the overlap, so groups in
        line with the feedback float up (§II-B's weighted similarity).
        """
        from repro.core.similarity import weighted_jaccard

        weights = self.feedback.user_weights(self.space.dataset.n_users, floor=1e-6)
        scored = sorted(
            enumerate(pool),
            key=lambda pair: (
                -weighted_jaccard(clicked.members, pair[1].members, weights),
                pair[0],
            ),
        )
        return [group for _, group in scored]

    def backtrack(self, step_id: int) -> list[Group]:
        """Jump to any HISTORY step, restoring its exact display + feedback."""
        step = self.history.backtrack(step_id)
        self.feedback.restore(step.feedback_snapshot)
        self._displayed = [self.space[gid] for gid in step.shown_gids]
        return list(self._displayed)

    # ------------------------------------------------------------------
    # O(1) side interactions
    # ------------------------------------------------------------------

    def displayed(self) -> list[Group]:
        return list(self._displayed)

    def displayed_gids(self) -> list[int]:
        return [group.gid for group in self._displayed]

    def bookmark_group(self, gid: int, note: str = "") -> None:
        self.memo.bookmark_group(gid, note)

    def bookmark_user(self, user: int, note: str = "") -> None:
        self.memo.bookmark_user(user, note)

    def drill_down(self, gid: int) -> np.ndarray:
        """Member user indices of a group (the STATS/Focus-view input).

        Drilling down signals the explorer is studying the current
        neighborhood, so the session keeps its pool statistics hot in the
        cache — the likely next click then reuses them.
        """
        if self.pool_cache is not None:
            self.pool_cache.touch_last()
        return self.space[gid].members.copy()

    def current_step(self) -> Optional[Step]:
        return self.history.current

    def __repr__(self) -> str:
        return (
            f"ExplorationSession({len(self.space)} groups, "
            f"{len(self.history)} steps, showing {len(self._displayed)})"
        )
