"""User featurisation: numeric vectors for BIRCH and the Focus view.

One-hot encoded demographics plus activity statistics (action count,
log-count, mean value).  Used by the BIRCH discovery backend and as the
input space of the LDA 2-D projection (§II-B Granular Analysis).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import UserDataset
from repro.data.schema import MISSING


@dataclass(frozen=True)
class FeatureSpace:
    """A feature matrix plus the meaning of each column."""

    matrix: np.ndarray  # (n_users, n_features) float64
    column_names: tuple[str, ...]

    @property
    def n_features(self) -> int:
        return self.matrix.shape[1]


#: Datasets with at most this many items (e.g. DB-AUTHORS' 12 venues) get a
#: per-item action-value column each — the "publication profile".
ITEM_PROFILE_LIMIT = 50


def user_feature_matrix(
    dataset: UserDataset,
    include_missing: bool = False,
    standardize_activity: bool = True,
    item_profile_limit: int = ITEM_PROFILE_LIMIT,
) -> FeatureSpace:
    """Featurise every user.

    Demographic attributes become one-hot blocks (the :data:`MISSING` bucket
    is skipped unless ``include_missing``); three activity columns capture
    the action side: count, log1p(count), mean action value (0 for inactive
    users).  When the item universe is small (<= ``item_profile_limit``,
    e.g. venues), one z-scored column per item records the user's total
    action value there — the profile LDA separates the Focus view by.
    Activity columns are z-scored by default so one-hot and numeric scales
    are comparable — BIRCH thresholds assume that.
    """
    blocks: list[np.ndarray] = []
    names: list[str] = []
    n = dataset.n_users

    for attribute in dataset.attributes:
        column = dataset.column(attribute)
        for code, value in enumerate(column.vocab.labels()):
            if value == MISSING and not include_missing:
                continue
            blocks.append((column.codes == code).astype(np.float64)[:, None])
            names.append(f"{attribute}={value}")

    if 0 < dataset.n_items <= item_profile_limit and dataset.n_actions:
        profile = np.zeros((n, dataset.n_items))
        np.add.at(
            profile,
            (dataset.action_user, dataset.action_item),
            dataset.action_value.astype(np.float64),
        )
        profile = np.log1p(profile)
        if standardize_activity:
            center = profile.mean(axis=0)
            scale = profile.std(axis=0)
            scale[scale == 0] = 1.0
            profile = (profile - center) / scale
        blocks.append(profile)
        names.extend(
            f"item:{dataset.items.label(item)}" for item in range(dataset.n_items)
        )

    activity = dataset.user_activity().astype(np.float64)
    means = np.zeros(n)
    for user in range(n):
        values = dataset.values_of_user(user)
        if len(values):
            means[user] = float(values.mean())
    activity_block = np.column_stack([activity, np.log1p(activity), means])
    if standardize_activity and n:
        center = activity_block.mean(axis=0)
        scale = activity_block.std(axis=0)
        scale[scale == 0] = 1.0
        activity_block = (activity_block - center) / scale
    blocks.append(activity_block)
    names.extend(["activity:count", "activity:log_count", "activity:mean_value"])

    matrix = np.hstack(blocks) if blocks else np.zeros((n, 0))
    return FeatureSpace(matrix=matrix, column_names=tuple(names))
