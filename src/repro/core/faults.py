"""Fault injection for the durability write path.

The journal's crash-safety claims ("a torn tail is discarded, a
corrupted record is refused, replay is bitwise-identical") are only as
good as the crashes they are tested against.  This module owns the
injection points the write path is instrumented with, so the recovery
suite can kill the process (or simulate the kill in-process) at every
interesting instant:

- ``journal.mid_append``  — half a frame reached the kernel (torn record)
- ``journal.pre_fsync``   — the frame was written but never synced
- ``journal.post_append`` — the frame is durable; the reply never left
- ``store.pre_replace``   — a snapshot staged + synced, not yet renamed

plus injectable ``fsync``/``write`` failures (ENOSPC and friends) for
the graceful-degradation tests, where the disk fails but the process
survives.

Two activation modes:

- **programmatic** — ``install(FaultPlan(...))`` / ``clear()``; with
  ``crash_mode="raise"`` a crash point raises :class:`SimulatedCrash`
  (a ``BaseException``, so no service-level ``except Exception`` can
  swallow it) — fast in-process tests.
- **environment** — ``REPRO_FAULTS="crash=journal.pre_fsync@3"`` in a
  subprocess's env arms a SIGKILL at the 3rd arrival of that crash
  point: a genuinely abrupt death for the end-to-end recovery matrix.

Everything here is a no-op (one ``None`` check per call site) when no
plan is installed, so production paths pay nothing measurable.
"""

from __future__ import annotations

import errno
import os
import signal
from dataclasses import dataclass, field
from typing import Optional

#: Environment variable a subprocess driver reads its plan from.
#: Format: ``crash=<point>`` or ``crash=<point>@<n>`` (fire on the n-th
#: arrival, 1-based).  Env-armed crashes always SIGKILL.
ENV_VAR = "REPRO_FAULTS"

_ERRNOS = {
    "ENOSPC": errno.ENOSPC,
    "EIO": errno.EIO,
}


class SimulatedCrash(BaseException):
    """In-process stand-in for a hard process death at a crash point.

    Subclasses ``BaseException`` deliberately: the service front's
    blanket ``except Exception`` (which turns bugs into 500s) must not
    be able to "survive" a crash the test asked for.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"simulated crash at {point!r}")
        self.point = point


@dataclass
class FaultPlan:
    """One armed fault: a crash point and/or failing syscalls.

    ``crash_point`` + ``crash_at`` arm one crash at the n-th arrival of
    that named point (then disarm — recovery runs of the same process
    image must not re-crash).  ``fsync_errors`` / ``write_errors`` make
    the next N guarded ``fsync``/``write`` calls raise ``OSError`` with
    the configured errno, then heal — so tests can exercise both the
    degradation and the recovery half of the story.
    """

    crash_point: Optional[str] = None
    crash_at: int = 1
    crash_mode: str = "kill"  # "kill" -> SIGKILL; "raise" -> SimulatedCrash
    fsync_errors: int = 0
    fsync_errno: int = errno.ENOSPC
    write_errors: int = 0
    write_errno: int = errno.ENOSPC
    _hits: dict = field(default_factory=dict, repr=False)


_plan: Optional[FaultPlan] = None
_env_checked = False


def install(plan: FaultPlan) -> None:
    """Arm ``plan`` process-wide (tests pair this with :func:`clear`)."""
    global _plan
    _plan = plan


def clear() -> None:
    """Disarm everything (and forget any env-derived plan)."""
    global _plan, _env_checked
    _plan = None
    _env_checked = True


def active() -> Optional[FaultPlan]:
    """The armed plan, lazily loading one from ``REPRO_FAULTS`` once."""
    global _plan, _env_checked
    if _plan is None and not _env_checked:
        _env_checked = True
        spec = os.environ.get(ENV_VAR)
        if spec:
            _plan = _parse(spec)
    return _plan


def _parse(spec: str) -> FaultPlan:
    plan = FaultPlan()
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        key, _, value = clause.partition("=")
        if key == "crash":
            point, _, nth = value.partition("@")
            plan.crash_point = point
            plan.crash_at = int(nth) if nth else 1
            plan.crash_mode = "kill"
        elif key == "fsync_error":
            name, _, count = value.partition("@")
            plan.fsync_errno = _ERRNOS.get(name, errno.ENOSPC)
            plan.fsync_errors = int(count) if count else 1
        else:
            raise ValueError(f"unknown {ENV_VAR} clause {clause!r}")
    return plan


# -- crash points -----------------------------------------------------------


def check(point: str) -> bool:
    """True exactly when the armed crash fires at this arrival of ``point``.

    Split from :func:`crash` so a call site that must do work *between*
    deciding and dying (``journal.mid_append`` writes half a frame
    first) can ask, act, then call :func:`crash` itself.
    """
    plan = active()
    if plan is None or plan.crash_point != point:
        return False
    hits = plan._hits.get(point, 0) + 1
    plan._hits[point] = hits
    return hits == plan.crash_at


def crash(point: str) -> None:
    """Die (or simulate dying) right here."""
    plan = active()
    if plan is not None and plan.crash_mode == "raise":
        raise SimulatedCrash(point)
    os.kill(os.getpid(), signal.SIGKILL)


def crash_point(point: str) -> None:
    """The standard instrumentation call: fire if armed, else no-op."""
    if check(point):
        crash(point)


# -- failing syscalls -------------------------------------------------------


def fsync(fd: int) -> None:
    """``os.fsync`` with injectable failure."""
    plan = active()
    if plan is not None and plan.fsync_errors > 0:
        plan.fsync_errors -= 1
        raise OSError(plan.fsync_errno, os.strerror(plan.fsync_errno))
    os.fsync(fd)


def write(fd: int, data: bytes) -> int:
    """``os.write`` with injectable failure (the ENOSPC path)."""
    plan = active()
    if plan is not None and plan.write_errors > 0:
        plan.write_errors -= 1
        raise OSError(plan.write_errno, os.strerror(plan.write_errno))
    return os.write(fd, data)
