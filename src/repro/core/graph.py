"""The group graph G.

§II: *"Groups form a disconnected undirected graph G where an edge exists
between two groups if they are not disjoint.  Group exploration is a
navigation in that graph."*

Edges carry the Jaccard similarity of the member sets; construction uses
one sparse membership product, the same trick as the inverted index, so it
stays feasible for thousands of groups.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from scipy import sparse

from repro.core.group import GroupSpace


def build_group_graph(space: GroupSpace) -> nx.Graph:
    """Exact overlap graph over the group space.

    Nodes are gids (with ``size`` and ``label`` attributes); an edge with
    weight = Jaccard similarity joins every non-disjoint pair.
    """
    graph = nx.Graph()
    memberships = space.memberships()
    sizes = np.array([len(members) for members in memberships], dtype=np.float64)
    for group in space:
        graph.add_node(group.gid, size=group.size, label=group.label)
    if len(space) < 2:
        return graph

    n_users = max(space.dataset.n_users, 1)
    rows = np.concatenate(
        [np.full(len(members), gid) for gid, members in enumerate(memberships)]
    )
    columns = np.concatenate(memberships) if memberships else np.empty(0, dtype=np.int64)
    matrix = sparse.csr_matrix(
        (np.ones(len(rows), dtype=np.int64), (rows, columns)),
        shape=(len(space), n_users),
    )
    overlaps = sparse.triu(matrix @ matrix.T, k=1).tocoo()
    for left, right, intersection in zip(overlaps.row, overlaps.col, overlaps.data):
        union = sizes[left] + sizes[right] - intersection
        graph.add_edge(
            int(left), int(right), weight=float(intersection / union) if union else 0.0
        )
    return graph


def navigation_summary(graph: nx.Graph) -> dict[str, float]:
    """Connectivity stats benchmarks report (C6): how walkable is G?"""
    if graph.number_of_nodes() == 0:
        return {
            "nodes": 0,
            "edges": 0,
            "components": 0,
            "largest_component": 0,
            "mean_degree": 0.0,
        }
    components = list(nx.connected_components(graph))
    return {
        "nodes": graph.number_of_nodes(),
        "edges": graph.number_of_edges(),
        "components": len(components),
        "largest_component": max(len(component) for component in components),
        "mean_degree": 2.0 * graph.number_of_edges() / graph.number_of_nodes(),
    }
