"""Append-only per-session interaction journal with digest-chained records.

PR 4 made sessions durable by rewriting the whole JSON snapshot on every
click — O(session length) per interaction, which for the long analyst
walks of §II means the durable cost of click 200 is ~40x that of click
5.  This module is the event-sourced alternative (the ROADMAP's
"append-only session journal" item, and the idiom of the avrae
producer/consumer split it cites): one small fsync'd record per
interaction, snapshots demoted to periodic *compaction*.

Record frame (all integers big-endian)::

    +----------+---------------------+------------------+
    | length:4 | body: JSON, <length>| digest: sha256:32|
    +----------+---------------------+------------------+

    digest = sha256(prev_digest || length || body)

The digest chain starts from 32 zero bytes at the top of each file, so a
journal is self-verifying from its first byte: any truncation leaves an
*incomplete* final frame (a torn tail, discarded cleanly on recovery —
the write in flight when the power died), while any complete frame whose
digest does not close the chain is *corruption* and refused loudly with
:class:`JournalCorruptionError` — never replayed into a silently wrong
session.

Records carry interaction *results*, not inputs: selection under a time
budget is non-deterministic, so a click record stores the clicked gid,
the resulting display, and the governor rows the click published.
Replay applies the deterministic mutations (feedback learning, profile
observation, history recording) and installs the recorded results —
which is exactly what makes a replayed session bitwise-identical to the
uninterrupted one, the property the crash-point matrix in
``tests/recovery/`` asserts.

File lifecycle per session directory::

    session.json   last compacted snapshot (stamped with journal_seq)
    journal.log    genesis record + every interaction since the snapshot

:meth:`SessionJournal.compact` writes the snapshot *first*, then rotates
``journal.log`` to a fresh genesis-only file; a crash between the two
leaves stale records the snapshot already covers, which recovery skips
by sequence number (idempotent replay).
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import time
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from repro.core import faults
from repro.obs.trace import span

if TYPE_CHECKING:  # circular at runtime: sessions are replayed, not imported
    from repro.core.session import ExplorationSession

JOURNAL_NAME = "journal.log"
_JOURNAL_VERSION = 1
_CHAIN_SEED = b"\x00" * 32
_LENGTH = struct.Struct(">I")
_DIGEST_BYTES = 32
#: Sanity ceiling on one record body.  Real records are a few hundred
#: bytes; a length prefix beyond this is a corrupted length field (a
#: bit flip in the high bytes), reported as corruption rather than
#: letting a bogus length masquerade as a gigantic torn tail.
MAX_RECORD_BYTES = 8 * 1024 * 1024


class DurabilityError(RuntimeError):
    """A durable write failed; the interaction was rolled back, not lost.

    The manager raises this when a journal append (or a final
    compaction) fails: the in-memory session is restored to its
    pre-interaction state first, so the error genuinely means "not
    applied" and a client retry cannot double-apply.  The HTTP front
    maps it to ``503`` with a ``Retry-After`` of ``retry_after_s``.
    """

    def __init__(self, message: str, retry_after_s: float = 5.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JournalCorruptionError(ValueError):
    """A complete journal record failed digest-chain verification.

    Distinct from a torn tail (an incomplete final frame, the normal
    residue of a crash mid-append, discarded silently): a *complete*
    frame whose digest does not close the chain means bit rot or
    tampering, and replaying past it could resurrect a wrong session.
    Subclasses ``ValueError`` so the service front maps it to the same
    409 as every other stale/conflicting-state refusal.
    """

    def __init__(self, path: str | Path, offset: int, reason: str) -> None:
        super().__init__(
            f"journal {path} corrupted at byte {offset}: {reason}"
        )
        self.path = str(path)
        self.offset = offset
        self.reason = reason


class JournalBrokenError(RuntimeError):
    """Appends refused: a previous append failed mid-write.

    After a failed write/fsync the on-disk tail no longer provably
    matches the in-memory chain, so appending more records could fork
    the chain; the journal stays broken until a compaction rotates in
    a fresh file.
    """


def _encode_frame(prev_digest: bytes, body: bytes) -> tuple[bytes, bytes]:
    """One framed record and the digest that extends the chain."""
    prefix = _LENGTH.pack(len(body))
    digest = hashlib.sha256(prev_digest + prefix + body).digest()
    return prefix + body + digest, digest


def read_journal(path: str | Path) -> tuple[list[dict], int]:
    """Every verified record of a journal file, plus torn tail bytes.

    Walks the digest chain from the zero seed.  An incomplete final
    frame (fewer bytes than its length prefix promises) is a torn tail:
    the verified prefix is returned and the torn byte count reported.
    A *complete* frame that fails verification — wrong digest,
    implausible length, undecodable body — raises
    :class:`JournalCorruptionError`; truncation alone can never trigger
    it, because the digest sits at the end of its own frame.
    """
    path = Path(path)
    data = path.read_bytes()
    records: list[dict] = []
    prev = _CHAIN_SEED
    offset = 0
    while offset < len(data):
        if offset + _LENGTH.size > len(data):
            break  # torn: not even a full length prefix
        (length,) = _LENGTH.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            raise JournalCorruptionError(
                path, offset, f"record length {length} exceeds sanity bound"
            )
        end = offset + _LENGTH.size + length + _DIGEST_BYTES
        if end > len(data):
            break  # torn: the final frame never finished writing
        body = data[offset + _LENGTH.size : end - _DIGEST_BYTES]
        stored = data[end - _DIGEST_BYTES : end]
        expected = hashlib.sha256(
            prev + data[offset : offset + _LENGTH.size] + body
        ).digest()
        if stored != expected:
            raise JournalCorruptionError(
                path, offset, "digest chain mismatch (bit rot or tampering)"
            )
        try:
            record = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            # The digest closed, so the writer itself produced garbage —
            # still refused; a "verified" record must also be readable.
            raise JournalCorruptionError(
                path, offset, f"undecodable record body ({error})"
            )
        records.append(record)
        prev = stored
        offset = end
    return records, len(data) - offset


def _session_meta(session: "ExplorationSession") -> dict:
    """The genesis stamp: which space's session this journal belongs to.

    The digest (and the informative epoch number) come from the
    session's *pinned* epoch, not whatever the runtime currently serves:
    a session that kept clicking through a store mutation journals
    against the generation it is actually exploring, and recovery
    resolves that digest among the runtime's retained epochs.
    """
    return {
        "space": session.runtime.name,
        "dataset": session.space.dataset.name,
        "space_digest": session.epoch.digest(),
        "epoch": session.epoch.number,
    }


def _check_meta(
    genesis: dict, session: "ExplorationSession", path: Path
) -> None:
    """Refuse to replay a journal onto the wrong space (mirrors the
    snapshot loader's dataset/space/digest checks)."""
    if genesis.get("journal_version") != _JOURNAL_VERSION:
        raise ValueError(
            f"unsupported journal version {genesis.get('journal_version')}"
        )
    dataset = genesis.get("dataset")
    if dataset is not None and dataset != session.space.dataset.name:
        raise ValueError(
            f"journal {path} was written on dataset {dataset!r}, "
            f"got {session.space.dataset.name!r}"
        )
    space = genesis.get("space")
    live = session.runtime.name
    if space is not None and live is not None and space != live:
        raise ValueError(
            f"journal {path} belongs to space {space!r}; it cannot "
            f"replay onto space {live!r}"
        )
    digest = genesis.get("space_digest")
    if digest is not None and digest != session.epoch.digest():
        # Sessions pin one epoch for life, so a journal's genesis digest
        # always matches the snapshot digest the session was restored
        # from — by the time recovery reaches here the snapshot loader
        # has already rebound the session onto the matching retained
        # epoch.  A mismatch therefore means the generation is truly
        # gone (evicted beyond retention, or a process restart dropped
        # the in-memory epochs).
        epoch = genesis.get("epoch")
        stamp = f" (journaled at epoch {epoch})" if epoch is not None else ""
        raise ValueError(
            f"journal {path} is stale: it was written on a group space "
            f"whose membership digest was {digest[:12]}...{stamp}, but no "
            "retained epoch matches; the session cannot replay onto a "
            "mutated store"
        )


def replay_record(session: "ExplorationSession", record: dict) -> None:
    """Apply one verified interaction record to a restored session.

    Clicks re-run the deterministic half of
    :meth:`~repro.core.session.ExplorationSession.click` (feedback
    learning, profile observation, history recording) and install the
    *recorded* display and governor rows instead of re-running
    selection — the budgeted greedy is not deterministic, the journal
    is.  Backtracks restore from the recorded step exactly as the live
    verb does; drill-downs carry no durable state.
    """
    kind = record.get("kind")
    if kind == "click":
        space = session.space
        group = space[int(record["gid"])]
        session.feedback.learn_group(
            group.members, group.description, reward=session.config.reward
        )
        session.profile.observe(group)
        shown = [int(gid) for gid in record["shown"]]
        session.history.record(group.gid, shown, session.feedback.snapshot())
        session._displayed = [space[gid] for gid in shown]
        rows = record.get("governor")
        if rows and session.pool_cache is not None:
            from repro.core.store import _retuple

            session.pool_cache.import_governor_tiers(
                [
                    (structure_key, _retuple(config_key), int(tier))
                    for structure_key, config_key, tier in rows
                ]
            )
    elif kind == "backtrack":
        step = session.history.backtrack(int(record["step_id"]))
        session.feedback.restore(step.feedback_snapshot)
        session._displayed = [session.space[gid] for gid in step.shown_gids]
    elif kind == "drill_down":
        pass  # a read; recorded for the event stream, nothing to restore
    else:
        raise ValueError(f"unknown journal record kind {kind!r}")


class SessionJournal:
    """One session's append-only interaction log in its state directory.

    Construction binds to ``<directory>/journal.log`` without touching
    the disk.  :meth:`compact` writes the snapshot and rotates in a
    fresh genesis-only journal (also how a journal is *created*);
    :meth:`append` adds one fsync'd record in O(record size) — the O(1)
    durable click; :meth:`recover` replays the verified tail over a
    snapshot-restored session.  Callers serialize access per session
    (the manager's per-session lock), as with every other session layer.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self._fd: Optional[int] = None
        self._tail_digest = _CHAIN_SEED
        #: Sequence number of the last interaction record (monotone per
        #: session, 0 = freshly opened; genesis records carry no seq).
        self.seq = 0
        #: ``seq`` as of the last compacted snapshot.
        self.snapshot_seq = 0
        self.records_since_compaction = 0
        self.broken = False
        #: Wall-clock cost of each append (the perf harness's O(1)
        #: flatness gate reads this; bounded sessions keep it small).
        self.append_ms: list[float] = []

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None

    # -- writing ---------------------------------------------------------

    def append(self, kind: str, payload: dict, sync: bool = True) -> int:
        """Append one interaction record; returns its sequence number.

        The frame reaches the kernel in one write and is fsync'd before
        returning (``sync=False`` skips the fsync — used for
        drill-downs, which carry no durable state; ordering within the
        file descriptor still holds, and the next synced append flushes
        them too).  On any OS failure the journal marks itself broken:
        the on-disk tail is no longer provably the in-memory chain, so
        further appends are refused until :meth:`compact` rotates in a
        fresh file.
        """
        if self.broken:
            raise JournalBrokenError(
                f"journal {self.path} is broken after a failed append; "
                "compact to rotate in a fresh file"
            )
        if self._fd is None:
            raise JournalBrokenError(
                f"journal {self.path} is not open; compact() creates it"
            )
        started = time.perf_counter()
        seq = self.seq + 1
        body = json.dumps(
            {"kind": kind, "seq": seq, **payload}, separators=(",", ":")
        ).encode("utf-8")
        frame, digest = _encode_frame(self._tail_digest, body)
        try:
            if faults.check("journal.mid_append"):
                # A genuinely torn record: half the frame reaches the
                # kernel, then the process dies.
                os.write(self._fd, frame[: max(1, len(frame) // 2)])
                faults.crash("journal.mid_append")
            faults.write(self._fd, frame)
            faults.crash_point("journal.pre_fsync")
            if sync:
                with span("journal_fsync"):
                    faults.fsync(self._fd)
            faults.crash_point("journal.post_append")
        except OSError:
            self.broken = True
            raise
        self._tail_digest = digest
        self.seq = seq
        self.records_since_compaction += 1
        self.append_ms.append((time.perf_counter() - started) * 1000.0)
        return seq

    def compact(self, session: "ExplorationSession") -> None:
        """Snapshot the session durably, then rotate the journal.

        The ordering is the crash-safety argument: the snapshot (stamped
        with the seq it covers) is durably replaced *first*, then the
        journal is swapped for a genesis-only file.  A crash between the
        two leaves the old journal full of records the snapshot already
        covers; recovery skips them by seq.  Also the repair path for a
        broken journal — the fresh file restarts the chain.
        """
        from repro.core.store import save_session_state

        save_session_state(session, self.directory, journal_seq=self.seq)
        self.snapshot_seq = self.seq
        self._rotate(_session_meta(session))

    def _rotate(self, meta: dict) -> None:
        """Swap in a fresh journal holding only a genesis record."""
        from repro.core.store import fsync_directory

        body = json.dumps(
            {
                "kind": "genesis",
                "journal_version": _JOURNAL_VERSION,
                "snapshot_seq": self.snapshot_seq,
                **meta,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        frame, digest = _encode_frame(_CHAIN_SEED, body)
        staging = self.directory / (JOURNAL_NAME + ".new")
        fd = os.open(staging, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            faults.write(fd, frame)
            faults.fsync(fd)
            os.replace(staging, self.path)
        except BaseException:
            os.close(fd)
            try:
                os.unlink(staging)
            except OSError:
                pass
            raise
        # The rename landed: ``fd`` now addresses the live journal file
        # (the inode survives its own rename), so the swap is committed
        # before the directory fsync can still fail.
        old = self._fd
        self._fd = fd
        self._tail_digest = digest
        self.records_since_compaction = 0
        self.broken = False
        if old is not None:
            os.close(old)
        fsync_directory(self.directory)

    # -- recovery --------------------------------------------------------

    def recover(self, session: "ExplorationSession") -> int:
        """Replay the verified journal tail over a snapshot-restored session.

        ``session`` must already hold the compacted snapshot
        (:func:`repro.core.store.load_session_state`).  Records the
        snapshot already covers (``seq <=`` its ``journal_seq`` stamp)
        are skipped, the rest replay in order; returns how many did.
        The caller then :meth:`compact`\\ s to fold the tail in and start
        a fresh journal.  A torn tail is discarded silently (the write
        in flight when the process died — at most one un-acknowledged
        interaction); a broken digest chain or sequence gap raises.
        """
        from repro.core.store import load_session_journal_seq

        base_seq = load_session_journal_seq(self.directory)
        self.seq = base_seq
        self.snapshot_seq = base_seq
        if not self.path.exists():
            return 0  # legacy snapshot-only state: nothing to replay
        records, _torn = read_journal(self.path)
        if not records:
            return 0  # fully torn first frame: discard, snapshot stands
        genesis = records[0]
        if genesis.get("kind") != "genesis":
            raise JournalCorruptionError(
                self.path, 0, "first record is not a genesis record"
            )
        _check_meta(genesis, session, self.path)
        expected = int(genesis.get("snapshot_seq") or 0)
        replayed = 0
        for record in records[1:]:
            seq = int(record.get("seq", -1))
            if seq != expected + 1:
                raise JournalCorruptionError(
                    self.path,
                    0,
                    f"sequence gap: expected {expected + 1}, found {seq}",
                )
            expected = seq
            if seq <= base_seq:
                continue  # the compacted snapshot already covers it
            replay_record(session, record)
            self.seq = seq
            replayed += 1
        return replayed

    def __repr__(self) -> str:
        state = "broken" if self.broken else "open" if self._fd else "unbound"
        return (
            f"SessionJournal({self.path}, seq={self.seq}, "
            f"snapshot_seq={self.snapshot_seq}, {state})"
        )
