"""Anytime greedy selection of k diverse, covering groups.

§II-B: *"We consider diversity and coverage as quality objectives ... We
use a best-effort greedy approach ... to return a local diverse and
covering set of k groups with a lower-bound on similarity ... we set a time
limit for the greedy process.  The higher this limit, the more optimized
the set of groups."*

The selector is *anytime*: any budget returns k groups (P1), and more
budget monotonically refines them (P2/P3):

1. **floor fill** — the top-k pool entries (pool order is the inverted
   index's similarity order), so even a ~0 budget shows something sensible;
2. **greedy phase** — repeatedly add the candidate with the best marginal
   gain on the blended objective;
3. **swap phase** — local search exchanging a selected group for an
   outsider while the clock allows.

Objectives (all in [0, 1]):

- ``diversity(S)`` = 1 − mean pairwise Jaccard of member sets;
- ``coverage(S)``  = feedback-weighted fraction of the *relevant* users
  (the clicked group's members) appearing in at least one selected group;
- ``affinity(S)``  = mean feedback weight of the selected groups (the
  §II-B weighted-similarity bias).

Two engines implement the same phases on the same objective:

**``engine="celf"`` (default)** — the vectorized incremental engine.  The
quality a fixed budget buys is bounded by how many objective evaluations
the greedy can afford, so the hot path never rebuilds state per trial:

- the pool×pool Jaccard matrix is pooled through one sparse membership
  matrix (:func:`repro.core.similarity.membership_matrix`, the same
  product the inverted index builds from) and materialized lazily one
  column per selected group, so pairwise diversity becomes running row
  sums instead of per-pair set intersections;
- a pool×relevant CSR coverage matrix makes the marginal coverage of
  every candidate one sparse mat-vec against the uncovered-weight vector,
  instead of a boolean mask rebuild per trial;
- the greedy phase is CELF-style lazy evaluation (Leskovec et al. 2007):
  candidates are ranked by a stale upper bound — exact non-coverage terms
  plus the last known coverage marginal, admissible because weighted
  coverage is monotone submodular so marginals only shrink as the
  selection grows — and only heap-top candidates are re-evaluated until
  the best exact score dominates the next bound;
- the swap phase is delta-scored: one vectorized pass scores every
  (position, candidate) exchange from maintained running sums (pair-sum,
  per-position cover counts, feedback sum, attribute-union masks) rather
  than re-scoring each trial set from scratch.

**``engine="reference"``** — the retained brute-force implementation
(per-pair Jaccard cache, full mask rebuild per score call).  It is the
parity oracle: on untimed runs both engines return the same groups and
scores (``tests/test_selection_parity.py``), and C2-style experiments can
quantify how many more evaluations the vectorized engine affords per
unit budget.

Two orthogonal accelerators sit on top of the engines:

**Session-scoped pool cache** — pass a
:class:`repro.core.poolcache.PoolStatsCache` as ``select_k(...,
cache=...)`` and the feedback-independent per-pool precomputation
(membership CSR slices, coverage incidence, lazily materialized Jaccard
columns), the feedback-dependent weight arrays, and — for a fully
identical call — the complete result are memoized under content
fingerprints and reused across clicks.  The cache is transparent: cached
and uncached runs return identical displays and scores (the four-way
parity suite covers reference / celf / cached-cold / cached-warm).

**Adaptive budget governor** (``SelectionConfig.governor``, celf only) —
when the greedy + swap phases converge with at least
``governor_slack_fraction`` of the deadline to spare, the engine
escalates through up to three tiers *within the same deadline*, keeping
the incumbent display unless a tier strictly improves the objective:

- **tier 1 — multi-restart floor fills**: the swap local search is
  re-run from up to ``governor_restarts`` alternative floor-fill windows
  of the pool, escaping the greedy's basin;
- **tier 2 — wider candidate pool**: the full greedy + swap pipeline is
  re-run over ``governor_pool_factor`` × ``max_candidates`` candidates
  when the caller's pool was truncated;
- **tier 3 — deeper swap neighborhood**: the best ``governor_swap_depth``
  two-exchange branches (a plateau/downhill swap followed by re-converged
  local search) are explored from the incumbent.

``SelectionResult.governor_tier`` records the highest tier a call
entered and ``tier_scores`` the (monotonically non-decreasing) best
objective after each tier.  ``engine="reference"`` refuses governor
settings outright — the oracle must never silently diverge from what it
is an oracle for.

With a cache attached, tier outcomes are persisted per (pool, config) in
the cache's governor layer: a *budgeted* governed re-click on the same
pool resumes escalation at the last tier reached instead of re-running
tiers that already converged there (``SelectionResult.governor_resumed_tier``
records the resume).  Untimed runs never resume — they are the
deterministic parity oracles.

When the session cache is wired to a
:class:`repro.core.runtime.SharedPairCache` (multi-session serving), the
structure and Jaccard-pair layers are additionally warmed by *other*
sessions over the same group space; feedback, result and governor layers
stay session-private.
"""

from __future__ import annotations

import dataclasses
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Hashable, Optional

import numpy as np

from repro.core.feedback import FeedbackVector
from repro.core.group import Group
from repro.obs.trace import traced
from repro.core.poolcache import (
    PoolStatsCache,
    _attribute_of,
    _PoolStructure,
    pool_fingerprint,
    relevant_fingerprint,
)
from repro.core.similarity import jaccard

#: Engines selectable via :attr:`SelectionConfig.engine`.
ENGINES = ("celf", "reference")

#: Minimum improvement for a swap to be applied (both engines).
_SWAP_EPSILON = 1e-12

#: Slack on the CELF prune: stale bounds come from a sparse mat-vec while
#: exact re-evaluations sum the same weights with numpy's pairwise
#: accumulation, so mathematically-equal values can differ by a few ulps.
#: Pruning only when a bound is clearly below the best exact score keeps
#: the lazy greedy's argmax identical to the reference scan.
_BOUND_SLACK = 1e-12


@dataclass
class SelectionConfig:
    """Knobs of the greedy selector.

    Defaults follow the paper: ``k = 5`` (≤ 7 per Miller's law), a 100 ms
    budget (continuity-preserving latency), and equal diversity/coverage
    weight with a milder feedback bias.  The governor knobs control the
    slack-escalation tiers documented in the module docstring; they only
    apply to the celf engine.
    """

    k: int = 5
    time_budget_ms: Optional[float] = 100.0
    diversity_weight: float = 0.5
    coverage_weight: float = 0.5
    feedback_weight: float = 0.25
    #: §II-B: "Optimizing diversity provides various analysis directions" —
    #: member-level Jaccard alone would call five slices of the same
    #: attribute maximally diverse; this term rewards displays whose
    #: descriptions span *different attributes* (different directions).
    description_diversity_weight: float = 0.3
    max_candidates: int = 200
    #: ``"celf"`` = vectorized lazy-greedy engine (default);
    #: ``"reference"`` = retained brute-force engine (parity oracle).
    engine: str = "celf"
    #: Escalate within the deadline when greedy + swaps converge early.
    governor: bool = False
    #: Highest escalation tier the governor may enter (1..3).
    governor_max_tier: int = 3
    #: Minimum fraction of the budget that must remain for escalation.
    governor_slack_fraction: float = 0.2
    #: Alternative floor-fill windows restarted in tier 1.
    governor_restarts: int = 3
    #: ``max_candidates`` multiplier for the tier-2 widened pool.
    governor_pool_factor: float = 2.0
    #: Two-exchange branches explored in tier 3.
    governor_swap_depth: int = 4

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.time_budget_ms is not None and self.time_budget_ms < 0:
            raise ValueError("time budget must be >= 0")
        if min(self.diversity_weight, self.coverage_weight, self.feedback_weight) < 0:
            raise ValueError("objective weights must be >= 0")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")
        if self.governor and self.engine == "reference":
            raise ValueError(
                'the budget governor escalates only the "celf" engine; '
                'engine="reference" is the parity oracle and ignoring the '
                "governor would silently diverge — disable the governor or "
                "switch engines"
            )
        if not 1 <= self.governor_max_tier <= 3:
            raise ValueError("governor_max_tier must be in 1..3")
        if not 0.0 <= self.governor_slack_fraction < 1.0:
            raise ValueError("governor_slack_fraction must be in [0, 1)")
        if self.governor_restarts < 1:
            raise ValueError("governor_restarts must be >= 1")
        if self.governor_pool_factor < 1.0:
            raise ValueError("governor_pool_factor must be >= 1")
        if self.governor_swap_depth < 1:
            raise ValueError("governor_swap_depth must be >= 1")


def _config_key(config: SelectionConfig) -> tuple:
    """Hashable identity of every result-affecting config field."""
    return dataclasses.astuple(config)


@dataclass
class SelectionResult:
    """Selected groups plus the quality numbers benchmarks report."""

    groups: list[Group]
    diversity: float
    coverage: float
    affinity: float
    score: float
    elapsed_ms: float
    evaluations: int
    pool_size: int
    phases_completed: int  # 1 = floor fill, 2 = greedy, 3 = swaps converged
    engine: str = "celf"
    #: Highest governor tier that actually explored an alternative
    #: (0 = none; a no-op tier block does not count).
    governor_tier: int = 0
    #: Best objective after the base run and after each attempted tier
    #: block (monotonically non-decreasing); empty when the governor
    #: never escalated.
    tier_scores: list[float] = field(default_factory=list)
    #: Tier the escalation *resumed* from thanks to the pool cache's
    #: governor layer (0 = cold start from tier 1).  Only budgeted,
    #: cached, governed re-clicks ever resume; the skipped lower tiers
    #: already converged on this pool on an earlier click.
    governor_resumed_tier: int = 0
    #: ``"off"`` (no cache), ``"miss"`` (built fresh), ``"warm"``
    #: (pool statistics reused), ``"hit"`` (memoized result returned).
    cache_state: str = "off"

    def gids(self) -> list[int]:
        return [group.gid for group in self.groups]


class _PoolStatistics:
    """Per-pool precomputation shared by both engines.

    A thin binding of one :class:`repro.core.poolcache._PoolStructure`
    (the feedback-independent membership/coverage/attribute state, built
    fresh or served by a :class:`~repro.core.poolcache.PoolStatsCache`)
    to the feedback-dependent weight arrays of one call.  ``relevant`` is
    treated as a *set* of users (duplicates are dropped).  Holding the
    shared quantities here guarantees the engines score the *same*
    objective — parity tests compare their outputs directly.
    """

    def __init__(
        self,
        pool: Sequence[Group],
        relevant: np.ndarray,
        feedback: Optional[FeedbackVector],
        prior: Optional[Callable[[Group], float]] = None,
        *,
        structure: Optional[_PoolStructure] = None,
        cache: Optional[PoolStatsCache] = None,
        prior_key: Optional[Hashable] = None,
    ) -> None:
        if structure is None:
            structure = _PoolStructure(list(pool), relevant)
        self.structure = structure
        self.pool = structure.pool
        self.relevant = structure.relevant
        self.n_relevant = structure.n_relevant
        self.n_columns = structure.n_columns
        self.members_matrix = structure.members_matrix
        self.cover = structure.cover
        self.positions = structure.positions
        self.group_attributes = structure.group_attributes

        def compute() -> tuple:
            return _feedback_layer(structure, feedback, prior, cache)

        if cache is not None:
            layer = cache.feedback_layer_for(
                structure, feedback, prior, prior_key, compute
            )
        else:
            layer = compute()
        self.weights, self.total_weight, self.group_feedback = layer


def _feedback_layer(
    structure: _PoolStructure,
    feedback: Optional[FeedbackVector],
    prior: Optional[Callable[[Group], float]],
    cache: Optional[PoolStatsCache] = None,
) -> tuple:
    """(coverage weights, total weight, per-candidate §II-B group weight).

    The member part is one sparse mat-vec of the membership matrix against
    the dense user-weight vector; only the (few) description tokens stay
    per-group.  With a cache, the dense vectors are memoized by feedback
    *content* so a restored snapshot reuses them.
    """
    n_relevant = structure.n_relevant
    if feedback is not None and n_relevant:
        size = int(structure.relevant.max()) + 1
        dense = (
            cache.dense_user_weights(feedback, size)
            if cache is not None
            else feedback.user_weights(size, floor=0.0)
        )
        weights = dense[structure.relevant] + 1.0 / n_relevant
    else:
        weights = np.full(n_relevant, 1.0 / max(n_relevant, 1))
    total_weight = float(weights.sum()) if n_relevant else 1.0

    count = len(structure.pool)
    values = np.zeros(count, dtype=np.float64)
    if feedback is not None and count:
        user_weights = (
            cache.dense_user_weights(feedback, structure.n_columns)
            if cache is not None
            else feedback.user_weights(structure.n_columns, floor=0.0)
        )
        values += np.asarray(
            structure.members_matrix @ user_weights, dtype=np.float64
        )
        values += np.array(
            [
                sum(feedback.token_score(token) for token in group.description)
                for group in structure.pool
            ],
            dtype=np.float64,
        )
    if prior is not None and count:
        values += np.array(
            [prior(group) for group in structure.pool], dtype=np.float64
        )
    return weights, total_weight, values


class _ReferenceEvaluator:
    """Brute-force objective evaluation: the retained parity oracle."""

    def __init__(self, stats: _PoolStatistics, config: SelectionConfig) -> None:
        self.stats = stats
        self.pool = stats.pool
        self.config = config
        self._jaccard_cache: dict[tuple[int, int], float] = {}
        self.evaluations = 0

    def pairwise(self, left: int, right: int) -> float:
        key = (left, right) if left < right else (right, left)
        cached = self._jaccard_cache.get(key)
        if cached is None:
            cached = jaccard(self.pool[left].members, self.pool[right].members)
            self._jaccard_cache[key] = cached
        return cached

    def diversity(self, selected: list[int]) -> float:
        if len(selected) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i in range(len(selected)):
            for j in range(i + 1, len(selected)):
                total += self.pairwise(selected[i], selected[j])
                pairs += 1
        return 1.0 - total / pairs

    def coverage(self, selected: list[int]) -> float:
        stats = self.stats
        if stats.n_relevant == 0:
            return 1.0
        if not selected:
            return 0.0
        mask = np.zeros(stats.n_relevant, dtype=bool)
        for index in selected:
            mask[stats.positions[index]] = True
        return float(stats.weights[mask].sum() / stats.total_weight)

    def affinity(self, selected: list[int]) -> float:
        if not selected:
            return 0.0
        return float(
            np.mean([self.stats.group_feedback[index] for index in selected])
        )

    def description_diversity(self, selected: list[int]) -> float:
        """Share of distinct analysis directions across the display.

        1.0 when every description opens a different attribute set; low when
        the display is five slices of the same attribute.
        """
        if not selected:
            return 0.0
        attributes = self.stats.group_attributes
        total = sum(max(len(attributes[index]), 1) for index in selected)
        distinct = len(
            frozenset().union(*(attributes[index] for index in selected))
        )
        return max(distinct, 1) / total

    def score(self, selected: list[int]) -> float:
        self.evaluations += 1
        return (
            self.config.diversity_weight * self.diversity(selected)
            + self.config.coverage_weight * self.coverage(selected)
            + self.config.feedback_weight * self.affinity(selected)
            + self.config.description_diversity_weight
            * self.description_diversity(selected)
        )


class _VectorEngine:
    """Incremental vectorized state for the CELF engine.

    All per-candidate quantities live in pooled arrays; adding, removing
    or swapping a selected group updates running sums in O(pool) instead
    of rebuilding state per scored trial:

    - the pool×pool Jaccard matrix is materialized lazily, one *column*
      per group that actually enters the selection (one sparse mat-vec,
      cached on the shared :class:`~repro.core.poolcache._PoolStructure`
      so later calls on the same pool — and, via the cache's pair layer,
      on overlapping pools — start with the columns already filled);
    - ``cover`` — CSR pool×relevant incidence, so every candidate's
      marginal coverage is one mat-vec against ``uncovered_weights``;
    - ``attrs`` — pool×attribute boolean description matrix, so the
      distinct-direction count is a row-wise OR + popcount;
    - running scalars/vectors: pairwise-similarity sum, per-candidate
      similarity-to-selection, per-position cover counts, covered weight,
      feedback sum and attribute-union mask.
    """

    def __init__(self, stats: _PoolStatistics, config: SelectionConfig) -> None:
        self.stats = stats
        self.config = config
        self.structure = stats.structure
        self.npool = len(stats.pool)
        self.cover = stats.cover
        self.feedback = stats.group_feedback
        self.attrs = self.structure.attrs
        self.attr_count = self.structure.attr_count
        self.evaluations = 0
        self.reset()

    def sim_column(self, index: int) -> np.ndarray:
        """Jaccard of every pool entry to ``pool[index]`` (structure-cached)."""
        return self.structure.sim_column(index)

    # -- mutable selection state ---------------------------------------

    def reset(self) -> None:
        self.selected: list[int] = []
        self.selected_mask = np.zeros(self.npool, dtype=bool)
        self.pair_sum = 0.0  # Σ_{i<j ∈ S} sim[i, j]
        self.sim_to_selected = np.zeros(self.npool, dtype=np.float64)
        self.cover_counts = np.zeros(self.stats.n_relevant, dtype=np.int64)
        self.covered_weight = 0.0
        self.uncovered_weights = self.stats.weights.astype(np.float64, copy=True)
        self.feedback_sum = 0.0
        self.attr_union = np.zeros(self.attrs.shape[1], dtype=bool)
        self.attr_total = 0

    def clone(self) -> "_VectorEngine":
        """An independent copy of the mutable selection state.

        Shares the immutable pooled arrays (structure, cover, feedback)
        so the governor's branch exploration costs only the running-sum
        copies; the clone's ``evaluations`` counter starts at zero so
        branch work is accounted separately.
        """
        twin = object.__new__(_VectorEngine)
        twin.stats = self.stats
        twin.config = self.config
        twin.structure = self.structure
        twin.npool = self.npool
        twin.cover = self.cover
        twin.feedback = self.feedback
        twin.attrs = self.attrs
        twin.attr_count = self.attr_count
        twin.evaluations = 0
        twin.selected = list(self.selected)
        twin.selected_mask = self.selected_mask.copy()
        twin.pair_sum = self.pair_sum
        twin.sim_to_selected = self.sim_to_selected.copy()
        twin.cover_counts = self.cover_counts.copy()
        twin.covered_weight = self.covered_weight
        twin.uncovered_weights = self.uncovered_weights.copy()
        twin.feedback_sum = self.feedback_sum
        twin.attr_union = self.attr_union.copy()
        twin.attr_total = self.attr_total
        return twin

    def add(self, index: int) -> None:
        """Grow the selection by one group, updating every running sum."""
        self.pair_sum += float(self.sim_to_selected[index])
        self.sim_to_selected += self.sim_column(index)
        positions = self.stats.positions[index]
        if len(positions):
            self.cover_counts[positions] += 1
            newly = positions[self.cover_counts[positions] == 1]
            self.covered_weight += float(self.stats.weights[newly].sum())
            self.uncovered_weights[positions] = 0.0
        self.feedback_sum += float(self.feedback[index])
        self.attr_union |= self.attrs[index]
        self.attr_total += int(self.attr_count[index])
        self.selected.append(index)
        self.selected_mask[index] = True

    def swap(self, position: int, incoming: int) -> None:
        """Replace ``selected[position]`` with ``incoming`` in place."""
        outgoing = self.selected[position]
        outgoing_column = self.sim_column(outgoing)
        incoming_column = self.sim_column(incoming)
        self.pair_sum += float(
            (self.sim_to_selected[incoming] - outgoing_column[incoming])
            - (self.sim_to_selected[outgoing] - 1.0)
        )
        self.sim_to_selected += incoming_column - outgoing_column
        out_positions = self.stats.positions[outgoing]
        if len(out_positions):
            self.cover_counts[out_positions] -= 1
            freed = out_positions[self.cover_counts[out_positions] == 0]
            self.covered_weight -= float(self.stats.weights[freed].sum())
            self.uncovered_weights[freed] = self.stats.weights[freed]
        in_positions = self.stats.positions[incoming]
        if len(in_positions):
            self.cover_counts[in_positions] += 1
            newly = in_positions[self.cover_counts[in_positions] == 1]
            self.covered_weight += float(self.stats.weights[newly].sum())
            self.uncovered_weights[in_positions] = 0.0
        self.feedback_sum += float(self.feedback[incoming] - self.feedback[outgoing])
        self.attr_total += int(self.attr_count[incoming] - self.attr_count[outgoing])
        self.selected[position] = incoming
        self.selected_mask[outgoing] = False
        self.selected_mask[incoming] = True
        union = np.zeros_like(self.attr_union)
        for member in self.selected:
            union |= self.attrs[member]
        self.attr_union = union

    # -- scoring -------------------------------------------------------

    def objective_terms(self) -> tuple[float, float, float, float]:
        """(diversity, coverage, affinity, description diversity) of S."""
        count = len(self.selected)
        if count < 2:
            diversity = 1.0
        else:
            diversity = 1.0 - self.pair_sum / (count * (count - 1) / 2)
        if self.stats.n_relevant == 0:
            coverage = 1.0
        elif not count:
            coverage = 0.0
        else:
            coverage = self.covered_weight / self.stats.total_weight
        affinity = self.feedback_sum / count if count else 0.0
        if not count:
            description = 0.0
        else:
            description = max(int(self.attr_union.sum()), 1) / self.attr_total
        return diversity, coverage, affinity, description

    def score(self) -> float:
        diversity, coverage, affinity, description = self.objective_terms()
        config = self.config
        return (
            config.diversity_weight * diversity
            + config.coverage_weight * coverage
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )

    def base_add_scores(self) -> np.ndarray:
        """Non-coverage part of score(S + {c}) for every candidate c.

        Exact and O(pool): diversity from running row sums, affinity from
        the feedback sum, description diversity from the attribute union.
        Coverage is handled separately (lazily) by the CELF loop.
        """
        grown = len(self.selected) + 1
        if grown >= 2:
            pairs = grown * (grown - 1) / 2
            diversity = 1.0 - (self.pair_sum + self.sim_to_selected) / pairs
        else:
            diversity = np.ones(self.npool, dtype=np.float64)
        affinity = (self.feedback_sum + self.feedback) / grown
        distinct = (self.attrs | self.attr_union).sum(axis=1)
        description = np.maximum(distinct, 1) / (self.attr_total + self.attr_count)
        config = self.config
        return (
            config.diversity_weight * diversity
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )

    def coverage_marginals(self) -> np.ndarray:
        """Exact marginal covered weight of every candidate (one mat-vec)."""
        if self.cover is None:
            return np.zeros(self.npool, dtype=np.float64)
        return np.asarray(self.cover @ self.uncovered_weights, dtype=np.float64)

    def coverage_marginal(self, index: int) -> float:
        """Exact marginal covered weight of one candidate."""
        positions = self.stats.positions[index]
        if not len(positions):
            return 0.0
        return float(self.uncovered_weights[positions].sum())

    def swap_scores(self, position: int) -> np.ndarray:
        """score((S − {selected[position]}) ∪ {c}) for every candidate c.

        One vectorized delta pass; entries for already-selected candidates
        are meaningless (callers skip them via ``selected_mask``).
        """
        stats = self.stats
        config = self.config
        count = len(self.selected)
        outgoing = self.selected[position]
        if count >= 2:
            pairs = count * (count - 1) / 2
            pair_sum_without = self.pair_sum - (self.sim_to_selected[outgoing] - 1.0)
            sim_without = self.sim_to_selected - self.sim_column(outgoing)
            diversity = 1.0 - (pair_sum_without + sim_without) / pairs
        else:
            diversity = np.ones(self.npool, dtype=np.float64)
        if stats.n_relevant == 0:
            coverage = np.ones(self.npool, dtype=np.float64)
        else:
            out_positions = stats.positions[outgoing]
            solo = out_positions[self.cover_counts[out_positions] == 1]
            covered_without = self.covered_weight - float(
                stats.weights[solo].sum()
            )
            open_weights = self.uncovered_weights
            if len(solo):
                open_weights = open_weights.copy()
                open_weights[solo] = stats.weights[solo]
            marginals = (
                np.asarray(self.cover @ open_weights, dtype=np.float64)
                if self.cover is not None
                else np.zeros(self.npool, dtype=np.float64)
            )
            coverage = (covered_without + marginals) / stats.total_weight
        affinity = (self.feedback_sum - self.feedback[outgoing] + self.feedback) / count
        union_without = np.zeros_like(self.attr_union)
        for member in self.selected:
            if member != outgoing:
                union_without |= self.attrs[member]
        total_without = self.attr_total - int(self.attr_count[outgoing])
        distinct = (self.attrs | union_without).sum(axis=1)
        description = np.maximum(distinct, 1) / (total_without + self.attr_count)
        self.evaluations += self.npool - count
        return (
            config.diversity_weight * diversity
            + config.coverage_weight * coverage
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )


@traced("selection")
def select_k(
    pool: Sequence[Group],
    relevant: np.ndarray,
    feedback: Optional[FeedbackVector] = None,
    config: Optional[SelectionConfig] = None,
    clock: Callable[[], float] = time.perf_counter,
    prior: Optional[Callable[[Group], float]] = None,
    cache: Optional[PoolStatsCache] = None,
    prior_key: Optional[Hashable] = None,
) -> SelectionResult:
    """Pick ≤ k groups from ``pool`` optimizing the blended objective.

    ``pool`` should arrive in descending parent-similarity order (the
    inverted index's materialized prefix) — the zero-budget fallback takes
    its head.  ``relevant`` is the user set coverage is measured against
    (the clicked group's members, or every user at session start).
    ``prior`` (optional) adds an explorer-profile interest bonus per group
    to the affinity term — the "anticipate follow-up steps" hook of §I.

    ``config.engine`` selects the implementation: the vectorized CELF
    engine (default) or the brute-force reference oracle; both run the
    same floor-fill / greedy / swap phases on the same objective.

    ``cache`` (optional) is a session-scoped
    :class:`~repro.core.poolcache.PoolStatsCache`; repeated or
    overlapping pools then reuse their precomputed statistics, and a call
    identical in every fingerprinted input returns its memoized result.
    ``prior_key`` is the caller's hashable identity for ``prior`` — when
    a prior is supplied without a key, the feedback layer and result memo
    are skipped (never guessed) and only structural reuse applies.
    """
    config = config or SelectionConfig()
    started = clock()
    budget_seconds = (
        None if config.time_budget_ms is None else config.time_budget_ms / 1000.0
    )

    def out_of_time() -> bool:
        return budget_seconds is not None and (clock() - started) >= budget_seconds

    full_pool = list(pool)
    pool_list = full_pool[: config.max_candidates]

    fingerprints = None
    relevant_key = None
    memo_key = None
    if cache is not None:
        fingerprints = pool_fingerprint(pool_list)
        relevant_key = relevant_fingerprint(relevant)
        memo_fingerprints = fingerprints
        if (
            config.engine == "celf"
            and config.governor
            and len(full_pool) > len(pool_list)
        ):
            # Governor tier 2 may select from the widened pool, so the
            # memo must be keyed on everything the call could have seen —
            # a same-prefix pool with a different tail is a different call.
            wide_limit = int(
                round(config.max_candidates * config.governor_pool_factor)
            )
            memo_fingerprints = pool_fingerprint(full_pool[:wide_limit])
        memo_key = cache.result_key(
            memo_fingerprints, relevant_key, feedback, prior, prior_key,
            _config_key(config),
        )
        if memo_key is not None:
            memoized = cache.lookup_result(memo_key)
            if memoized is not None:
                return dataclasses.replace(
                    memoized,
                    groups=list(memoized.groups),
                    tier_scores=list(memoized.tier_scores),
                    elapsed_ms=(clock() - started) * 1000.0,
                    cache_state="hit",
                )

    stats, cache_state = _build_statistics(
        pool_list, relevant, feedback, prior, cache, prior_key,
        fingerprints, relevant_key,
    )
    if config.engine == "reference":
        result = _select_reference(stats, config, clock, started, out_of_time)
    else:
        extended_factory = None
        if config.governor and len(full_pool) > len(pool_list):

            def extended_factory() -> _PoolStatistics:
                wide = full_pool[
                    : int(round(config.max_candidates * config.governor_pool_factor))
                ]
                wide_stats, _ = _build_statistics(
                    wide, relevant, feedback, prior, cache, prior_key, None, None
                )
                return wide_stats

        result = _select_celf(
            stats, config, clock, started, out_of_time, budget_seconds,
            extended_factory, cache,
        )
    result.cache_state = cache_state
    if cache is not None:
        # Multi-session serving: push the columns this call materialized
        # into the runtime's shared layer so concurrent sessions start
        # from them (no-op for purely session-scoped caches).  Keyed on
        # the *clicked* pool explicitly — a governor tier-2 escalation
        # serves a widened pool afterwards, which must not shadow it.
        cache.republish_structure(stats.structure.key)
        if (
            config.engine == "celf"
            and config.governor
            and len(full_pool) > len(pool_list)
        ):
            # The widened tier-2 pool (when one was built) shares its
            # columns too; republish_structure no-ops if tier 2 never ran.
            cache.republish_structure()
    if memo_key is not None:
        cache.store_result(
            memo_key,
            dataclasses.replace(
                result,
                groups=list(result.groups),
                tier_scores=list(result.tier_scores),
            ),
        )
    return result


def _build_statistics(
    pool_list: list[Group],
    relevant: np.ndarray,
    feedback: Optional[FeedbackVector],
    prior: Optional[Callable[[Group], float]],
    cache: Optional[PoolStatsCache],
    prior_key: Optional[Hashable],
    fingerprints,
    relevant_key,
) -> tuple[_PoolStatistics, str]:
    """Pool statistics via the cache when present; (stats, cache state)."""
    if cache is None:
        return _PoolStatistics(pool_list, relevant, feedback, prior), "off"
    structure, state = cache.structure_for(
        pool_list, relevant, fingerprints, relevant_key
    )
    stats = _PoolStatistics(
        pool_list,
        relevant,
        feedback,
        prior,
        structure=structure,
        cache=cache,
        prior_key=prior_key,
    )
    return stats, state


# ---------------------------------------------------------------------------
# CELF engine (default)
# ---------------------------------------------------------------------------


def _select_celf(
    stats: _PoolStatistics,
    config: SelectionConfig,
    clock: Callable[[], float],
    started: float,
    out_of_time: Callable[[], bool],
    budget_seconds: Optional[float] = None,
    extended_factory: Optional[Callable[[], _PoolStatistics]] = None,
    cache: Optional[PoolStatsCache] = None,
) -> SelectionResult:
    pool = stats.pool
    k = min(config.k, len(pool))
    engine = _VectorEngine(stats, config)

    # Governor resume: under a *finite* budget, a cached re-click on this
    # pool starts escalation at the tier the last governed click reached
    # instead of re-exploring tiers that already converged here.  Untimed
    # runs (the parity oracles) never resume, so determinism is preserved
    # exactly where the test suite relies on it.
    governor_key = None
    resume_tier = 0
    if (
        cache is not None
        and config.governor
        and budget_seconds is not None
    ):
        # Keyed on the structure's *stable* content digest (not the
        # process-local fingerprint key) so persisted sessions resume
        # escalation across restarts — see store.save_session_state.
        governor_key = (stats.structure.stable_key, _config_key(config))
        resume_tier = cache.governor_resume_tier(*governor_key)

    # Phase 1: floor fill — the top-k by index similarity.
    selected = list(range(k))
    phases = 1

    # Phase 2: CELF lazy greedy, clock-checked per re-evaluation.
    if k and not out_of_time():
        greedy, aborted = _celf_greedy(engine, k, out_of_time)
        if len(greedy) == k:
            selected = greedy
            phases = 2
        elif greedy:
            # Partial greedy: keep it, fill remaining slots by pool order.
            filler = [
                index
                for index in range(len(pool))
                if not engine.selected_mask[index]
            ]
            for index in filler[: k - len(greedy)]:
                engine.add(index)
            selected = list(engine.selected)
            phases = 2

    # Sync the engine onto `selected` when the greedy never ran/landed.
    if engine.selected != selected:
        engine.reset()
        for index in selected:
            engine.add(index)

    # Phase 3: delta-scored swap search until no improvement or budget out.
    winner = engine
    tier = 0
    tier_scores: list[float] = []
    extra_engines: list[_VectorEngine] = []
    if phases == 2 and k and not out_of_time():
        current_score = engine.score()
        engine.evaluations += 1
        current_score, converged = _swap_phase(engine, k, current_score, out_of_time)
        selected = list(engine.selected)
        # A pass that found no swap *and* did not run out of time means the
        # local search converged — the best the greedy can do on this pool.
        if converged:
            phases = 3
            if config.governor and _has_slack(
                config, clock, started, budget_seconds
            ):
                winner, tier, tier_scores, extra_engines = _governor_escalate(
                    engine, current_score, k, config, out_of_time,
                    extended_factory, start_tier=max(1, resume_tier),
                )
                selected = list(winner.selected)
                if governor_key is not None:
                    if resume_tier >= 2:
                        cache.note_governor_resume()
                    if tier > 0:
                        cache.record_governor_tier(*governor_key, tier)

    diversity, coverage, affinity, description = winner.objective_terms()
    score = (
        config.diversity_weight * diversity
        + config.coverage_weight * coverage
        + config.feedback_weight * affinity
        + config.description_diversity_weight * description
    )
    return SelectionResult(
        groups=[winner.stats.pool[index] for index in selected],
        diversity=diversity,
        coverage=coverage,
        affinity=affinity,
        score=score,
        elapsed_ms=(clock() - started) * 1000.0,
        evaluations=engine.evaluations
        + sum(other.evaluations for other in extra_engines),
        pool_size=len(pool),
        phases_completed=phases,
        engine="celf",
        governor_tier=tier,
        tier_scores=tier_scores,
        governor_resumed_tier=(
            resume_tier if resume_tier >= 2 and tier_scores else 0
        ),
    )


def _swap_phase(
    engine: _VectorEngine,
    k: int,
    current_score: float,
    out_of_time: Callable[[], bool],
) -> tuple[float, bool]:
    """Delta-scored swap local search; (final score, converged?).

    ``converged`` is True only when a full pass found no improving swap
    *and* the budget still had room — the same criterion both engines'
    phase 3 always used.
    """
    improved = True
    while improved and not out_of_time():
        improved = False
        for position in range(k):
            if out_of_time():
                break
            trial_scores = engine.swap_scores(position)
            best_swap = None
            best_swap_score = current_score
            # Same chained-epsilon scan as the reference engine, over
            # the vectorized trial scores.
            for candidate in range(engine.npool):
                if engine.selected_mask[candidate]:
                    continue
                trial = float(trial_scores[candidate])
                if trial > best_swap_score + _SWAP_EPSILON:
                    best_swap_score = trial
                    best_swap = candidate
            if best_swap is not None:
                engine.swap(position, best_swap)
                current_score = best_swap_score
                improved = True
    return current_score, (not improved and not out_of_time())


def _has_slack(
    config: SelectionConfig,
    clock: Callable[[], float],
    started: float,
    budget_seconds: Optional[float],
) -> bool:
    """Enough of the deadline left to make escalation worthwhile?"""
    if budget_seconds is None:
        return True
    remaining = budget_seconds - (clock() - started)
    return remaining >= config.governor_slack_fraction * budget_seconds


def _governor_escalate(
    engine: _VectorEngine,
    current_score: float,
    k: int,
    config: SelectionConfig,
    out_of_time: Callable[[], bool],
    extended_factory: Optional[Callable[[], _PoolStatistics]],
    start_tier: int = 1,
) -> tuple[_VectorEngine, int, list[float], list[_VectorEngine]]:
    """Spend converged-early slack on progressively deeper optimization.

    Returns ``(winning engine, highest tier that explored an alternative,
    best score after the base run and each attempted tier, extra engines
    whose evaluations to account)``.
    The incumbent is replaced only on strict objective improvement, so
    the per-tier best scores are monotonically non-decreasing and every
    tier is individually deadline-checked.

    ``start_tier`` (from the pool cache's governor layer) skips tiers
    below it: a budgeted re-click on a pool whose earlier escalation
    already reached tier t resumes at t instead of re-running converged
    lower tiers; skipped blocks contribute no ``tier_scores`` entry.
    """
    best_engine = engine
    best_score = current_score
    tier_scores = [best_score]
    tier = 0
    extra: list[_VectorEngine] = []

    # Tier 1: restart the local search from alternative floor-fill windows.
    # `tier` records only tiers that actually explored an alternative —
    # a no-op block (no window, no widening, no branch) does not count.
    if start_tier <= 1 and config.governor_max_tier >= 1 and not out_of_time():
        for restart in range(1, config.governor_restarts + 1):
            start = restart * k
            if start + k > engine.npool:
                break
            if out_of_time():
                break
            tier = 1
            trial_engine = _VectorEngine(engine.stats, config)
            for index in range(start, start + k):
                trial_engine.add(index)
            extra.append(trial_engine)
            trial_score = trial_engine.score()
            trial_engine.evaluations += 1
            trial_score, _ = _swap_phase(trial_engine, k, trial_score, out_of_time)
            if trial_score > best_score + _SWAP_EPSILON:
                best_score = trial_score
                best_engine = trial_engine
        tier_scores.append(best_score)

    # Tier 2: rerun greedy + swaps over a widened candidate pool.
    if start_tier <= 2 and config.governor_max_tier >= 2 and not out_of_time():
        wide_stats = extended_factory() if extended_factory is not None else None
        if wide_stats is not None and len(wide_stats.pool) > engine.npool:
            tier = 2
            wide_engine = _VectorEngine(wide_stats, config)
            extra.append(wide_engine)
            greedy, _ = _celf_greedy(wide_engine, k, out_of_time)
            if len(greedy) == k:
                wide_score = wide_engine.score()
                wide_engine.evaluations += 1
                wide_score, _ = _swap_phase(wide_engine, k, wide_score, out_of_time)
                if wide_score > best_score + _SWAP_EPSILON:
                    best_score = wide_score
                    best_engine = wide_engine
        tier_scores.append(best_score)

    # Tier 3: two-exchange branches — a plateau/downhill swap followed by a
    # re-converged local search can escape basins single swaps cannot.
    # Every branch departs from the *same* incumbent the seeds were ranked
    # for: rebinding mid-loop would apply a seed whose candidate is already
    # selected in the newer engine and corrupt its running sums.
    if config.governor_max_tier >= 3 and not out_of_time():
        seed_engine = best_engine
        for position, candidate in _swap_branches(seed_engine, k, config):
            if out_of_time():
                break
            tier = 3
            branch_engine = seed_engine.clone()
            extra.append(branch_engine)
            branch_engine.swap(position, candidate)
            branch_score = branch_engine.score()
            branch_engine.evaluations += 1
            branch_score, _ = _swap_phase(branch_engine, k, branch_score, out_of_time)
            if branch_score > best_score + _SWAP_EPSILON:
                best_score = branch_score
                best_engine = branch_engine
        tier_scores.append(best_score)

    return best_engine, tier, tier_scores, extra


def _swap_branches(
    engine: _VectorEngine,
    k: int,
    config: SelectionConfig,
) -> list[tuple[int, int]]:
    """The most promising (position, candidate) two-exchange seeds.

    The converged incumbent has no *improving* single swap left, so the
    near-best non-improving exchanges are ranked and the global top
    ``governor_swap_depth`` returned (score desc, then position/candidate
    asc for determinism).
    """
    ranked: list[tuple[float, int, int]] = []
    count = len(engine.selected)
    if count < k or k == 0:
        return []
    for position in range(k):
        trial_scores = engine.swap_scores(position)
        for candidate in range(engine.npool):
            if engine.selected_mask[candidate]:
                continue
            ranked.append((float(trial_scores[candidate]), position, candidate))
    ranked.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
    return [
        (position, candidate)
        for _, position, candidate in ranked[: config.governor_swap_depth]
    ]


def _celf_greedy(
    engine: _VectorEngine,
    k: int,
    out_of_time: Callable[[], bool],
) -> tuple[list[int], bool]:
    """Lazy-greedy fill of k slots; returns (chosen indices, aborted?).

    Upper bound per candidate = exact non-coverage terms (cheap, vectorized
    each slot) + the stale coverage marginal from the last time the
    candidate was evaluated.  Weighted coverage is monotone submodular, so
    stale marginals are admissible bounds; a candidate is accepted once its
    freshly evaluated score dominates every remaining bound.  Tie-breaking
    matches the reference scan: lowest pool index among exact maxima.
    """
    config = engine.config
    stats = engine.stats
    # Exact marginals for the empty selection: one mat-vec covers the pool.
    stale_marginals = engine.coverage_marginals()
    engine.evaluations += engine.npool
    greedy: list[int] = []
    aborted = False
    for _slot in range(k):
        base = engine.base_add_scores()
        if stats.n_relevant == 0:
            bounds = base + config.coverage_weight * 1.0
        else:
            # Same expression shape as the exact score below, so a fresh
            # bound equals the exact value it will be compared against.
            bounds = (
                base
                + config.coverage_weight
                * (engine.covered_weight + stale_marginals)
                / stats.total_weight
            )
        order = np.argsort(-bounds, kind="stable")
        best_index = -1
        best_score = -np.inf
        for candidate in order:
            candidate = int(candidate)
            if engine.selected_mask[candidate]:
                continue
            if bounds[candidate] < best_score - _BOUND_SLACK:
                break  # no remaining bound can beat the best exact score
            if out_of_time():
                aborted = True
                break
            if stats.n_relevant == 0:
                exact = float(bounds[candidate])
            else:
                marginal = engine.coverage_marginal(candidate)
                stale_marginals[candidate] = marginal
                exact = float(
                    base[candidate]
                    + config.coverage_weight
                    * (engine.covered_weight + marginal)
                    / stats.total_weight
                )
            engine.evaluations += 1
            if exact > best_score or (exact == best_score and candidate < best_index):
                best_score = exact
                best_index = candidate
        if aborted and best_index < 0:
            break
        if best_index >= 0:
            engine.add(best_index)
            greedy.append(best_index)
        if aborted:
            break
    return greedy, aborted


# ---------------------------------------------------------------------------
# Reference engine (parity oracle)
# ---------------------------------------------------------------------------


def _select_reference(
    stats: _PoolStatistics,
    config: SelectionConfig,
    clock: Callable[[], float],
    started: float,
    out_of_time: Callable[[], bool],
) -> SelectionResult:
    pool = stats.pool
    k = min(config.k, len(pool))
    evaluator = _ReferenceEvaluator(stats, config)

    # Phase 1: floor fill — the top-k by index similarity.
    selected = list(range(k))
    phases = 1

    # Phase 2: greedy rebuild, candidate-by-candidate, clock-checked.
    if k and not out_of_time():
        greedy: list[int] = []
        in_greedy = np.zeros(len(pool), dtype=bool)
        aborted = False
        for _slot in range(k):
            best_index = -1
            best_score = -np.inf
            for candidate in range(len(pool)):
                if in_greedy[candidate]:
                    continue
                if out_of_time():
                    aborted = True
                    break
                candidate_score = evaluator.score(greedy + [candidate])
                if candidate_score > best_score:
                    best_score = candidate_score
                    best_index = candidate
            if aborted and best_index < 0:
                break
            if best_index >= 0:
                greedy.append(best_index)
                in_greedy[best_index] = True
            if aborted:
                break
        if len(greedy) == k:
            selected = greedy
            phases = 2
        elif greedy:
            # Partial greedy: keep it, fill remaining slots by pool order.
            filler = [
                index for index in range(len(pool)) if not in_greedy[index]
            ]
            selected = greedy + filler[: k - len(greedy)]
            phases = 2

    # Phase 3: swap local search until no improvement or budget exhausted.
    if phases == 2 and k and not out_of_time():
        in_selected = np.zeros(len(pool), dtype=bool)
        in_selected[selected] = True
        current_score = evaluator.score(selected)
        improved = True
        while improved and not out_of_time():
            improved = False
            for position in range(k):
                if out_of_time():
                    break
                best_swap = None
                best_swap_score = current_score
                for candidate in range(len(pool)):
                    if in_selected[candidate]:
                        continue
                    if out_of_time():
                        break
                    trial = list(selected)
                    trial[position] = candidate
                    trial_score = evaluator.score(trial)
                    if trial_score > best_swap_score + _SWAP_EPSILON:
                        best_swap_score = trial_score
                        best_swap = candidate
                if best_swap is not None:
                    in_selected[selected[position]] = False
                    in_selected[best_swap] = True
                    selected[position] = best_swap
                    current_score = best_swap_score
                    improved = True
        # A pass that found no swap *and* did not run out of time means the
        # local search converged — the best the greedy can do on this pool.
        if not improved and not out_of_time():
            phases = 3

    groups = [pool[index] for index in selected]
    diversity = evaluator.diversity(selected)
    coverage = evaluator.coverage(selected)
    affinity = evaluator.affinity(selected)
    score = (
        config.diversity_weight * diversity
        + config.coverage_weight * coverage
        + config.feedback_weight * affinity
        + config.description_diversity_weight
        * evaluator.description_diversity(selected)
    )
    return SelectionResult(
        groups=groups,
        diversity=diversity,
        coverage=coverage,
        affinity=affinity,
        score=score,
        elapsed_ms=(clock() - started) * 1000.0,
        evaluations=evaluator.evaluations,
        pool_size=len(pool),
        phases_completed=phases,
        engine="reference",
    )
