"""Anytime greedy selection of k diverse, covering groups.

§II-B: *"We consider diversity and coverage as quality objectives ... We
use a best-effort greedy approach ... to return a local diverse and
covering set of k groups with a lower-bound on similarity ... we set a time
limit for the greedy process.  The higher this limit, the more optimized
the set of groups."*

The selector is *anytime*: any budget returns k groups (P1), and more
budget monotonically refines them (P2/P3):

1. **floor fill** — the top-k pool entries (pool order is the inverted
   index's similarity order), so even a ~0 budget shows something sensible;
2. **greedy phase** — repeatedly add the candidate with the best marginal
   gain on the blended objective;
3. **swap phase** — local search exchanging a selected group for an
   outsider while the clock allows.

Objectives (all in [0, 1]):

- ``diversity(S)`` = 1 − mean pairwise Jaccard of member sets;
- ``coverage(S)``  = feedback-weighted fraction of the *relevant* users
  (the clicked group's members) appearing in at least one selected group;
- ``affinity(S)``  = mean feedback weight of the selected groups (the
  §II-B weighted-similarity bias).

Two engines implement the same phases on the same objective:

**``engine="celf"`` (default)** — the vectorized incremental engine.  The
quality a fixed budget buys is bounded by how many objective evaluations
the greedy can afford, so the hot path never rebuilds state per trial:

- the pool×pool Jaccard matrix is pooled through one sparse membership
  matrix (:func:`repro.core.similarity.membership_matrix`, the same
  product the inverted index builds from) and materialized lazily one
  column per selected group, so pairwise diversity becomes running row
  sums instead of per-pair set intersections;
- a pool×relevant CSR coverage matrix makes the marginal coverage of
  every candidate one sparse mat-vec against the uncovered-weight vector,
  instead of a boolean mask rebuild per trial;
- the greedy phase is CELF-style lazy evaluation (Leskovec et al. 2007):
  candidates are ranked by a stale upper bound — exact non-coverage terms
  plus the last known coverage marginal, admissible because weighted
  coverage is monotone submodular so marginals only shrink as the
  selection grows — and only heap-top candidates are re-evaluated until
  the best exact score dominates the next bound;
- the swap phase is delta-scored: one vectorized pass scores every
  (position, candidate) exchange from maintained running sums (pair-sum,
  per-position cover counts, feedback sum, attribute-union masks) rather
  than re-scoring each trial set from scratch.

**``engine="reference"``** — the retained brute-force implementation
(per-pair Jaccard cache, full mask rebuild per score call).  It is the
parity oracle: on untimed runs both engines return the same groups and
scores (``tests/test_selection_parity.py``), and C2-style experiments can
quantify how many more evaluations the vectorized engine affords per
unit budget.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Optional

import numpy as np
from scipy import sparse

from repro.core.feedback import FeedbackVector
from repro.core.group import Group
from repro.core.similarity import jaccard, membership_matrix

#: Engines selectable via :attr:`SelectionConfig.engine`.
ENGINES = ("celf", "reference")

#: Minimum improvement for a swap to be applied (both engines).
_SWAP_EPSILON = 1e-12

#: Slack on the CELF prune: stale bounds come from a sparse mat-vec while
#: exact re-evaluations sum the same weights with numpy's pairwise
#: accumulation, so mathematically-equal values can differ by a few ulps.
#: Pruning only when a bound is clearly below the best exact score keeps
#: the lazy greedy's argmax identical to the reference scan.
_BOUND_SLACK = 1e-12


@dataclass
class SelectionConfig:
    """Knobs of the greedy selector.

    Defaults follow the paper: ``k = 5`` (≤ 7 per Miller's law), a 100 ms
    budget (continuity-preserving latency), and equal diversity/coverage
    weight with a milder feedback bias.
    """

    k: int = 5
    time_budget_ms: Optional[float] = 100.0
    diversity_weight: float = 0.5
    coverage_weight: float = 0.5
    feedback_weight: float = 0.25
    #: §II-B: "Optimizing diversity provides various analysis directions" —
    #: member-level Jaccard alone would call five slices of the same
    #: attribute maximally diverse; this term rewards displays whose
    #: descriptions span *different attributes* (different directions).
    description_diversity_weight: float = 0.3
    max_candidates: int = 200
    #: ``"celf"`` = vectorized lazy-greedy engine (default);
    #: ``"reference"`` = retained brute-force engine (parity oracle).
    engine: str = "celf"

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.time_budget_ms is not None and self.time_budget_ms < 0:
            raise ValueError("time budget must be >= 0")
        if min(self.diversity_weight, self.coverage_weight, self.feedback_weight) < 0:
            raise ValueError("objective weights must be >= 0")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}")


@dataclass
class SelectionResult:
    """Selected groups plus the quality numbers benchmarks report."""

    groups: list[Group]
    diversity: float
    coverage: float
    affinity: float
    score: float
    elapsed_ms: float
    evaluations: int
    pool_size: int
    phases_completed: int  # 1 = floor fill, 2 = greedy, 3 = swaps converged
    engine: str = "celf"

    def gids(self) -> list[int]:
        return [group.gid for group in self.groups]


class _PoolStatistics:
    """Per-pool precomputation shared by both engines.

    Everything is derived from one pooled sparse membership matrix: the
    pool×relevant coverage incidence (a CSR column slice), the
    per-candidate coverage positions, and the feedback weights (a sparse
    mat-vec against the dense user-weight vector).  ``relevant`` is
    treated as a *set* of users (duplicates are dropped).  Holding the
    shared quantities here guarantees the engines score the *same*
    objective — parity tests compare their outputs directly.
    """

    def __init__(
        self,
        pool: Sequence[Group],
        relevant: np.ndarray,
        feedback: Optional[FeedbackVector],
        prior: Optional[Callable[[Group], float]] = None,
    ) -> None:
        self.pool = list(pool)
        self.relevant = np.unique(np.asarray(relevant, dtype=np.int64))
        n_relevant = len(self.relevant)
        self.n_relevant = n_relevant
        if feedback is not None and n_relevant:
            dense = feedback.user_weights(int(self.relevant.max()) + 1, floor=0.0)
            weights = dense[self.relevant] + 1.0 / n_relevant
        else:
            weights = np.full(n_relevant, 1.0 / max(n_relevant, 1))
        self.weights = weights
        self.total_weight = float(weights.sum()) if n_relevant else 1.0
        # One membership matrix wide enough to index by relevant users too.
        memberships = [group.members for group in self.pool]
        n_columns = max(
            (int(members.max()) + 1 for members in memberships if len(members)),
            default=0,
        )
        if n_relevant:
            n_columns = max(n_columns, int(self.relevant.max()) + 1)
        self.n_columns = n_columns
        self.members_matrix = membership_matrix(memberships, n_columns)
        # Candidate coverage = positions (into `relevant`) each candidate
        # hits; the CSR column slice *is* the pool×relevant incidence.
        if n_relevant and self.pool:
            cover = self.members_matrix[:, self.relevant].tocsr()
            cover.data = cover.data.astype(np.float64)
            self.cover: Optional[sparse.csr_matrix] = cover
            indptr = cover.indptr
            indices = cover.indices
            self.positions = [
                indices[indptr[i] : indptr[i + 1]].astype(np.int64)
                for i in range(len(self.pool))
            ]
        else:
            self.cover = None
            self.positions = [np.empty(0, dtype=np.int64) for _ in self.pool]
        self.group_feedback = self._pool_feedback(feedback, prior)
        self.group_attributes = [
            frozenset(_attribute_of(token) for token in group.description)
            for group in self.pool
        ]

    def _pool_feedback(
        self,
        feedback: Optional[FeedbackVector],
        prior: Optional[Callable[[Group], float]],
    ) -> np.ndarray:
        """§II-B group weight (+ optional profile prior) for every candidate.

        The member part is one sparse mat-vec of the membership matrix
        against the dense user-weight vector; only the (few) description
        tokens stay per-group.
        """
        count = len(self.pool)
        values = np.zeros(count, dtype=np.float64)
        if feedback is not None and count:
            user_weights = feedback.user_weights(self.n_columns, floor=0.0)
            values += np.asarray(
                self.members_matrix @ user_weights, dtype=np.float64
            )
            values += np.array(
                [
                    sum(feedback.token_score(token) for token in group.description)
                    for group in self.pool
                ],
                dtype=np.float64,
            )
        if prior is not None and count:
            values += np.array(
                [prior(group) for group in self.pool], dtype=np.float64
            )
        return values


class _ReferenceEvaluator:
    """Brute-force objective evaluation: the retained parity oracle."""

    def __init__(self, stats: _PoolStatistics, config: SelectionConfig) -> None:
        self.stats = stats
        self.pool = stats.pool
        self.config = config
        self._jaccard_cache: dict[tuple[int, int], float] = {}
        self.evaluations = 0

    def pairwise(self, left: int, right: int) -> float:
        key = (left, right) if left < right else (right, left)
        cached = self._jaccard_cache.get(key)
        if cached is None:
            cached = jaccard(self.pool[left].members, self.pool[right].members)
            self._jaccard_cache[key] = cached
        return cached

    def diversity(self, selected: list[int]) -> float:
        if len(selected) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i in range(len(selected)):
            for j in range(i + 1, len(selected)):
                total += self.pairwise(selected[i], selected[j])
                pairs += 1
        return 1.0 - total / pairs

    def coverage(self, selected: list[int]) -> float:
        stats = self.stats
        if stats.n_relevant == 0:
            return 1.0
        if not selected:
            return 0.0
        mask = np.zeros(stats.n_relevant, dtype=bool)
        for index in selected:
            mask[stats.positions[index]] = True
        return float(stats.weights[mask].sum() / stats.total_weight)

    def affinity(self, selected: list[int]) -> float:
        if not selected:
            return 0.0
        return float(
            np.mean([self.stats.group_feedback[index] for index in selected])
        )

    def description_diversity(self, selected: list[int]) -> float:
        """Share of distinct analysis directions across the display.

        1.0 when every description opens a different attribute set; low when
        the display is five slices of the same attribute.
        """
        if not selected:
            return 0.0
        attributes = self.stats.group_attributes
        total = sum(max(len(attributes[index]), 1) for index in selected)
        distinct = len(
            frozenset().union(*(attributes[index] for index in selected))
        )
        return max(distinct, 1) / total

    def score(self, selected: list[int]) -> float:
        self.evaluations += 1
        return (
            self.config.diversity_weight * self.diversity(selected)
            + self.config.coverage_weight * self.coverage(selected)
            + self.config.feedback_weight * self.affinity(selected)
            + self.config.description_diversity_weight
            * self.description_diversity(selected)
        )


class _VectorEngine:
    """Incremental vectorized state for the CELF engine.

    All per-candidate quantities live in pooled arrays; adding, removing
    or swapping a selected group updates running sums in O(pool) instead
    of rebuilding state per scored trial:

    - the pool×pool Jaccard matrix is materialized lazily, one *column*
      per group that actually enters the selection: a sparse mat-vec of
      the pooled membership matrix (the same product
      ``SimilarityIndex._build`` uses) against the group's member
      indicator, cached for the rest of the call — far cheaper than the
      full self-product when only ~k + #swaps columns are ever read;
    - ``cover`` — CSR pool×relevant incidence, so every candidate's
      marginal coverage is one mat-vec against ``uncovered_weights``;
    - ``attrs`` — pool×attribute boolean description matrix, so the
      distinct-direction count is a row-wise OR + popcount;
    - running scalars/vectors: pairwise-similarity sum, per-candidate
      similarity-to-selection, per-position cover counts, covered weight,
      feedback sum and attribute-union mask.
    """

    def __init__(self, stats: _PoolStatistics, config: SelectionConfig) -> None:
        self.stats = stats
        self.config = config
        npool = len(stats.pool)
        self.npool = npool
        self._members_matrix = stats.members_matrix
        self._member_sizes = np.array(
            [len(group.members) for group in stats.pool], dtype=np.float64
        )
        self._sim_columns: dict[int, np.ndarray] = {}
        self.cover = stats.cover
        self.feedback = stats.group_feedback
        vocabulary = sorted(
            {attr for attrs in stats.group_attributes for attr in attrs}
        )
        attr_index = {attr: i for i, attr in enumerate(vocabulary)}
        self.attrs = np.zeros((npool, max(len(vocabulary), 1)), dtype=bool)
        for index, attrs in enumerate(stats.group_attributes):
            for attr in attrs:
                self.attrs[index, attr_index[attr]] = True
        self.attr_count = np.maximum(
            np.array([len(attrs) for attrs in stats.group_attributes], dtype=np.int64),
            1,
        )
        self.evaluations = 0
        self.reset()

    def sim_column(self, index: int) -> np.ndarray:
        """Jaccard of every pool entry to ``pool[index]``, lazily cached.

        One sparse mat-vec against the pooled membership matrix per
        distinct group that enters the selection; matches
        :func:`repro.core.similarity.jaccard` entrywise (two empty sets
        similar at 1.0).
        """
        cached = self._sim_columns.get(index)
        if cached is not None:
            return cached
        members = self.stats.pool[index].members
        indicator = np.zeros(self._members_matrix.shape[1], dtype=np.float64)
        indicator[members] = 1.0
        intersections = np.asarray(
            self._members_matrix @ indicator, dtype=np.float64
        )
        unions = self._member_sizes + float(len(members)) - intersections
        column = np.where(
            unions > 0, intersections / np.where(unions > 0, unions, 1.0), 1.0
        )
        self._sim_columns[index] = column
        return column

    # -- mutable selection state ---------------------------------------

    def reset(self) -> None:
        self.selected: list[int] = []
        self.selected_mask = np.zeros(self.npool, dtype=bool)
        self.pair_sum = 0.0  # Σ_{i<j ∈ S} sim[i, j]
        self.sim_to_selected = np.zeros(self.npool, dtype=np.float64)
        self.cover_counts = np.zeros(self.stats.n_relevant, dtype=np.int64)
        self.covered_weight = 0.0
        self.uncovered_weights = self.stats.weights.astype(np.float64, copy=True)
        self.feedback_sum = 0.0
        self.attr_union = np.zeros(self.attrs.shape[1], dtype=bool)
        self.attr_total = 0

    def add(self, index: int) -> None:
        """Grow the selection by one group, updating every running sum."""
        self.pair_sum += float(self.sim_to_selected[index])
        self.sim_to_selected += self.sim_column(index)
        positions = self.stats.positions[index]
        if len(positions):
            self.cover_counts[positions] += 1
            newly = positions[self.cover_counts[positions] == 1]
            self.covered_weight += float(self.stats.weights[newly].sum())
            self.uncovered_weights[positions] = 0.0
        self.feedback_sum += float(self.feedback[index])
        self.attr_union |= self.attrs[index]
        self.attr_total += int(self.attr_count[index])
        self.selected.append(index)
        self.selected_mask[index] = True

    def swap(self, position: int, incoming: int) -> None:
        """Replace ``selected[position]`` with ``incoming`` in place."""
        outgoing = self.selected[position]
        outgoing_column = self.sim_column(outgoing)
        incoming_column = self.sim_column(incoming)
        self.pair_sum += float(
            (self.sim_to_selected[incoming] - outgoing_column[incoming])
            - (self.sim_to_selected[outgoing] - 1.0)
        )
        self.sim_to_selected += incoming_column - outgoing_column
        out_positions = self.stats.positions[outgoing]
        if len(out_positions):
            self.cover_counts[out_positions] -= 1
            freed = out_positions[self.cover_counts[out_positions] == 0]
            self.covered_weight -= float(self.stats.weights[freed].sum())
            self.uncovered_weights[freed] = self.stats.weights[freed]
        in_positions = self.stats.positions[incoming]
        if len(in_positions):
            self.cover_counts[in_positions] += 1
            newly = in_positions[self.cover_counts[in_positions] == 1]
            self.covered_weight += float(self.stats.weights[newly].sum())
            self.uncovered_weights[in_positions] = 0.0
        self.feedback_sum += float(self.feedback[incoming] - self.feedback[outgoing])
        self.attr_total += int(self.attr_count[incoming] - self.attr_count[outgoing])
        self.selected[position] = incoming
        self.selected_mask[outgoing] = False
        self.selected_mask[incoming] = True
        union = np.zeros_like(self.attr_union)
        for member in self.selected:
            union |= self.attrs[member]
        self.attr_union = union

    # -- scoring -------------------------------------------------------

    def objective_terms(self) -> tuple[float, float, float, float]:
        """(diversity, coverage, affinity, description diversity) of S."""
        count = len(self.selected)
        if count < 2:
            diversity = 1.0
        else:
            diversity = 1.0 - self.pair_sum / (count * (count - 1) / 2)
        if self.stats.n_relevant == 0:
            coverage = 1.0
        elif not count:
            coverage = 0.0
        else:
            coverage = self.covered_weight / self.stats.total_weight
        affinity = self.feedback_sum / count if count else 0.0
        if not count:
            description = 0.0
        else:
            description = max(int(self.attr_union.sum()), 1) / self.attr_total
        return diversity, coverage, affinity, description

    def score(self) -> float:
        diversity, coverage, affinity, description = self.objective_terms()
        config = self.config
        return (
            config.diversity_weight * diversity
            + config.coverage_weight * coverage
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )

    def base_add_scores(self) -> np.ndarray:
        """Non-coverage part of score(S + {c}) for every candidate c.

        Exact and O(pool): diversity from running row sums, affinity from
        the feedback sum, description diversity from the attribute union.
        Coverage is handled separately (lazily) by the CELF loop.
        """
        grown = len(self.selected) + 1
        if grown >= 2:
            pairs = grown * (grown - 1) / 2
            diversity = 1.0 - (self.pair_sum + self.sim_to_selected) / pairs
        else:
            diversity = np.ones(self.npool, dtype=np.float64)
        affinity = (self.feedback_sum + self.feedback) / grown
        distinct = (self.attrs | self.attr_union).sum(axis=1)
        description = np.maximum(distinct, 1) / (self.attr_total + self.attr_count)
        config = self.config
        return (
            config.diversity_weight * diversity
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )

    def coverage_marginals(self) -> np.ndarray:
        """Exact marginal covered weight of every candidate (one mat-vec)."""
        if self.cover is None:
            return np.zeros(self.npool, dtype=np.float64)
        return np.asarray(self.cover @ self.uncovered_weights, dtype=np.float64)

    def coverage_marginal(self, index: int) -> float:
        """Exact marginal covered weight of one candidate."""
        positions = self.stats.positions[index]
        if not len(positions):
            return 0.0
        return float(self.uncovered_weights[positions].sum())

    def swap_scores(self, position: int) -> np.ndarray:
        """score((S − {selected[position]}) ∪ {c}) for every candidate c.

        One vectorized delta pass; entries for already-selected candidates
        are meaningless (callers skip them via ``selected_mask``).
        """
        stats = self.stats
        config = self.config
        count = len(self.selected)
        outgoing = self.selected[position]
        if count >= 2:
            pairs = count * (count - 1) / 2
            pair_sum_without = self.pair_sum - (self.sim_to_selected[outgoing] - 1.0)
            sim_without = self.sim_to_selected - self.sim_column(outgoing)
            diversity = 1.0 - (pair_sum_without + sim_without) / pairs
        else:
            diversity = np.ones(self.npool, dtype=np.float64)
        if stats.n_relevant == 0:
            coverage = np.ones(self.npool, dtype=np.float64)
        else:
            out_positions = stats.positions[outgoing]
            solo = out_positions[self.cover_counts[out_positions] == 1]
            covered_without = self.covered_weight - float(
                stats.weights[solo].sum()
            )
            open_weights = self.uncovered_weights
            if len(solo):
                open_weights = open_weights.copy()
                open_weights[solo] = stats.weights[solo]
            marginals = (
                np.asarray(self.cover @ open_weights, dtype=np.float64)
                if self.cover is not None
                else np.zeros(self.npool, dtype=np.float64)
            )
            coverage = (covered_without + marginals) / stats.total_weight
        affinity = (self.feedback_sum - self.feedback[outgoing] + self.feedback) / count
        union_without = np.zeros_like(self.attr_union)
        for member in self.selected:
            if member != outgoing:
                union_without |= self.attrs[member]
        total_without = self.attr_total - int(self.attr_count[outgoing])
        distinct = (self.attrs | union_without).sum(axis=1)
        description = np.maximum(distinct, 1) / (total_without + self.attr_count)
        self.evaluations += self.npool - count
        return (
            config.diversity_weight * diversity
            + config.coverage_weight * coverage
            + config.feedback_weight * affinity
            + config.description_diversity_weight * description
        )


def _attribute_of(token: str) -> str:
    """The analysis direction a description token belongs to.

    ``gender=female`` -> ``gender``; ``item:The Hobbit`` -> ``item``.
    """
    if token.startswith("item:"):
        return "item"
    attribute, separator, _ = token.partition("=")
    return attribute if separator else token


def select_k(
    pool: Sequence[Group],
    relevant: np.ndarray,
    feedback: Optional[FeedbackVector] = None,
    config: Optional[SelectionConfig] = None,
    clock: Callable[[], float] = time.perf_counter,
    prior: Optional[Callable[[Group], float]] = None,
) -> SelectionResult:
    """Pick ≤ k groups from ``pool`` optimizing the blended objective.

    ``pool`` should arrive in descending parent-similarity order (the
    inverted index's materialized prefix) — the zero-budget fallback takes
    its head.  ``relevant`` is the user set coverage is measured against
    (the clicked group's members, or every user at session start).
    ``prior`` (optional) adds an explorer-profile interest bonus per group
    to the affinity term — the "anticipate follow-up steps" hook of §I.

    ``config.engine`` selects the implementation: the vectorized CELF
    engine (default) or the brute-force reference oracle; both run the
    same floor-fill / greedy / swap phases on the same objective.
    """
    config = config or SelectionConfig()
    started = clock()
    budget_seconds = (
        None if config.time_budget_ms is None else config.time_budget_ms / 1000.0
    )

    def out_of_time() -> bool:
        return budget_seconds is not None and (clock() - started) >= budget_seconds

    pool = list(pool)[: config.max_candidates]
    stats = _PoolStatistics(pool, relevant, feedback, prior)
    if config.engine == "reference":
        return _select_reference(stats, config, clock, started, out_of_time)
    return _select_celf(stats, config, clock, started, out_of_time)


# ---------------------------------------------------------------------------
# CELF engine (default)
# ---------------------------------------------------------------------------


def _select_celf(
    stats: _PoolStatistics,
    config: SelectionConfig,
    clock: Callable[[], float],
    started: float,
    out_of_time: Callable[[], bool],
) -> SelectionResult:
    pool = stats.pool
    k = min(config.k, len(pool))
    engine = _VectorEngine(stats, config)

    # Phase 1: floor fill — the top-k by index similarity.
    selected = list(range(k))
    phases = 1

    # Phase 2: CELF lazy greedy, clock-checked per re-evaluation.
    if k and not out_of_time():
        greedy, aborted = _celf_greedy(engine, k, out_of_time)
        if len(greedy) == k:
            selected = greedy
            phases = 2
        elif greedy:
            # Partial greedy: keep it, fill remaining slots by pool order.
            filler = [
                index
                for index in range(len(pool))
                if not engine.selected_mask[index]
            ]
            for index in filler[: k - len(greedy)]:
                engine.add(index)
            selected = list(engine.selected)
            phases = 2

    # Sync the engine onto `selected` when the greedy never ran/landed.
    if engine.selected != selected:
        engine.reset()
        for index in selected:
            engine.add(index)

    # Phase 3: delta-scored swap search until no improvement or budget out.
    if phases == 2 and k and not out_of_time():
        current_score = engine.score()
        engine.evaluations += 1
        improved = True
        while improved and not out_of_time():
            improved = False
            for position in range(k):
                if out_of_time():
                    break
                trial_scores = engine.swap_scores(position)
                best_swap = None
                best_swap_score = current_score
                # Same chained-epsilon scan as the reference engine, over
                # the vectorized trial scores.
                for candidate in range(engine.npool):
                    if engine.selected_mask[candidate]:
                        continue
                    trial = float(trial_scores[candidate])
                    if trial > best_swap_score + _SWAP_EPSILON:
                        best_swap_score = trial
                        best_swap = candidate
                if best_swap is not None:
                    engine.swap(position, best_swap)
                    current_score = best_swap_score
                    improved = True
        selected = list(engine.selected)
        # A pass that found no swap *and* did not run out of time means the
        # local search converged — the best the greedy can do on this pool.
        if not improved and not out_of_time():
            phases = 3

    diversity, coverage, affinity, description = engine.objective_terms()
    score = (
        config.diversity_weight * diversity
        + config.coverage_weight * coverage
        + config.feedback_weight * affinity
        + config.description_diversity_weight * description
    )
    return SelectionResult(
        groups=[pool[index] for index in selected],
        diversity=diversity,
        coverage=coverage,
        affinity=affinity,
        score=score,
        elapsed_ms=(clock() - started) * 1000.0,
        evaluations=engine.evaluations,
        pool_size=len(pool),
        phases_completed=phases,
        engine="celf",
    )


def _celf_greedy(
    engine: _VectorEngine,
    k: int,
    out_of_time: Callable[[], bool],
) -> tuple[list[int], bool]:
    """Lazy-greedy fill of k slots; returns (chosen indices, aborted?).

    Upper bound per candidate = exact non-coverage terms (cheap, vectorized
    each slot) + the stale coverage marginal from the last time the
    candidate was evaluated.  Weighted coverage is monotone submodular, so
    stale marginals are admissible bounds; a candidate is accepted once its
    freshly evaluated score dominates every remaining bound.  Tie-breaking
    matches the reference scan: lowest pool index among exact maxima.
    """
    config = engine.config
    stats = engine.stats
    # Exact marginals for the empty selection: one mat-vec covers the pool.
    stale_marginals = engine.coverage_marginals()
    engine.evaluations += engine.npool
    greedy: list[int] = []
    aborted = False
    for _slot in range(k):
        base = engine.base_add_scores()
        if stats.n_relevant == 0:
            bounds = base + config.coverage_weight * 1.0
        else:
            # Same expression shape as the exact score below, so a fresh
            # bound equals the exact value it will be compared against.
            bounds = (
                base
                + config.coverage_weight
                * (engine.covered_weight + stale_marginals)
                / stats.total_weight
            )
        order = np.argsort(-bounds, kind="stable")
        best_index = -1
        best_score = -np.inf
        for candidate in order:
            candidate = int(candidate)
            if engine.selected_mask[candidate]:
                continue
            if bounds[candidate] < best_score - _BOUND_SLACK:
                break  # no remaining bound can beat the best exact score
            if out_of_time():
                aborted = True
                break
            if stats.n_relevant == 0:
                exact = float(bounds[candidate])
            else:
                marginal = engine.coverage_marginal(candidate)
                stale_marginals[candidate] = marginal
                exact = float(
                    base[candidate]
                    + config.coverage_weight
                    * (engine.covered_weight + marginal)
                    / stats.total_weight
                )
            engine.evaluations += 1
            if exact > best_score or (exact == best_score and candidate < best_index):
                best_score = exact
                best_index = candidate
        if aborted and best_index < 0:
            break
        if best_index >= 0:
            engine.add(best_index)
            greedy.append(best_index)
        if aborted:
            break
    return greedy, aborted


# ---------------------------------------------------------------------------
# Reference engine (parity oracle)
# ---------------------------------------------------------------------------


def _select_reference(
    stats: _PoolStatistics,
    config: SelectionConfig,
    clock: Callable[[], float],
    started: float,
    out_of_time: Callable[[], bool],
) -> SelectionResult:
    pool = stats.pool
    k = min(config.k, len(pool))
    evaluator = _ReferenceEvaluator(stats, config)

    # Phase 1: floor fill — the top-k by index similarity.
    selected = list(range(k))
    phases = 1

    # Phase 2: greedy rebuild, candidate-by-candidate, clock-checked.
    if k and not out_of_time():
        greedy: list[int] = []
        in_greedy = np.zeros(len(pool), dtype=bool)
        aborted = False
        for _slot in range(k):
            best_index = -1
            best_score = -np.inf
            for candidate in range(len(pool)):
                if in_greedy[candidate]:
                    continue
                if out_of_time():
                    aborted = True
                    break
                candidate_score = evaluator.score(greedy + [candidate])
                if candidate_score > best_score:
                    best_score = candidate_score
                    best_index = candidate
            if aborted and best_index < 0:
                break
            if best_index >= 0:
                greedy.append(best_index)
                in_greedy[best_index] = True
            if aborted:
                break
        if len(greedy) == k:
            selected = greedy
            phases = 2
        elif greedy:
            # Partial greedy: keep it, fill remaining slots by pool order.
            filler = [
                index for index in range(len(pool)) if not in_greedy[index]
            ]
            selected = greedy + filler[: k - len(greedy)]
            phases = 2

    # Phase 3: swap local search until no improvement or budget exhausted.
    if phases == 2 and k and not out_of_time():
        in_selected = np.zeros(len(pool), dtype=bool)
        in_selected[selected] = True
        current_score = evaluator.score(selected)
        improved = True
        while improved and not out_of_time():
            improved = False
            for position in range(k):
                if out_of_time():
                    break
                best_swap = None
                best_swap_score = current_score
                for candidate in range(len(pool)):
                    if in_selected[candidate]:
                        continue
                    if out_of_time():
                        break
                    trial = list(selected)
                    trial[position] = candidate
                    trial_score = evaluator.score(trial)
                    if trial_score > best_swap_score + _SWAP_EPSILON:
                        best_swap_score = trial_score
                        best_swap = candidate
                if best_swap is not None:
                    in_selected[selected[position]] = False
                    in_selected[best_swap] = True
                    selected[position] = best_swap
                    current_score = best_swap_score
                    improved = True
        # A pass that found no swap *and* did not run out of time means the
        # local search converged — the best the greedy can do on this pool.
        if not improved and not out_of_time():
            phases = 3

    groups = [pool[index] for index in selected]
    diversity = evaluator.diversity(selected)
    coverage = evaluator.coverage(selected)
    affinity = evaluator.affinity(selected)
    score = (
        config.diversity_weight * diversity
        + config.coverage_weight * coverage
        + config.feedback_weight * affinity
        + config.description_diversity_weight
        * evaluator.description_diversity(selected)
    )
    return SelectionResult(
        groups=groups,
        diversity=diversity,
        coverage=coverage,
        affinity=affinity,
        score=score,
        elapsed_ms=(clock() - started) * 1000.0,
        evaluations=evaluator.evaluations,
        pool_size=len(pool),
        phases_completed=phases,
        engine="reference",
    )
