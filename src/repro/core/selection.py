"""Anytime greedy selection of k diverse, covering groups.

§II-B: *"We consider diversity and coverage as quality objectives ... We
use a best-effort greedy approach ... to return a local diverse and
covering set of k groups with a lower-bound on similarity ... we set a time
limit for the greedy process.  The higher this limit, the more optimized
the set of groups."*

The selector is *anytime*: any budget returns k groups (P1), and more
budget monotonically refines them (P2/P3):

1. **floor fill** — the top-k pool entries (pool order is the inverted
   index's similarity order), so even a ~0 budget shows something sensible;
2. **greedy phase** — repeatedly add the candidate with the best marginal
   gain on the blended objective;
3. **swap phase** — local search exchanging a selected group for an
   outsider while the clock allows.

Objectives (all in [0, 1]):

- ``diversity(S)`` = 1 − mean pairwise Jaccard of member sets;
- ``coverage(S)``  = feedback-weighted fraction of the *relevant* users
  (the clicked group's members) appearing in at least one selected group;
- ``affinity(S)``  = mean feedback weight of the selected groups (the
  §II-B weighted-similarity bias).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.feedback import FeedbackVector
from repro.core.group import Group
from repro.core.similarity import jaccard


@dataclass
class SelectionConfig:
    """Knobs of the greedy selector.

    Defaults follow the paper: ``k = 5`` (≤ 7 per Miller's law), a 100 ms
    budget (continuity-preserving latency), and equal diversity/coverage
    weight with a milder feedback bias.
    """

    k: int = 5
    time_budget_ms: Optional[float] = 100.0
    diversity_weight: float = 0.5
    coverage_weight: float = 0.5
    feedback_weight: float = 0.25
    #: §II-B: "Optimizing diversity provides various analysis directions" —
    #: member-level Jaccard alone would call five slices of the same
    #: attribute maximally diverse; this term rewards displays whose
    #: descriptions span *different attributes* (different directions).
    description_diversity_weight: float = 0.3
    max_candidates: int = 200

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.time_budget_ms is not None and self.time_budget_ms < 0:
            raise ValueError("time budget must be >= 0")
        if min(self.diversity_weight, self.coverage_weight, self.feedback_weight) < 0:
            raise ValueError("objective weights must be >= 0")


@dataclass
class SelectionResult:
    """Selected groups plus the quality numbers benchmarks report."""

    groups: list[Group]
    diversity: float
    coverage: float
    affinity: float
    score: float
    elapsed_ms: float
    evaluations: int
    pool_size: int
    phases_completed: int  # 1 = floor fill, 2 = greedy, 3 = swaps converged

    def gids(self) -> list[int]:
        return [group.gid for group in self.groups]


class _Evaluator:
    """Incremental objective evaluation over a fixed candidate pool."""

    def __init__(
        self,
        pool: Sequence[Group],
        relevant: np.ndarray,
        feedback: Optional[FeedbackVector],
        config: SelectionConfig,
        prior: Optional[Callable[[Group], float]] = None,
    ) -> None:
        self.pool = list(pool)
        self.config = config
        self.relevant = np.sort(np.asarray(relevant, dtype=np.int64))
        n_relevant = len(self.relevant)
        if feedback is not None and n_relevant:
            dense = feedback.user_weights(int(self.relevant.max()) + 1, floor=0.0)
            weights = dense[self.relevant] + 1.0 / n_relevant
        else:
            weights = np.full(n_relevant, 1.0 / max(n_relevant, 1))
        self.weights = weights
        self.total_weight = float(weights.sum()) if n_relevant else 1.0
        # Candidate coverage = positions (into `relevant`) each candidate hits.
        self.positions: list[np.ndarray] = []
        for group in self.pool:
            if n_relevant == 0:
                self.positions.append(np.empty(0, dtype=np.int64))
                continue
            insert_at = np.searchsorted(self.relevant, group.members)
            in_range = insert_at < n_relevant
            matches = np.zeros(len(group.members), dtype=bool)
            matches[in_range] = (
                self.relevant[insert_at[in_range]] == group.members[in_range]
            )
            self.positions.append(insert_at[matches])
        self.group_feedback = [
            (
                feedback.group_weight(group.members, group.description)
                if feedback is not None
                else 0.0
            )
            + (prior(group) if prior is not None else 0.0)
            for group in self.pool
        ]
        self.group_attributes = [
            frozenset(_attribute_of(token) for token in group.description)
            for group in self.pool
        ]
        self._jaccard_cache: dict[tuple[int, int], float] = {}
        self.evaluations = 0

    def pairwise(self, left: int, right: int) -> float:
        key = (left, right) if left < right else (right, left)
        cached = self._jaccard_cache.get(key)
        if cached is None:
            cached = jaccard(self.pool[left].members, self.pool[right].members)
            self._jaccard_cache[key] = cached
        return cached

    def diversity(self, selected: list[int]) -> float:
        if len(selected) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for i in range(len(selected)):
            for j in range(i + 1, len(selected)):
                total += self.pairwise(selected[i], selected[j])
                pairs += 1
        return 1.0 - total / pairs

    def coverage(self, selected: list[int]) -> float:
        if len(self.relevant) == 0:
            return 1.0
        if not selected:
            return 0.0
        mask = np.zeros(len(self.relevant), dtype=bool)
        for index in selected:
            mask[self.positions[index]] = True
        return float(self.weights[mask].sum() / self.total_weight)

    def affinity(self, selected: list[int]) -> float:
        if not selected:
            return 0.0
        return float(np.mean([self.group_feedback[index] for index in selected]))

    def description_diversity(self, selected: list[int]) -> float:
        """Share of distinct analysis directions across the display.

        1.0 when every description opens a different attribute set; low when
        the display is five slices of the same attribute.
        """
        if not selected:
            return 0.0
        total = sum(max(len(self.group_attributes[index]), 1) for index in selected)
        distinct = len(
            frozenset().union(*(self.group_attributes[index] for index in selected))
        )
        return max(distinct, 1) / total

    def score(self, selected: list[int]) -> float:
        self.evaluations += 1
        return (
            self.config.diversity_weight * self.diversity(selected)
            + self.config.coverage_weight * self.coverage(selected)
            + self.config.feedback_weight * self.affinity(selected)
            + self.config.description_diversity_weight
            * self.description_diversity(selected)
        )


def _attribute_of(token: str) -> str:
    """The analysis direction a description token belongs to.

    ``gender=female`` -> ``gender``; ``item:The Hobbit`` -> ``item``.
    """
    if token.startswith("item:"):
        return "item"
    attribute, separator, _ = token.partition("=")
    return attribute if separator else token


def select_k(
    pool: Sequence[Group],
    relevant: np.ndarray,
    feedback: Optional[FeedbackVector] = None,
    config: Optional[SelectionConfig] = None,
    clock: Callable[[], float] = time.perf_counter,
    prior: Optional[Callable[[Group], float]] = None,
) -> SelectionResult:
    """Pick ≤ k groups from ``pool`` optimizing the blended objective.

    ``pool`` should arrive in descending parent-similarity order (the
    inverted index's materialized prefix) — the zero-budget fallback takes
    its head.  ``relevant`` is the user set coverage is measured against
    (the clicked group's members, or every user at session start).
    ``prior`` (optional) adds an explorer-profile interest bonus per group
    to the affinity term — the "anticipate follow-up steps" hook of §I.
    """
    config = config or SelectionConfig()
    started = clock()
    budget_seconds = (
        None if config.time_budget_ms is None else config.time_budget_ms / 1000.0
    )

    def out_of_time() -> bool:
        return budget_seconds is not None and (clock() - started) >= budget_seconds

    pool = list(pool)[: config.max_candidates]
    k = min(config.k, len(pool))
    evaluator = _Evaluator(pool, relevant, feedback, config, prior)

    # Phase 1: floor fill — the top-k by index similarity.
    selected = list(range(k))
    phases = 1

    # Phase 2: greedy rebuild, candidate-by-candidate, clock-checked.
    if k and not out_of_time():
        greedy: list[int] = []
        aborted = False
        for _slot in range(k):
            best_index = -1
            best_score = -np.inf
            for candidate in range(len(pool)):
                if candidate in greedy:
                    continue
                if out_of_time():
                    aborted = True
                    break
                candidate_score = evaluator.score(greedy + [candidate])
                if candidate_score > best_score:
                    best_score = candidate_score
                    best_index = candidate
            if aborted and best_index < 0:
                break
            if best_index >= 0:
                greedy.append(best_index)
            if aborted:
                break
        if len(greedy) == k:
            selected = greedy
            phases = 2
        elif greedy:
            # Partial greedy: keep it, fill remaining slots by pool order.
            filler = [index for index in range(len(pool)) if index not in greedy]
            selected = greedy + filler[: k - len(greedy)]
            phases = 2

    # Phase 3: swap local search until no improvement or budget exhausted.
    if phases == 2 and k and not out_of_time():
        current_score = evaluator.score(selected)
        improved = True
        while improved and not out_of_time():
            improved = False
            for position in range(k):
                if out_of_time():
                    break
                best_swap = None
                best_swap_score = current_score
                for candidate in range(len(pool)):
                    if candidate in selected:
                        continue
                    if out_of_time():
                        break
                    trial = list(selected)
                    trial[position] = candidate
                    trial_score = evaluator.score(trial)
                    if trial_score > best_swap_score + 1e-12:
                        best_swap_score = trial_score
                        best_swap = candidate
                if best_swap is not None:
                    selected[position] = best_swap
                    current_score = best_swap_score
                    improved = True
        # A pass that found no swap *and* did not run out of time means the
        # local search converged — the best the greedy can do on this pool.
        if not improved and not out_of_time():
            phases = 3

    groups = [pool[index] for index in selected]
    diversity = evaluator.diversity(selected)
    coverage = evaluator.coverage(selected)
    affinity = evaluator.affinity(selected)
    score = (
        config.diversity_weight * diversity
        + config.coverage_weight * coverage
        + config.feedback_weight * affinity
        + config.description_diversity_weight
        * evaluator.description_diversity(selected)
    )
    return SelectionResult(
        groups=groups,
        diversity=diversity,
        coverage=coverage,
        affinity=affinity,
        score=score,
        elapsed_ms=(clock() - started) * 1000.0,
        evaluations=evaluator.evaluations,
        pool_size=len(pool),
        phases_completed=phases,
    )
