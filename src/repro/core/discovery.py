"""Group-discovery facade: one call from dataset to :class:`GroupSpace`.

§II-A: *"The user data is given as input to a group discovery algorithm.
VEXUS is independent of this process."*  This module is that independence
boundary — every miner (LCM, Apriori, α-MOMRI, STREAMMINING, BIRCH) is
exposed behind the same ``discover_groups`` call, returning the same
:class:`GroupSpace` shape the exploration loop consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.features import user_feature_matrix
from repro.core.group import Group, GroupSpace
from repro.data.dataset import UserDataset
from repro.mining.apriori import AprioriConfig, close_itemsets, mine_frequent
from repro.mining.birch import Birch
from repro.mining.itemsets import TransactionDB
from repro.mining.lcm import LCMConfig, mine_closed
from repro.mining.momri import MOMRIConfig, momri
from repro.mining.streammining import StreamMiner

METHODS = ("lcm", "apriori", "momri", "stream", "birch")


@dataclass
class DiscoveryConfig:
    """Shared knobs across discovery backends.

    ``min_support`` is a fraction of users when < 1, an absolute count
    otherwise.  ``max_description`` caps group-description length (token
    count), keeping the UI hover text readable.
    """

    method: str = "lcm"
    min_support: float = 0.05
    max_description: int = 4
    min_group_size: int = 2
    include_items: bool = True
    min_item_support: int = 5
    # momri-specific
    momri_k: int = 5
    momri_alpha: float = 0.05
    momri_budget: int = 1500
    # birch-specific
    birch_threshold: float = 1.5
    birch_branching: int = 50
    birch_clusters: Optional[int] = 24
    seed: int = 0

    def __post_init__(self) -> None:
        if self.method not in METHODS:
            raise ValueError(f"unknown discovery method {self.method!r}; pick from {METHODS}")
        if self.min_support <= 0:
            raise ValueError("min_support must be positive")

    def absolute_support(self, n_users: int) -> int:
        if self.min_support < 1:
            return max(1, int(np.ceil(self.min_support * n_users)))
        return int(self.min_support)


def discover_groups(
    dataset: UserDataset, config: Optional[DiscoveryConfig] = None
) -> GroupSpace:
    """Run the configured discovery backend and return its group space."""
    config = config or DiscoveryConfig()
    if config.method == "birch":
        return _discover_birch(dataset, config)

    transactions, token_vocab = dataset.transactions(
        include_items=config.include_items,
        min_item_support=config.min_item_support,
    )
    db = TransactionDB(transactions, token_vocab)
    support = config.absolute_support(dataset.n_users)

    if config.method == "lcm":
        itemsets = mine_closed(
            db, LCMConfig(min_support=support, max_items=config.max_description)
        )
    elif config.method == "apriori":
        itemsets = close_itemsets(
            db,
            mine_frequent(
                db, AprioriConfig(min_support=support, max_items=config.max_description)
            ),
        )
    elif config.method == "stream":
        itemsets = _discover_stream(db, dataset, config)
    elif config.method == "momri":
        closed = mine_closed(
            db, LCMConfig(min_support=support, max_items=config.max_description)
        )
        candidates = [itemset for itemset in closed if itemset.items]
        front = momri(
            candidates,
            db.n_transactions,
            MOMRIConfig(
                k=min(config.momri_k, max(len(candidates), 1)),
                alpha=config.momri_alpha,
                budget_evaluations=config.momri_budget,
                seed=config.seed,
            ),
        )
        chosen: dict[tuple[int, ...], object] = {}
        for solution in front:
            for itemset in solution.groups:
                chosen.setdefault(itemset.items, itemset)
        itemsets = sorted(
            chosen.values(), key=lambda itemset: (len(itemset.items), itemset.items)  # type: ignore[attr-defined]
        )
    else:  # pragma: no cover — guarded by __post_init__
        raise AssertionError(config.method)

    return GroupSpace.from_itemsets(
        dataset,
        itemsets,  # type: ignore[arg-type]
        token_vocab,
        min_size=config.min_group_size,
    )


def _discover_stream(
    db: TransactionDB, dataset: UserDataset, config: DiscoveryConfig
) -> list:
    """STREAMMINING backend: one-pass counting, then tid resolution.

    The stream miner reports itemsets without tid-lists (it never stores
    transactions); group construction resolves members with one indexed
    lookup per reported itemset — the paper's offline pre-processing can
    afford that single pass.
    """
    support_fraction = (
        config.min_support
        if config.min_support < 1
        else config.min_support / max(dataset.n_users, 1)
    )
    miner = StreamMiner(
        support=support_fraction,
        max_itemset_size=config.max_description,
    )
    for tid in range(db.n_transactions):
        miner.add_transaction(db.transaction(tid).tolist())
    resolved = []
    from repro.mining.itemsets import FrequentItemset

    for itemset in miner.results():
        tids = db.tids_of_itemset(itemset.items)
        if len(tids):
            resolved.append(FrequentItemset(itemset.items, len(tids), tids))
    return resolved


def _discover_birch(dataset: UserDataset, config: DiscoveryConfig) -> GroupSpace:
    """BIRCH backend: featurise, cluster, describe clusters post hoc."""
    features = user_feature_matrix(dataset)
    model = Birch(
        threshold=config.birch_threshold,
        branching_factor=config.birch_branching,
        n_clusters=config.birch_clusters,
    )
    model.fit(features.matrix)
    labels = model.predict(features.matrix)
    return GroupSpace.from_cluster_labels(
        dataset, labels, min_size=config.min_group_size
    )


def group_space_with_descriptions_only(
    dataset: UserDataset, config: Optional[DiscoveryConfig] = None
) -> GroupSpace:
    """Demographic-only group space (no item tokens).

    Convenience used by experiments that study the demographic group
    lattice (C6) where item tokens would drown the attribute structure.
    """
    config = config or DiscoveryConfig()
    transactions, token_vocab = dataset.transactions(
        include_items=False, min_item_support=config.min_item_support
    )
    db = TransactionDB(transactions, token_vocab)
    itemsets = mine_closed(
        db,
        LCMConfig(
            min_support=config.absolute_support(dataset.n_users),
            max_items=config.max_description,
        ),
    )
    return GroupSpace.from_itemsets(
        dataset, itemsets, token_vocab, min_size=config.min_group_size
    )
