"""Multi-session serving runtime for one group space.

VEXUS is a multi-user system: §II describes *analysts* — plural —
exploring the same offline-discovered group space side by side (the demo
scenarios of §III put several explorers on the same DBLP / BookCrossing
populations).  Before this module, every
:class:`~repro.core.session.ExplorationSession` built its own
:class:`~repro.index.inverted.SimilarityIndex` and its own
:class:`~repro.core.poolcache.PoolStatsCache`, so each new analyst paid
the full cold-start cost and nothing one session precomputed ever helped
another.

Three pieces turn the per-session stack into a serving runtime:

- :class:`SharedPairCache` — the concurrency-safe cross-session layer.
  Jaccard pairs live in lock-striped dicts; per-(pool, relevant)
  structure snapshots live behind one lock.  Every read and write is
  stamped with the cache *version*: keys are content fingerprints (so
  stale data misses by construction even without versioning), and a
  store mutation bumps the version, which atomically empties the cache
  and rejects any in-flight publication that observed the old version.
- :class:`GroupSpaceRuntime` — owns, per group space, the immutable
  shared artifacts every session reads: the similarity index (built once
  with the batched lexsort ranking), the pooled group×user membership
  CSR, and the shared pair cache.  Sessions are created *from* the
  runtime and receive session caches wired to the shared layer; their
  feedback / result / governor layers stay private (they encode one
  explorer's CONTEXT, which must never leak between analysts — the
  threaded suite in ``tests/core/test_runtime.py`` asserts exactly
  this isolation plus display parity with sequential solo sessions).
- :class:`SessionManager` — the thread-safe service API: ``open_session``
  / ``click`` / ``close`` for N concurrent sessions against one runtime.
  Clicks on the same session serialize on a per-session lock; clicks on
  different sessions run concurrently and share warmth through the
  runtime.
"""

from __future__ import annotations

import os
import threading
import time
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Optional

from scipy import sparse

from repro.core.group import Group, GroupSpace
from repro.core.journal import (
    DurabilityError,
    JournalBrokenError,
    SessionJournal,
)
from repro.core.poolcache import PoolStatsCache, _PoolStructure
from repro.index.inverted import SimilarityIndex

if TYPE_CHECKING:  # circular at runtime: session constructs a runtime
    from repro.core.session import ExplorationSession, SessionConfig


#: Resume tokens are used as state-directory names, and the service
#: accepts them from the network — anything outside this alphabet (path
#: separators, ``..``, NUL) must never reach the filesystem layer.
_TOKEN_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-_"
)


def _valid_token(token: str) -> bool:
    return 0 < len(token) <= 128 and set(token) <= _TOKEN_CHARS


class UnknownSessionError(KeyError):
    """A session id that is not live on this manager.

    Subclasses ``KeyError`` so pre-existing callers that caught the bare
    registry miss keep working; the message carries the offending id
    (``KeyError`` alone prints just the key, which reads like an internal
    crash when it surfaces through a service boundary).  The HTTP front
    maps this to a 404.
    """

    def __init__(self, session_id: str) -> None:
        super().__init__(session_id)
        self.session_id = session_id

    def __str__(self) -> str:
        return f"unknown or already-closed session {self.session_id!r}"


class SessionLimitError(RuntimeError):
    """Admission control: ``max_sessions`` live sessions already exist.

    The HTTP front maps this to a 429 so overloaded deployments shed new
    analysts instead of degrading every live session.
    """


class StaleEpochError(ValueError):
    """A resume pinned to an epoch no process retains anymore.

    The session was checkpointed against a store generation (membership
    digest) that has since aged out of every retention window — the
    runtime's ``retain_epochs`` ring, or, in the replicated tier, the
    pool's ``retain_segments`` arena window after a worker respawn.
    Subclasses ``ValueError`` so pre-existing 409 mappings keep firing,
    but the HTTP fronts type it ``stale_epoch`` (vs the generic
    ``conflict``) so clients can tell "your walk's store generation is
    gone, start a fresh session" from other state disagreements.
    """


def adaptive_stripe_count(
    fanout: Optional[int] = None, cores: Optional[int] = None
) -> int:
    """Stripe count sized to this machine and group space, power of two.

    Lock stripes exist to keep concurrent sessions publishing different
    neighborhoods off each other's locks, so the right count scales with
    how many publishers can actually run at once (the core count — a few
    stripes per core keeps the birthday-bound collision probability of
    ``t`` threads around ``t²/(2·stripes)`` low) and is capped by the
    space's pair fan-out (a tiny space cannot populate more stripes than
    it has distinct pair keys, so extra stripes would only waste dicts).
    Rounded up to a power of two and clamped to [4, 256]; pass an
    explicit ``stripes`` to :class:`SharedPairCache` to bypass this
    sizing entirely (the pre-adaptive fixed configuration).
    """
    if cores is None:
        cores = os.cpu_count() or 1
    stripes = 4 * max(cores, 1)
    if fanout is not None and fanout > 0:
        stripes = min(stripes, fanout)
    return max(4, min(256, 1 << (max(stripes, 1) - 1).bit_length()))


class SharedPairCache:
    """Lock-striped, version-stamped cross-session selection cache.

    Two layers, both keyed on *content fingerprints* (gid + member hash),
    both transparent — a hit returns exactly what a fresh computation
    would produce:

    - **pairs**: (group fingerprint, group fingerprint) → Jaccard, the
      values :class:`~repro.core.poolcache._PoolStructure` columns are
      assembled from.  Striped across ``stripes`` dicts, each with its
      own lock, so concurrent sessions publishing different
      neighborhoods rarely contend.
    - **structures**: (pool fingerprints, relevant fingerprint) →
      feedback-independent :class:`_PoolStructure` snapshot.  Lookups
      return an independent snapshot per caller so no two sessions share
      mutable dicts.

    Every operation carries the version the caller observed *before* it
    started computing, and every stored entry is stamped with the version
    it was published under.  :meth:`bump_version` (the full-flush
    mutation signal) increments the version and empties both layers, and
    any read or publication stamped with an older version is refused — a
    session that raced the mutation can neither read nor write stale
    state.  The entry stamps close the historical race where a reader
    observing the *new* version between the increment and the stripe
    clears passed the staleness check and was served pre-mutation pairs:
    a lookup now also requires the entry's own publication stamp to match
    the caller's version, so un-cleared old entries are invisible the
    instant the version moves.

    Epoched store mutation (:meth:`GroupSpaceRuntime.apply_deltas`) does
    *not* bump the version: entries are content-addressed, so only the
    fingerprints whose content actually changed go stale —
    :meth:`invalidate_fingerprints` drops exactly those, leaving the rest
    warm for both old-epoch readers still draining and new-epoch
    sessions.
    """

    def __init__(
        self,
        pair_capacity: int = 400_000,
        structure_capacity: int = 64,
        stripes: Optional[int] = None,
        fanout: Optional[int] = None,
    ) -> None:
        if pair_capacity < 0 or structure_capacity < 0:
            raise ValueError("capacities must be >= 0")
        if stripes is None:
            # Adaptive default: sized from the core count and (when the
            # owning runtime passes one) the space's pair fan-out.  An
            # explicit ``stripes`` keeps the fixed pre-adaptive sizing.
            stripes = adaptive_stripe_count(fanout)
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self.pair_capacity = pair_capacity
        self.structure_capacity = structure_capacity
        self.n_stripes = stripes
        # 0 disables the pair layer outright; otherwise every stripe gets
        # at least one slot so tiny capacities still cache something.
        self._stripe_capacity = (
            max(pair_capacity // stripes, 1) if pair_capacity else 0
        )
        # Stripe values are (publication version, similarity): the stamp
        # is what makes bump_version race-free (see class docstring).
        self._stripes: list[dict[tuple, tuple[int, float]]] = [
            {} for _ in range(stripes)
        ]
        self._stripe_locks = [threading.Lock() for _ in range(stripes)]
        self._structures: "OrderedDict[tuple, tuple[int, _PoolStructure]]" = (
            OrderedDict()
        )
        self._structures_lock = threading.Lock()
        self._version_lock = threading.Lock()
        # Counters are read-modify-write, so they take this lock — an
        # unguarded `+= ` would silently lose increments under exactly
        # the thread contention this cache exists to serve.
        self._stats_lock = threading.Lock()
        self._version = 0
        self.pair_hits = 0
        self.pair_misses = 0
        self.structure_hits = 0
        self.structure_misses = 0
        self.stale_rejections = 0

    def _count(self, counter: str, amount: int = 1) -> None:
        with self._stats_lock:
            setattr(self, counter, getattr(self, counter) + amount)

    # -- versioning ------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    def bump_version(self) -> int:
        """Invalidate everything: a full-flush mutation makes all entries
        stale.

        Increments the version (publications that observed the old
        version are refused from this point on), then empties both
        layers under their locks.  Entry-level publication stamps make
        the ordering safe: a reader that observes the new version before
        a stripe is cleared still cannot be served an old entry, because
        the entry's stamp no longer matches (the pre-stamp
        implementation had exactly that race).  Returns the new version.
        """
        with self._version_lock:
            self._version += 1
            version = self._version
        for lock, stripe in zip(self._stripe_locks, self._stripes):
            with lock:
                stripe.clear()
        with self._structures_lock:
            self._structures.clear()
        return version

    def invalidate_fingerprints(self, stale: frozenset | set) -> int:
        """Drop exactly the entries whose content went stale (epoch apply).

        ``stale`` is a set of group fingerprints whose member content
        changed or disappeared in a mutation.  Pair entries touching any
        stale fingerprint and structure snapshots whose pool references
        one are removed; everything else stays warm and the version does
        *not* move — unchanged content is still exactly what a fresh
        computation would produce, for old-epoch and new-epoch readers
        alike.  Returns the number of entries dropped.
        """
        if not stale:
            return 0
        dropped = 0
        for lock, stripe in zip(self._stripe_locks, self._stripes):
            with lock:
                doomed = [
                    key
                    for key in stripe
                    if key[0] in stale or key[1] in stale
                ]
                for key in doomed:
                    del stripe[key]
                dropped += len(doomed)
        with self._structures_lock:
            doomed = [
                key
                for key in self._structures
                if any(fingerprint in stale for fingerprint in key[0])
            ]
            for key in doomed:
                del self._structures[key]
            dropped += len(doomed)
        return dropped

    # -- pair layer ------------------------------------------------------

    def _stripe_of(self, key: tuple) -> int:
        return hash(key) % self.n_stripes

    def get_pairs(self, keys: list[tuple], version: int) -> dict[tuple, float]:
        """Batched pair lookup; ``{}`` when ``version`` is stale.

        Groups the keys by stripe so each stripe lock is taken at most
        once per call.
        """
        if version != self._version:
            self._count("stale_rejections")
            return {}
        by_stripe: dict[int, list[tuple]] = {}
        for key in keys:
            by_stripe.setdefault(self._stripe_of(key), []).append(key)
        found: dict[tuple, float] = {}
        for stripe_index, stripe_keys in by_stripe.items():
            stripe = self._stripes[stripe_index]
            with self._stripe_locks[stripe_index]:
                if version != self._version:
                    self._count("stale_rejections")
                    return {}
                for key in stripe_keys:
                    entry = stripe.get(key)
                    # The publication stamp must match too: an entry
                    # published under an older version may not have been
                    # swept out yet when the caller observed the new one.
                    if entry is not None and entry[0] == version:
                        found[key] = entry[1]
        self._count("pair_hits", len(found))
        self._count("pair_misses", len(keys) - len(found))
        return found

    def publish_pairs(self, entries: dict[tuple, float], version: int) -> bool:
        """Publish pair similarities observed at ``version``.

        Returns False (and writes nothing) when the version is stale.
        Publication into a full stripe simply stops — the layer is a
        bounded accelerator, not a store of record.
        """
        if version != self._version:
            self._count("stale_rejections")
            return False
        by_stripe: dict[int, list[tuple]] = {}
        for key in entries:
            by_stripe.setdefault(self._stripe_of(key), []).append(key)
        for stripe_index, stripe_keys in by_stripe.items():
            stripe = self._stripes[stripe_index]
            with self._stripe_locks[stripe_index]:
                if version != self._version:
                    self._count("stale_rejections")
                    return False
                for key in stripe_keys:
                    if len(stripe) >= self._stripe_capacity and key not in stripe:
                        break
                    stripe[key] = (version, entries[key])
        return True

    # -- structure layer -------------------------------------------------

    def lookup_structure(
        self, key: tuple, version: int
    ) -> Optional[_PoolStructure]:
        """An independent snapshot of a published structure, or ``None``.

        The returned snapshot shares only immutable arrays with the
        stored one; its mutable dicts are fresh, so the caller may
        materialize columns without synchronization.
        """
        if version != self._version:
            self._count("stale_rejections")
            return None
        with self._structures_lock:
            if version != self._version:
                self._count("stale_rejections")
                return None
            stored = self._structures.get(key)
            if stored is None or stored[0] != version:
                self._count("structure_misses")
                return None
            self._structures.move_to_end(key)
            self._count("structure_hits")
            return stored[1].snapshot()

    def publish_structure(
        self, key: tuple, structure: _PoolStructure, version: int
    ) -> bool:
        """Store a snapshot of ``structure`` for other sessions (LRU-bounded)."""
        if version != self._version or self.structure_capacity == 0:
            if version != self._version:
                self._count("stale_rejections")
            return False
        snapshot = structure.snapshot()
        with self._structures_lock:
            if version != self._version:
                self._count("stale_rejections")
                return False
            self._structures[key] = (version, snapshot)
            self._structures.move_to_end(key)
            while len(self._structures) > self.structure_capacity:
                self._structures.popitem(last=False)
        return True

    # -- introspection ---------------------------------------------------

    def pair_entries(self) -> int:
        return sum(len(stripe) for stripe in self._stripes)

    def stripe_occupancy(self) -> list[int]:
        """Entries per stripe, each read under its own lock.

        The per-stripe view the global counters hide: a replica whose
        key hashing degenerates (or whose stripe count was sized for a
        different fan-out) shows up as a skewed histogram here long
        before ``pair_entries`` looks wrong.
        """
        occupancy = []
        for stripe, lock in zip(self._stripes, self._stripe_locks):
            with lock:
                occupancy.append(len(stripe))
        return occupancy

    def stats(self) -> dict[str, object]:
        occupancy = self.stripe_occupancy()
        return {
            "version": self._version,
            "stripes": self.n_stripes,
            "pair_entries": sum(occupancy),
            "stripe_capacity": self._stripe_capacity,
            "stripe_entries": occupancy,
            "stripe_min": min(occupancy) if occupancy else 0,
            "stripe_max": max(occupancy) if occupancy else 0,
            "pair_hits": self.pair_hits,
            "pair_misses": self.pair_misses,
            "structures": len(self._structures),
            "structure_hits": self.structure_hits,
            "structure_misses": self.structure_misses,
            "stale_rejections": self.stale_rejections,
        }

    def __repr__(self) -> str:
        return (
            f"SharedPairCache(v{self._version}, {self.pair_entries()} pairs, "
            f"{len(self._structures)}/{self.structure_capacity} structures)"
        )


class StoreEpoch:
    """One immutable generation of a group space's serving artifacts.

    A mutation (:meth:`GroupSpaceRuntime.apply_deltas`) never edits the
    live space or index in place — it builds a *new* epoch (space, index,
    membership digest) and atomically swaps it in.  Sessions pin the
    epoch they were opened (or resumed) under, so in-flight clicks and
    untimed parity oracles keep reading a consistent generation until
    they drain; durable checkpoints and journal records stamp the pinned
    epoch's number and digest so recovery replays against the right
    space generation.
    """

    __slots__ = ("number", "space", "index", "parent_digest", "_digest", "_lock")

    def __init__(
        self,
        number: int,
        space: GroupSpace,
        index: SimilarityIndex,
        parent_digest: Optional[str] = None,
        digest: Optional[str] = None,
    ) -> None:
        self.number = number
        self.space = space
        self.index = index
        self.parent_digest = parent_digest
        self._digest = digest
        self._lock = threading.Lock()

    def digest(self) -> str:
        """The epoch's sha256 membership digest, computed once."""
        from repro.core.store import space_digest

        with self._lock:
            if self._digest is None:
                self._digest = space_digest(self.space.memberships())
            return self._digest

    def __repr__(self) -> str:
        return f"StoreEpoch(#{self.number}, {len(self.space)} groups)"


class GroupSpaceRuntime:
    """Shared serving artifacts for all sessions over one group space.

    Owns what §II computes offline once and serves to every analyst: the
    group space, the partially materialized similarity index (built with
    the batched lexsort ranking, so construction scales to very large
    spaces), the pooled membership CSR behind it, and the cross-session
    :class:`SharedPairCache`.  The space/index pair lives in a
    :class:`StoreEpoch`; :meth:`apply_deltas` swaps in a delta-maintained
    new epoch without ever stalling readers, while the legacy
    :meth:`bump_version` full flush remains for wholesale re-discovery.

    ``share_cache=False`` produces a private runtime (the implicit one a
    standalone :class:`~repro.core.session.ExplorationSession` builds for
    itself): same ownership structure, no cross-session layer.
    """

    def __init__(
        self,
        space: GroupSpace,
        index: Optional[SimilarityIndex] = None,
        materialize_fraction: float = 0.10,
        shared: Optional[SharedPairCache] = None,
        share_cache: bool = True,
        name: Optional[str] = None,
        cache_stripes: Optional[int] = None,
        retain_epochs: int = 4,
    ) -> None:
        #: Routing identity when this runtime is hosted by a
        #: :class:`repro.spaces.SpaceRegistry`; session checkpoints are
        #: stamped with it so state saved under one space name can never
        #: be resumed onto another space (``None`` for anonymous
        #: single-space runtimes — the pre-registry deployments).
        self.name = name
        index = index or SimilarityIndex(
            space.memberships(),
            space.dataset.n_users,
            materialize_fraction=materialize_fraction,
        )
        if index.n_groups != len(space):
            raise ValueError(
                f"index covers {index.n_groups} groups, "
                f"space has {len(space)}"
            )
        if retain_epochs < 1:
            raise ValueError("retain_epochs must be >= 1")
        self.retain_epochs = retain_epochs
        self._epoch = StoreEpoch(0, space, index)
        #: Recent epochs by number (newest last), the current one always
        #: included: an evicted session checkpointed under an older epoch
        #: can resume — and replay its journal — against the exact
        #: generation it was exploring, as long as it is retained.
        self._retained: "OrderedDict[int, StoreEpoch]" = OrderedDict(
            [(0, self._epoch)]
        )
        self._mutate_lock = threading.Lock()
        self.shared: Optional[SharedPairCache] = (
            shared
            if shared is not None
            # The pair fan-out a session can publish under is bounded by
            # the space size, so pass it to the adaptive stripe sizing
            # (an explicit ``cache_stripes`` keeps the fixed layout).
            else SharedPairCache(stripes=cache_stripes, fanout=len(space))
            if share_cache
            else None
        )
        self._private_version = 0
        self._sessions_opened = 0
        self._opened_lock = threading.Lock()

    # -- epochs ----------------------------------------------------------

    @property
    def space(self) -> GroupSpace:
        """The current epoch's group space (pin via :meth:`current_epoch`)."""
        return self._epoch.space

    @property
    def index(self) -> SimilarityIndex:
        """The current epoch's similarity index."""
        return self._epoch.index

    @property
    def epoch(self) -> int:
        """The current epoch number (0 until the first mutation)."""
        return self._epoch.number

    def current_epoch(self) -> StoreEpoch:
        """The live epoch as one atomic object.

        Sessions read this exactly once at construction so their space,
        index and digest are guaranteed to belong to the same generation
        even when a mutation lands mid-open.
        """
        return self._epoch

    def resolve_digest(self, digest: str) -> Optional[StoreEpoch]:
        """The retained epoch with this membership digest, if any.

        The recovery hook: a checkpoint or journal stamped with an older
        epoch's digest replays against that exact generation instead of
        being refused, as long as the epoch is still retained (newest
        epochs are consulted first; beyond ``retain_epochs`` the caller
        gets ``None`` and refuses with an epoch-aware error).
        """
        with self._mutate_lock:
            epochs = list(self._retained.values())
        for epoch in reversed(epochs):
            if epoch.digest() == digest:
                return epoch
        return None

    def apply_deltas(self, delta, verify: bool = False) -> dict[str, object]:
        """Apply a :class:`~repro.core.group.GroupDelta` as a new epoch.

        Builds the mutated space (gids compacted), delta-maintains the
        similarity index (only rows touching changed groups recompute —
        ``verify=True`` additionally builds the full-rebuild oracle and
        asserts bitwise prefix parity), invalidates the shared cache
        *per content fingerprint* (no version bump: unchanged entries
        stay warm), and atomically publishes the new
        :class:`StoreEpoch`.  Readers are never blocked: sessions opened
        before the swap keep serving their pinned epoch until they
        drain.  Concurrent mutations serialize on one lock.  Returns a
        mutation report (epoch number, digest, counts, timing).
        """
        from repro.core.group import apply_group_delta
        from repro.core.poolcache import group_fingerprint

        started = time.perf_counter()
        with self._mutate_lock:
            old = self._epoch
            if delta.is_empty():
                return {
                    "epoch": old.number,
                    "digest": old.digest(),
                    "parent_digest": old.parent_digest,
                    "n_groups": len(old.space),
                    "added": 0,
                    "removed": 0,
                    "changed": 0,
                    "cache_entries_dropped": 0,
                    "apply_ms": (time.perf_counter() - started) * 1000.0,
                }
            new_space, old_to_new, changed_old, changed_new = apply_group_delta(
                old.space, delta
            )
            new_index = old.index.apply_delta(
                new_space.memberships(), changed_new, changed_old, old_to_new
            )
            if verify:
                oracle = SimilarityIndex(
                    new_space.memberships(),
                    new_space.dataset.n_users,
                    materialize_fraction=old.index.materialize_fraction,
                )
                if not new_index.parity_with(oracle):
                    raise RuntimeError(
                        "delta-maintained index diverged from the "
                        "full-rebuild oracle; refusing to publish the epoch"
                    )
            # Only the fingerprints whose *content* went stale: removed
            # and churned groups.  Shifted-but-identical groups keep
            # their entries (their old fingerprints still describe the
            # old-epoch readers' reality, and their new fingerprints
            # simply miss and repopulate).
            stale = frozenset(
                group_fingerprint(old.space[int(gid)]) for gid in changed_old
            )
            dropped = (
                self.shared.invalidate_fingerprints(stale)
                if self.shared is not None
                else 0
            )
            epoch = StoreEpoch(
                old.number + 1, new_space, new_index, parent_digest=old.digest()
            )
            self._epoch = epoch
            self._retained[epoch.number] = epoch
            while len(self._retained) > self.retain_epochs:
                self._retained.popitem(last=False)
        return {
            "epoch": epoch.number,
            "digest": epoch.digest(),
            "parent_digest": epoch.parent_digest,
            "n_groups": len(new_space),
            "added": len(delta.added),
            "removed": len(delta.removed),
            "changed": len(delta.changed),
            "cache_entries_dropped": dropped,
            "apply_ms": (time.perf_counter() - started) * 1000.0,
        }

    def adopt_epoch(
        self,
        space: GroupSpace,
        index: SimilarityIndex,
        stale_gids=(),
        digest: Optional[str] = None,
        epoch_number: Optional[int] = None,
    ) -> dict[str, object]:
        """Publish an externally built (space, index) pair as a new epoch.

        The replica-side half of :meth:`apply_deltas`: when the mutation
        was applied elsewhere (the replication parent) and this runtime
        receives the finished artifacts — typically attached zero-copy
        from a shared-memory arena — it swaps them in with the same
        contract: readers never block, pinned sessions keep their old
        epoch, and only the shared-cache entries whose content went
        stale are dropped.  ``stale_gids`` name the *current* (old)
        epoch's groups whose membership changed or vanished; their
        fingerprints are computed against this process's own space (pool
        fingerprints are process-local, so the publisher cannot compute
        them for us).  ``digest`` seeds the new epoch's digest when the
        publisher already knows it (arena attach verified it, so it is
        authoritative).
        """
        from repro.core.poolcache import group_fingerprint

        started = time.perf_counter()
        with self._mutate_lock:
            old = self._epoch
            stale = frozenset(
                group_fingerprint(old.space[int(gid)])
                for gid in stale_gids
                if 0 <= int(gid) < len(old.space)
            )
            dropped = (
                self.shared.invalidate_fingerprints(stale)
                if self.shared is not None and stale
                else 0
            )
            number = (
                epoch_number if epoch_number is not None else old.number + 1
            )
            epoch = StoreEpoch(
                number,
                space,
                index,
                parent_digest=old.digest(),
                digest=digest,
            )
            self._epoch = epoch
            self._retained[epoch.number] = epoch
            while len(self._retained) > self.retain_epochs:
                self._retained.popitem(last=False)
        return {
            "epoch": epoch.number,
            "digest": epoch.digest(),
            "parent_digest": epoch.parent_digest,
            "n_groups": len(space),
            "cache_entries_dropped": dropped,
            "apply_ms": (time.perf_counter() - started) * 1000.0,
        }

    # -- versioning ------------------------------------------------------

    @property
    def version(self) -> int:
        """Monotone generation counter of the underlying group space."""
        if self.shared is not None:
            return self.shared.version
        return self._private_version

    def bump_version(self) -> int:
        """Signal a wholesale store mutation: all shared artifacts stale.

        The legacy full-flush path (re-discovery replacing the space
        outright); incremental group add/remove/member-churn should go
        through :meth:`apply_deltas`, which invalidates per fingerprint
        instead.
        """
        self._private_version += 1
        if self.shared is not None:
            return self.shared.bump_version()
        return self._private_version

    def membership_digest(self) -> str:
        """The current epoch's sha256 membership digest (computed once).

        Durable session checkpoints stamp every payload with their
        session's *pinned* epoch digest; hashing the whole space on
        every click would put an O(total members) pass on the serving
        hot path, so each :class:`StoreEpoch` computes it lazily and
        exactly once.
        """
        return self._epoch.digest()

    # -- shared artifacts ------------------------------------------------

    def membership_csr(self) -> sparse.csr_matrix:
        """The pooled group×user membership matrix (one per epoch)."""
        return self.index.membership_csr()

    def session_cache(
        self,
        capacity: int = 32,
        result_capacity: int = 64,
        index: Optional[SimilarityIndex] = None,
    ) -> PoolStatsCache:
        """A per-session pool cache wired to this runtime's shared layer.

        ``index`` selects the epoch whose membership CSR seeds the cache
        (a session resumed onto a retained older epoch must slice *that*
        generation's rows); defaults to the current epoch's.
        """
        index = index if index is not None else self.index
        return PoolStatsCache(
            capacity=capacity,
            result_capacity=result_capacity,
            space_matrix=index.membership_csr(),
            shared=self.shared,
        )

    def create_session(
        self, config: Optional["SessionConfig"] = None
    ) -> "ExplorationSession":
        """A new exploration session served by this runtime's artifacts."""
        from repro.core.session import ExplorationSession

        with self._opened_lock:
            self._sessions_opened += 1
        return ExplorationSession(config=config, runtime=self)

    @classmethod
    def from_store(
        cls,
        dataset,
        directory: str | Path,
        shared: Optional[SharedPairCache] = None,
        share_cache: bool = True,
        name: Optional[str] = None,
    ) -> "GroupSpaceRuntime":
        """Build a runtime from offline artifacts written by ``discover``.

        Loads the group space and the persisted index (validated against
        the live space's membership digest — a stale store raises here,
        never serves).
        """
        from repro.core.store import load_group_space, load_index

        space = load_group_space(dataset, directory)
        index = load_index(space, directory)
        return cls(
            space, index=index, shared=shared, share_cache=share_cache, name=name
        )

    @classmethod
    def from_arena(
        cls,
        dataset,
        attached,
        shared: Optional[SharedPairCache] = None,
        share_cache: bool = True,
        name: Optional[str] = None,
        retain_epochs: int = 4,
    ) -> "GroupSpaceRuntime":
        """Build a runtime over artifacts attached from a shared arena.

        ``attached`` duck-types the
        :class:`repro.replication.arena.AttachedArena` surface —
        ``group_space(dataset)``, ``similarity_index()``, ``digest`` and
        ``epoch`` — so this module never imports the replication tier.
        The space and index are zero-copy views over the arena's shared
        buffer (the attach already digest-verified them); the genesis
        epoch adopts the arena's digest and epoch number, so resume
        stamps and lineage records agree with the publisher's.
        """
        runtime = cls(
            attached.group_space(dataset),
            index=attached.similarity_index(),
            shared=shared,
            share_cache=share_cache,
            name=name,
            retain_epochs=retain_epochs,
        )
        # The constructor minted epoch 0 with a lazy digest; re-key it
        # to the publisher's numbering so both sides of the replication
        # boundary stamp checkpoints identically.
        genesis = StoreEpoch(
            attached.epoch,
            runtime.space,
            runtime.index,
            digest=attached.digest,
        )
        runtime._epoch = genesis
        runtime._retained = OrderedDict([(genesis.number, genesis)])
        return runtime

    def stats(self) -> dict[str, object]:
        return {
            "name": self.name,
            "groups": len(self.space),
            "users": self.space.dataset.n_users,
            "index_entries": self.index.memory_entries(),
            "version": self.version,
            "epoch": self.epoch,
            "retained_epochs": len(self._retained),
            "sessions_opened": self._sessions_opened,
            "shared": self.shared.stats() if self.shared is not None else None,
        }

    def __repr__(self) -> str:
        shared = "shared" if self.shared is not None else "private"
        return (
            f"GroupSpaceRuntime({len(self.space)} groups, {shared}, "
            f"v{self.version}, {self._sessions_opened} sessions opened)"
        )


def scripted_click_gid(shown: list[Group], visited: set[int]) -> int:
    """The deterministic demo/benchmark walking policy, in one place.

    Click the first displayed group this session has not clicked yet,
    falling back to the first slot when everything on screen was already
    visited; ``visited`` is updated in place.  ``cli serve`` and the
    perf harness's serving section both replay sessions with exactly
    this policy, so they measure the same workload by construction.
    """
    gid = next(
        (group.gid for group in shown if group.gid not in visited),
        shown[0].gid,
    )
    visited.add(gid)
    return gid


class _ManagedSession:
    """One live session plus the lock serializing its interactions.

    ``session`` is ``None`` only during :meth:`SessionManager.open_session`,
    while the slot is reserved under the registry lock but the session is
    still being constructed; the instance lock is held for that whole
    window, so no interaction can observe the placeholder.

    ``token`` is the session's *durable* identity: the name its persisted
    state lives under in the manager's state directory, stable across
    close / idle eviction / process restart (the live ``session_id`` is
    only a handle into this process's registry).  ``last_active`` is the
    monotonic instant of the last interaction, read by the idle sweeper.

    ``journal`` is the session's append-only interaction log
    (journal-durability managers only).  ``retired`` flips — under the
    instance lock — when close/eviction has persisted the final state
    and deregistered the session: an interaction that was blocked on the
    lock while that happened must observe it and refuse, instead of
    mutating an orphan whose changes could never be persisted again.
    """

    __slots__ = (
        "session",
        "lock",
        "clicks",
        "token",
        "last_active",
        "journal",
        "retired",
    )

    def __init__(
        self, session: Optional["ExplorationSession"], token: str = ""
    ) -> None:
        self.session = session
        self.lock = threading.Lock()
        self.clicks = 0
        self.token = token
        self.last_active = time.monotonic()
        self.journal: Optional[SessionJournal] = None
        self.retired = False


class _SessionRollback:
    """Pre-interaction state, captured so a failed durable write can
    restore the session exactly (the 503 contract: "not applied").

    Captures the small mutable layers an interaction touches — history
    cursor/length, feedback snapshot, profile, display.  Governor tiers
    are deliberately left alone on restore: they are a performance memo
    keyed on content, so a stale extra row is harmless while feedback or
    history drift would be corruption.
    """

    __slots__ = (
        "steps",
        "cursor",
        "feedback",
        "displayed",
        "token_weight",
        "visited_gids",
        "steps_observed",
    )

    def __init__(self, session: "ExplorationSession") -> None:
        self.steps = len(session.history)
        current = session.history.current
        self.cursor = current.step_id if current is not None else None
        self.feedback = session.feedback.snapshot()
        self.displayed = list(session._displayed)
        self.token_weight = dict(session.profile.token_weight)
        self.visited_gids = list(session.profile.visited_gids)
        self.steps_observed = session.profile.steps_observed

    def restore(self, session: "ExplorationSession") -> None:
        while len(session.history) > self.steps:
            session.history.discard_last()
        if self.cursor is not None:
            session.history.backtrack(self.cursor)
        session.feedback.restore(self.feedback)
        session.profile.token_weight = dict(self.token_weight)
        session.profile.visited_gids = list(self.visited_gids)
        session.profile.steps_observed = self.steps_observed
        session._displayed = list(self.displayed)


class SessionManager:
    """Thread-safe ``open_session`` / ``click`` / ``close`` service API.

    N concurrent sessions against one :class:`GroupSpaceRuntime`: the
    registry is guarded by one lock, each session's interactions by its
    own, so clicks on *different* sessions proceed concurrently while
    clicks on the *same* session (e.g. a double-submitting client)
    serialize instead of corrupting feedback/history state.  Cross-session
    warmth flows exclusively through the runtime's shared cache — the
    manager never lets one session touch another's state.

    With a ``state_dir`` the manager is *durable*: every session gets a
    resume token, every state-mutating interaction checkpoints the
    session (so a crashed process loses at most the interaction in
    flight), ``close`` and the :meth:`evict_idle` sweeper persist the
    final state, and ``open_session(resume=<token>)`` restores the
    session — feedback, history tree, memo, profile and governor-tier
    state intact, digest-validated against the live space — onto this
    runtime.

    ``durability`` picks *how* interactions are made durable:

    - ``"snapshot"`` (default, the PR 4 behaviour): every interaction
      rewrites the full JSON snapshot — O(session length) per click.
    - ``"journal"``: every interaction appends one fsync'd,
      digest-chained record to the session's
      :class:`~repro.core.journal.SessionJournal` — O(1) per click —
      and every ``compact_every`` interactions (plus on open, resume,
      close and eviction) the journal is folded into a snapshot and
      rotated.  Resume loads the snapshot and replays the verified
      journal tail; resume tokens are unchanged.

    A failed journal append rolls the in-memory interaction back and
    raises a typed :class:`~repro.core.journal.DurabilityError` (HTTP:
    503) — the state the client saw acknowledged is exactly the state
    on disk, never silently more or less.  The manager then flips
    ``degraded`` (surfaced in :meth:`stats`, ``/healthz`` and
    ``/spaces``) and refuses further mutations until :meth:`heal`
    manages a clean checkpoint of every live session.
    """

    def __init__(
        self,
        runtime: GroupSpaceRuntime,
        default_config: Optional["SessionConfig"] = None,
        max_sessions: Optional[int] = None,
        state_dir: Optional[str | Path] = None,
        checkpoint_interactions: bool = True,
        id_prefix: str = "",
        durability: str = "snapshot",
        compact_every: int = 64,
        obs=None,
    ) -> None:
        if max_sessions is not None and max_sessions < 1:
            raise ValueError("max_sessions must be >= 1")
        if durability not in ("snapshot", "journal"):
            raise ValueError(
                f"durability must be 'snapshot' or 'journal', got {durability!r}"
            )
        if durability == "journal" and state_dir is None:
            raise ValueError("durability='journal' needs a state_dir")
        if compact_every < 1:
            raise ValueError("compact_every must be >= 1")
        # Prefixes flow into session ids and from there into resume
        # tokens (which name state directories), so they live under the
        # same alphabet rule as the tokens themselves.
        if id_prefix and (
            len(id_prefix) > 80 or not set(id_prefix) <= _TOKEN_CHARS
        ):
            raise ValueError(
                "id_prefix must be <= 80 chars of [A-Za-z0-9_-]"
            )
        #: Prepended to every minted session id: a
        #: :class:`repro.spaces.SpaceRegistry` gives each space's manager
        #: a distinct prefix so ids (and therefore resume tokens) are
        #: unique across every space one process serves — the property
        #: the multi-space router's session routing rests on.
        self.id_prefix = id_prefix
        self.runtime = runtime
        self.default_config = default_config
        self.max_sessions = max_sessions
        self.state_dir = Path(state_dir) if state_dir is not None else None
        #: Checkpoint after every click/backtrack (durable managers only).
        #: Off, state is written only on close / idle eviction — cheaper,
        #: but a crash loses everything since the session opened.
        self.checkpoint_interactions = checkpoint_interactions
        self.durability = durability
        self.compact_every = compact_every
        #: Sticky durability-failure flag: set when a journal append (or
        #: a final checkpoint) fails; mutations refuse with
        #: :class:`DurabilityError` until :meth:`heal` succeeds.  Reads
        #: keep working — a degraded space is read-only, not down.
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        self.compaction_failures = 0
        self._sessions: dict[str, _ManagedSession] = {}
        self._lock = threading.Lock()
        self._counter = 0
        self._admission_closed = False
        self.sessions_closed = 0
        self.sessions_evicted = 0
        self.sessions_resumed = 0
        #: Space label on every event/metric this manager publishes.
        self.space_label = runtime.name or ""
        #: Optional :class:`repro.obs.Observability` bundle; ``None``
        #: (the default) means zero instrumentation on every code path.
        self.obs = None
        if obs is not None:
            self.attach_obs(obs)

    # -- observability ---------------------------------------------------

    def attach_obs(self, obs) -> None:
        """Wire an observability bundle into this manager.

        Interactions publish typed events (open/click/drill_down/
        backtrack/close/evict/mutate), journal appends feed the latency
        histogram, and the runtime's shared pair cache exports its stats
        as export-time gauges.  Idempotent per bundle is not required —
        attach once, at construction or when a registry builds the
        space.
        """
        if obs is self.obs:
            return
        self.obs = obs
        if obs is None:
            return
        shared = getattr(self.runtime, "shared", None)
        if shared is not None:
            obs.register_shared_cache(self.space_label, shared)

    def _publish(
        self,
        kind: str,
        session_id: str = "",
        detail: Optional[dict] = None,
        elapsed_ms: Optional[float] = None,
    ) -> None:
        obs = self.obs
        if obs is not None:
            obs.publish(
                kind,
                space=self.space_label,
                session_id=session_id,
                detail=detail,
                elapsed_ms=elapsed_ms,
            )

    # -- lifecycle -------------------------------------------------------

    def open_session(
        self,
        config: Optional["SessionConfig"] = None,
        seed_gids: Optional[list[int]] = None,
        resume: Optional[str] = None,
    ) -> tuple[str, list[Group]]:
        """Open a session and show its initial display.

        Returns ``(session_id, initial groups)``; the id addresses every
        later :meth:`click` / :meth:`close`.  Raises
        :class:`SessionLimitError` when ``max_sessions`` live sessions
        already exist (the caller's admission-control signal) — checked
        *before* any session state is constructed, so rejected requests
        stay cheap under exactly the overload admission control exists
        for.

        With ``resume`` (a token a previous :meth:`open_session` /
        :meth:`close` handed out), the session is restored from the state
        directory instead of started fresh: the returned display is the
        one the persisted session was showing, and its history, feedback,
        memo, profile and governor-tier state carry on as if the
        process had never stopped.  Unless ``config`` overrides it, the
        persisted session's own configuration is restored too.  Raises
        :class:`UnknownSessionError` for a token with no persisted state
        and ``ValueError`` when the state was saved against a different
        group space (digest mismatch) or the token is already live.
        """
        self._check_durability()
        if resume is not None:
            if self.state_dir is None:
                raise ValueError("resume needs a manager with a state_dir")
            if seed_gids is not None:
                raise ValueError("resume restores a display; drop seed_gids")
            # Tokens name state directories and arrive over the network:
            # reject anything that is not a token the manager could have
            # minted before it can touch a path (no `..`, no separators).
            if not _valid_token(resume):
                raise UnknownSessionError(resume)
            if not (self.state_dir / resume / "session.json").exists():
                raise UnknownSessionError(resume)
        managed = _ManagedSession(None)
        managed.lock.acquire()  # interactions block until start() finishes
        with self._lock:
            if self._admission_closed:
                # The space registry is retiring this manager: a session
                # admitted now would register on a manager no router can
                # reach (and, without persistence, die silently).  429 is
                # transient — the next open lands on the rebuilt space.
                managed.lock.release()
                raise SessionLimitError(
                    "manager is retiring; retry to reach its replacement"
                )
            if (
                self.max_sessions is not None
                and len(self._sessions) >= self.max_sessions
            ):
                managed.lock.release()
                raise SessionLimitError(
                    f"session limit reached ({self.max_sessions} live sessions)"
                )
            if resume is not None and any(
                existing.token == resume for existing in self._sessions.values()
            ):
                # Checked under the registration lock: two concurrent
                # resumes of one token must not both win and then fight
                # over the same checkpoint file.
                managed.lock.release()
                raise ValueError(
                    f"resume token {resume!r} is already live on this manager"
                )
            self._counter += 1
            session_id = f"{self.id_prefix}s{self._counter:04d}"
            if resume is not None:
                managed.token = resume
            elif self.state_dir is not None:
                managed.token = f"{session_id}-{uuid.uuid4().hex[:12]}"
            else:
                managed.token = session_id
            self._sessions[session_id] = managed
        try:
            if resume is not None:
                from repro.core.store import (
                    load_session_config,
                    load_session_state,
                )

                directory = self.state_dir / resume
                if config is None:
                    config = load_session_config(directory)
                session = self.runtime.create_session(
                    config if config is not None else self.default_config
                )
                managed.session = session
                load_session_state(session, directory)
                if self.durability == "journal":
                    # Recovery = last compacted snapshot (just loaded) +
                    # replay of the verified journal tail; then compact,
                    # folding the tail in and starting a fresh journal.
                    managed.journal = SessionJournal(directory)
                    managed.journal.recover(session)
                    try:
                        managed.journal.compact(session)
                    except OSError as error:
                        raise self._durability_failed(
                            f"post-recovery compaction failed: {error}"
                        ) from error
                shown = session.displayed()
                # Every click records exactly one step with a clicked
                # gid, so the restored counter matches what an
                # uninterrupted session would report in stats/close.
                managed.clicks = sum(
                    1
                    for step in session.history
                    if step.clicked_gid is not None
                )
                with self._lock:
                    self.sessions_resumed += 1
            else:
                session = self.runtime.create_session(
                    config if config is not None else self.default_config
                )
                managed.session = session
                shown = session.start(seed_gids=seed_gids)
                try:
                    self._persist(managed)
                except OSError as error:
                    if self.durability != "journal":
                        raise
                    raise self._durability_failed(
                        f"initial checkpoint failed: {error}"
                    ) from error
        except BaseException:
            with self._lock:
                self._sessions.pop(session_id, None)
            raise
        finally:
            managed.lock.release()
        self._publish(
            "open", session_id, detail={"resumed": resume is not None}
        )
        return session_id, shown

    def _persist(self, managed: _ManagedSession) -> None:
        """Write the session's durable state (no-op without a state_dir).

        Snapshot durability rewrites the full snapshot; journal
        durability *compacts* — snapshot plus journal rotation — which
        is also how a fresh session's journal is created.  Callers hold
        ``managed.lock``, so checkpoints of one session are serialized
        with its interactions and with close/eviction.
        """
        if self.state_dir is None or managed.session is None:
            return
        if self.durability == "journal":
            if managed.journal is None:
                managed.journal = SessionJournal(self.state_dir / managed.token)
            managed.journal.compact(managed.session)
            return
        from repro.core.store import save_session_state

        save_session_state(managed.session, self.state_dir / managed.token)

    def _check_durability(self) -> None:
        """Refuse mutations on a degraded manager (journal mode)."""
        if self.degraded:
            raise DurabilityError(
                "space is durability-degraded "
                f"({self.degraded_reason}); mutations are refused until healed"
            )

    def _durability_failed(self, reason: str) -> DurabilityError:
        """Flip the sticky degraded flag; returns the error to raise."""
        with self._lock:
            self.degraded = True
            self.degraded_reason = reason
        return DurabilityError(f"durable write failed: {reason}")

    def heal(self) -> bool:
        """Try to durably re-checkpoint every live session.

        The operator's (or a probe's) way back from ``degraded`` once
        the disk recovered: every live session is compacted onto a fresh
        journal; only when all succeed does the degraded flag clear.
        Returns whether the manager is healthy afterwards.
        """
        if not self.degraded:
            return True
        with self._lock:
            live = list(self._sessions.values())
        for managed in live:
            with managed.lock:
                if managed.retired or managed.session is None:
                    continue
                try:
                    self._persist(managed)
                except OSError:
                    return False
        with self._lock:
            self.degraded = False
            self.degraded_reason = None
        return True

    def apply_deltas(self, delta, verify: bool = False) -> dict[str, object]:
        """Apply a group delta to the served space as a new epoch.

        The manager-level mutation endpoint: delegates to
        :meth:`GroupSpaceRuntime.apply_deltas` (sessions already open
        keep serving their pinned epoch — no session lock is taken, no
        click stalls), then best-effort appends the mutation report to
        the state directory's epoch lineage so an operator can audit
        which generations this deployment served.
        """
        report = self.runtime.apply_deltas(delta, verify=verify)
        if self.state_dir is not None:
            from repro.core.store import append_epoch_record

            try:
                append_epoch_record(self.state_dir, report)
            except OSError:
                # Lineage is advisory: the mutation itself is in-memory
                # state, not durable state, so a failed audit append
                # must not degrade or roll back the epoch swap.
                pass
        self._publish(
            "mutate",
            detail={
                "epoch": report.get("epoch"),
                "added": report.get("added"),
                "removed": report.get("removed"),
                "changed": report.get("changed"),
            },
            elapsed_ms=report.get("apply_ms"),
        )
        return report

    @staticmethod
    def _summary(
        session_id: str, managed: _ManagedSession, durable: bool
    ) -> dict[str, object]:
        session = managed.session
        return {
            "session_id": session_id,
            "resume_token": managed.token if durable else None,
            "clicks": managed.clicks,
            "steps": len(session.history) if session is not None else 0,
            "cache": (
                session.pool_cache.stats()
                if session is not None and session.pool_cache is not None
                else {}
            ),
        }

    def close(self, session_id: str) -> dict[str, object]:
        """Retire a session; returns its final summary.

        The final state is persisted *before* the session leaves the
        registry, so a failed checkpoint (full disk) leaves the session
        live and the error typed instead of silently dropping state; on
        success later calls raise :class:`UnknownSessionError`, the
        session's private caches die with it (everything it published to
        the shared layer keeps warming other sessions), and on a durable
        manager the summary's ``resume_token`` reopens it later — close
        is an eviction, not an erasure.
        """
        managed = self._managed(session_id)
        with managed.lock:
            if managed.retired:
                raise UnknownSessionError(session_id)
            if self.durability == "journal":
                self._check_durability()
                try:
                    self._persist(managed)
                except OSError as error:
                    raise self._durability_failed(
                        f"final checkpoint failed: {error}"
                    ) from error
            else:
                self._persist(managed)
            managed.retired = True
            with self._lock:
                self._sessions.pop(session_id, None)
                self.sessions_closed += 1
            summary = self._summary(
                session_id, managed, self.state_dir is not None
            )
        self._publish("close", session_id, detail={"clicks": managed.clicks})
        return summary

    def evict_idle(self, idle_seconds: float) -> list[dict[str, object]]:
        """Persist + drop every session idle for ``idle_seconds`` or more.

        The durable twin of admission control: long-gone analysts stop
        holding live-session slots (and their private caches), yet their
        resume tokens still restore them exactly where they left off.
        Returns the evicted sessions' summaries.  Each session is
        persisted (journal mode: compacted) *before* it is deregistered,
        under its own lock — an interaction that held the lock completes
        and is included in the final checkpoint; one that was waiting
        observes the retirement and gets :class:`UnknownSessionError`
        instead of mutating an orphan.  A session whose final checkpoint
        fails stays live for the next sweep rather than being dropped
        with unpersisted state.
        """
        if idle_seconds < 0:
            raise ValueError("idle_seconds must be >= 0")
        now = time.monotonic()
        with self._lock:
            expired = [
                (session_id, managed)
                for session_id, managed in self._sessions.items()
                if now - managed.last_active >= idle_seconds
            ]
        summaries: list[dict[str, object]] = []
        for session_id, managed in expired:
            with managed.lock:
                if managed.retired:
                    continue
                try:
                    self._persist(managed)
                except OSError as error:
                    if self.durability == "journal":
                        self._durability_failed(
                            f"eviction checkpoint failed: {error}"
                        )
                    continue
                managed.retired = True
                with self._lock:
                    self._sessions.pop(session_id, None)
                    self.sessions_evicted += 1
                summaries.append(
                    self._summary(
                        session_id, managed, self.state_dir is not None
                    )
                )
            self._publish(
                "evict", session_id, detail={"clicks": managed.clicks}
            )
        return summaries

    # -- interactions ----------------------------------------------------

    def _managed(self, session_id: str) -> _ManagedSession:
        with self._lock:
            try:
                return self._sessions[session_id]
            except KeyError:
                raise UnknownSessionError(session_id) from None

    @staticmethod
    def _check_live(managed: _ManagedSession, session_id: str) -> None:
        """Caller holds ``managed.lock``: refuse interactions that lost a
        race against close/eviction (the session's final state is already
        persisted; mutating the orphan would silently diverge from it)."""
        if managed.retired:
            raise UnknownSessionError(session_id)

    def _journaled(self, managed: _ManagedSession) -> bool:
        return (
            self.durability == "journal"
            and self.checkpoint_interactions
            and managed.journal is not None
        )

    def _governor_rows(self, managed: _ManagedSession) -> list[tuple]:
        cache = managed.session.pool_cache
        return cache.export_governor_tiers() if cache is not None else []

    def _journal_append(
        self,
        managed: _ManagedSession,
        rollback: _SessionRollback,
        kind: str,
        payload: dict,
    ) -> None:
        """Append one interaction record, rolling back in-memory state on
        failure so the resulting :class:`DurabilityError` means exactly
        "not applied" (a client retry cannot double-apply)."""
        # Stamp the session's pinned epoch so recovery can tell which
        # space generation the interaction ran against (replay ignores
        # the field; the genesis meta digest is the authority).
        payload.setdefault("epoch", managed.session.epoch.number)
        try:
            managed.journal.append(kind, payload)
        except OSError as error:
            rollback.restore(managed.session)
            raise self._durability_failed(
                f"journal append failed: {error}"
            ) from error
        obs = self.obs
        if obs is not None and managed.journal.append_ms:
            obs.journal_append_ms.observe(managed.journal.append_ms[-1])

    def _maybe_compact(self, managed: _ManagedSession) -> None:
        """Fold the journal into a snapshot every ``compact_every``
        interactions.  A failed compaction is counted, not fatal: every
        acknowledged interaction is already durable in the journal, the
        snapshot is just catching up — the next compaction retries."""
        journal = managed.journal
        if journal is None or journal.records_since_compaction < self.compact_every:
            return
        try:
            journal.compact(managed.session)
        except OSError:
            with self._lock:
                self.compaction_failures += 1

    def click(self, session_id: str, gid: int) -> list[Group]:
        """One explorer click, serialized per session."""
        if self.obs is None:
            return self._click(session_id, gid)
        started = time.perf_counter()
        shown = self._click(session_id, gid)
        self._publish(
            "click",
            session_id,
            detail={"gid": gid},
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )
        return shown

    def _click(self, session_id: str, gid: int) -> list[Group]:
        managed = self._managed(session_id)
        with managed.lock:
            self._check_live(managed, session_id)
            if self._journaled(managed):
                self._check_durability()
                rollback = _SessionRollback(managed.session)
                pre_rows = set(self._governor_rows(managed))
                shown = managed.session.click(gid)
                record = {
                    "gid": gid,
                    "shown": [group.gid for group in shown],
                }
                new_rows = [
                    row
                    for row in self._governor_rows(managed)
                    if row not in pre_rows
                ]
                if new_rows:
                    record["governor"] = [
                        [structure_key, list(config_key), tier]
                        for structure_key, config_key, tier in new_rows
                    ]
                self._journal_append(managed, rollback, "click", record)
                managed.clicks += 1
                managed.last_active = time.monotonic()
                self._maybe_compact(managed)
                return shown
            shown = managed.session.click(gid)
            managed.clicks += 1
            managed.last_active = time.monotonic()
            if self.checkpoint_interactions:
                self._persist(managed)
            return shown

    def backtrack(self, session_id: str, step_id: int) -> list[Group]:
        if self.obs is None:
            return self._backtrack(session_id, step_id)
        started = time.perf_counter()
        shown = self._backtrack(session_id, step_id)
        self._publish(
            "backtrack",
            session_id,
            detail={"step_id": step_id},
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
        )
        return shown

    def _backtrack(self, session_id: str, step_id: int) -> list[Group]:
        managed = self._managed(session_id)
        with managed.lock:
            self._check_live(managed, session_id)
            if self._journaled(managed):
                self._check_durability()
                rollback = _SessionRollback(managed.session)
                shown = managed.session.backtrack(step_id)
                self._journal_append(
                    managed, rollback, "backtrack", {"step_id": step_id}
                )
                managed.last_active = time.monotonic()
                self._maybe_compact(managed)
                return shown
            shown = managed.session.backtrack(step_id)
            managed.last_active = time.monotonic()
            if self.checkpoint_interactions:
                self._persist(managed)
            return shown

    def displayed(self, session_id: str) -> list[Group]:
        managed = self._managed(session_id)
        with managed.lock:
            self._check_live(managed, session_id)
            # Reads count as activity too: an analyst polling the display
            # (or STATS below) is present and must not be evicted as idle.
            managed.last_active = time.monotonic()
            return managed.session.displayed()

    def drill_down(self, session_id: str, gid: int):
        """Member user indices of one group (the STATS/Focus-view read)."""
        if self.obs is None:
            return self._drill_down(session_id, gid)
        members = self._drill_down(session_id, gid)
        self._publish("drill_down", session_id, detail={"gid": gid})
        return members

    def _drill_down(self, session_id: str, gid: int):
        managed = self._managed(session_id)
        with managed.lock:
            self._check_live(managed, session_id)
            managed.last_active = time.monotonic()
            members = managed.session.drill_down(gid)
            if self._journaled(managed) and not self.degraded:
                # Best-effort event-stream record (a replication feed
                # wants the full interaction sequence): drill-down
                # mutates nothing durable, so it is written unsynced and
                # a failure is ignored — the next synced append either
                # flushes it or surfaces the disk problem on a mutation.
                try:
                    managed.journal.append(
                        "drill_down", {"gid": gid}, sync=False
                    )
                except (OSError, JournalBrokenError):
                    pass
            return members

    def session_stats(self, session_id: str) -> dict[str, object]:
        """One live session's service-visible counters."""
        managed = self._managed(session_id)
        with managed.lock:
            managed.last_active = time.monotonic()
            session = managed.session
            return {
                "session_id": session_id,
                "resume_token": (
                    managed.token if self.state_dir is not None else None
                ),
                "clicks": managed.clicks,
                "steps": len(session.history),
                "displayed": session.displayed_gids(),
                "feedback_entries": len(session.feedback),
                "memo": len(session.memo),
                "cache": (
                    session.pool_cache.stats()
                    if session.pool_cache is not None
                    else {}
                ),
            }

    def resume_token(self, session_id: str) -> Optional[str]:
        """The durable token of a live session (``None`` when not durable)."""
        if self.state_dir is None:
            return None
        return self._managed(session_id).token

    def session_journal(self, session_id: str) -> Optional[SessionJournal]:
        """A live session's journal (``None`` outside journal mode)."""
        return self._managed(session_id).journal

    def session(self, session_id: str) -> "ExplorationSession":
        """Direct access to a live session (single-threaded callers only)."""
        return self._managed(session_id).session

    def close_admission(self) -> int:
        """Atomically stop admitting sessions; returns the live count.

        The space registry's eviction primitive: once this returns, no
        ``open_session`` can add a session (opens raise
        :class:`SessionLimitError`), so the returned count is exact — an
        eviction that then checkpoints (or, counted zero, drops) the
        manager cannot race a concurrent open into silent session loss.
        """
        with self._lock:
            self._admission_closed = True
            return len(self._sessions)

    def reopen_admission(self) -> None:
        """Undo :meth:`close_admission` (an eviction that stood down)."""
        with self._lock:
            self._admission_closed = False

    # -- introspection ---------------------------------------------------

    def has_session(self, session_id: str) -> bool:
        """Whether ``session_id`` is live on this manager (no side effects).

        The multi-space router resolves a session id to its manager with
        this; unlike :meth:`_managed` it neither raises nor touches
        activity timestamps, so probing N managers stays cheap.
        """
        with self._lock:
            return session_id in self._sessions

    def session_ids(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def stats(self) -> dict[str, object]:
        with self._lock:
            live = len(self._sessions)
            clicks = sum(managed.clicks for managed in self._sessions.values())
        return {
            "live_sessions": live,
            "sessions_closed": self.sessions_closed,
            "sessions_evicted": self.sessions_evicted,
            "sessions_resumed": self.sessions_resumed,
            "durable": self.state_dir is not None,
            "durability": self.durability,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
            "compaction_failures": self.compaction_failures,
            "clicks_in_flight_sessions": clicks,
            "runtime": self.runtime.stats(),
        }

    def __repr__(self) -> str:
        return (
            f"SessionManager({len(self)} live sessions over "
            f"{len(self.runtime.space)} groups)"
        )
