"""MEMO module: the explorer's bookmark collection.

§II-A: *"At any stage of the process, the explorer can bookmark a group or
a user in MEMO.  The analysis ends when the explorer is satisfied with her
collection in MEMO, which serves as her analysis goal."*
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Memo:
    """Bookmarked groups and users, each with an optional note."""

    groups: dict[int, str] = field(default_factory=dict)
    users: dict[int, str] = field(default_factory=dict)

    def bookmark_group(self, gid: int, note: str = "") -> None:
        self.groups[int(gid)] = note

    def bookmark_user(self, user: int, note: str = "") -> None:
        self.users[int(user)] = note

    def remove_group(self, gid: int) -> bool:
        return self.groups.pop(int(gid), None) is not None

    def remove_user(self, user: int) -> bool:
        return self.users.pop(int(user), None) is not None

    def collected_users(self) -> list[int]:
        """Bookmarked user indices, insertion order (the MT-task output)."""
        return list(self.users)

    def collected_groups(self) -> list[int]:
        return list(self.groups)

    @property
    def is_empty(self) -> bool:
        return not self.groups and not self.users

    def __len__(self) -> int:
        return len(self.groups) + len(self.users)

    def __repr__(self) -> str:
        return f"Memo({len(self.groups)} groups, {len(self.users)} users)"
