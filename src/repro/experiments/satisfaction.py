"""Experiment C5: group-based exploration vs browsing individuals.

§III Scenario 2 cites the [5] user study: *"an 80% satisfaction of
exploring rating datasets via user groups in contrast to individuals."*

The driver runs the ST discussion-group hunt with the group-navigating
agent and with the individual-browsing baseline under the same attention
budget, reporting the satisfaction proxy for both arms.
"""

from __future__ import annotations

from repro.agents.scenarios import satisfaction_study
from repro.experiments.common import (
    ExperimentReport,
    bookcrossing_data,
    bookcrossing_space,
)


def run_satisfaction(
    genres: tuple[str, ...] = ("fiction", "romance", "mystery", "fantasy"),
    repeats: int = 5,
) -> ExperimentReport:
    data = bookcrossing_data()
    space = bookcrossing_space()
    groups, individuals = satisfaction_study(
        data, space, genres=genres, repeats=repeats
    )
    rows = [
        {
            "arm": groups.label,
            "satisfaction": groups.mean_satisfaction,
            "completion": groups.completion_rate,
            "mean_iterations": groups.mean_iterations,
            "mean_effort": groups.mean_effort,
        },
        {
            "arm": individuals.label,
            "satisfaction": individuals.mean_satisfaction,
            "completion": individuals.completion_rate,
            "mean_iterations": individuals.mean_iterations,
            "mean_effort": individuals.mean_effort,
        },
    ]
    return ExperimentReport(
        experiment="C5",
        paper_claim="~80% satisfaction via groups, far above individual browsing",
        rows=rows,
        notes="same attention budget per arm; satisfaction = progress (1.0 on completion)",
    )
