"""Experiment F1: the Fig. 1 architecture, timed stage by stage.

The paper's architecture figure has no numbers; reproducing it means
demonstrating the pipeline *exists and flows*: ETL -> group discovery ->
index generation -> group exploration, each stage consuming the previous
stage's output.  The driver reports per-stage wall time and output sizes.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.session import ExplorationSession, SessionConfig
from repro.data.etl import load_dataset
from repro.data.generators.dbauthors import DBAuthorsConfig, generate_dbauthors
from repro.experiments.common import ExperimentReport
from repro.index.inverted import SimilarityIndex


def run_pipeline(n_authors: int = 800, seed: int = 11) -> ExperimentReport:
    """One full offline+online pass over a fresh DB-AUTHORS population."""
    rows: list[dict[str, object]] = []

    started = time.perf_counter()
    data = generate_dbauthors(DBAuthorsConfig(n_authors=n_authors, seed=seed))
    rows.append(
        {
            "stage": "generate (stand-in for raw source)",
            "seconds": time.perf_counter() - started,
            "output": f"{data.dataset.n_users} users / {data.dataset.n_actions} actions",
        }
    )

    with tempfile.TemporaryDirectory() as scratch:
        directory = Path(scratch)
        started = time.perf_counter()
        data.dataset.to_csv(directory)
        result = load_dataset(
            directory / "actions.csv",
            directory / "demographics.csv",
            name="db-authors-etl",
        )
        dataset = result.dataset
        rows.append(
            {
                "stage": "ETL (CSV round-trip + cleaning)",
                "seconds": time.perf_counter() - started,
                "output": (
                    f"{result.action_report.rows_kept} actions kept, "
                    f"{result.action_report.rows_dropped} dropped"
                ),
            }
        )

    started = time.perf_counter()
    space = discover_groups(
        dataset, DiscoveryConfig(method="lcm", min_support=0.05, max_description=3)
    )
    rows.append(
        {
            "stage": "group discovery (LCM)",
            "seconds": time.perf_counter() - started,
            "output": f"{len(space)} groups",
        }
    )

    started = time.perf_counter()
    index = SimilarityIndex(space.memberships(), dataset.n_users, 0.10)
    rows.append(
        {
            "stage": "index generation (10% materialized)",
            "seconds": time.perf_counter() - started,
            "output": f"{index.memory_entries()} entries",
        }
    )

    started = time.perf_counter()
    session = ExplorationSession(space, index, SessionConfig())
    shown = session.start()
    shown = session.click(shown[0].gid)
    session.bookmark_group(shown[0].gid)
    rows.append(
        {
            "stage": "group exploration (start + click + memo)",
            "seconds": time.perf_counter() - started,
            "output": f"{len(session.history)} history steps, showing {len(shown)}",
        }
    )

    return ExperimentReport(
        experiment="F1",
        paper_claim="Fig. 1: ETL -> discovery -> index -> exploration pipeline",
        rows=rows,
    )
