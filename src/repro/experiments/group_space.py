"""Experiment C6: how large is the group space?

§I: *"with only four demographic attributes and five values for each, the
number of user groups will be in the order of 10^6"* — the motivation for
indexes and greedy selection.

The driver reports (a) the combinatorial bounds behind that sentence
(conjunctive cells and the 2^(a·v) token-subset bound the 10^6 figure comes
from) and (b) the number of *actually occupied* closed groups LCM finds as
attributes are added, plus the group graph's connectivity.
"""

from __future__ import annotations

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.graph import build_group_graph, navigation_summary
from repro.core.group import powerset_group_count, theoretical_group_count
from repro.data.dataset import UserDataset
from repro.data.schema import Demographic, Action
from repro.experiments.common import ExperimentReport, dbauthors_data


def run_group_space(max_attributes: int = 6) -> ExperimentReport:
    data = dbauthors_data()
    dataset = data.dataset
    attributes = dataset.attributes

    rows: list[dict[str, object]] = []
    for n_attributes in range(1, max_attributes + 1):
        chosen = attributes[:n_attributes]
        subset = _dataset_with_attributes(dataset, chosen)
        space = discover_groups(
            subset,
            DiscoveryConfig(
                method="lcm",
                min_support=2,
                max_description=n_attributes,
                include_items=False,
            ),
        )
        graph_stats = navigation_summary(build_group_graph(space))
        rows.append(
            {
                "attributes": n_attributes,
                "conjunctive_bound": theoretical_group_count(n_attributes, 5),
                "powerset_bound": f"{powerset_group_count(n_attributes, 5):.0f}",
                "closed_groups": len(space),
                "graph_edges": graph_stats["edges"],
                "components": graph_stats["components"],
            }
        )
    return ExperimentReport(
        experiment="C6",
        paper_claim="4 attributes x 5 values -> group space ~10^6 (2^20 token subsets)",
        rows=rows,
        notes="closed_groups = LCM with min_support=2, demographics only",
    )


def _dataset_with_attributes(
    dataset: UserDataset, attributes: list[str]
) -> UserDataset:
    """Copy of the dataset keeping only the chosen demographic columns."""
    demographics = [
        Demographic(
            dataset.users.label(user), attribute, dataset.demographic_value(user, attribute)
        )
        for attribute in attributes
        for user in range(dataset.n_users)
    ]
    actions = [
        Action(
            dataset.users.label(int(dataset.action_user[i])),
            dataset.items.label(int(dataset.action_item[i])),
            float(dataset.action_value[i]),
        )
        for i in range(dataset.n_actions)
    ]
    return UserDataset.from_records(actions, demographics, name=f"{dataset.name}-sub")
