"""Experiment C11: the Focus view's LDA projection quality.

§II-B: *"VEXUS employs Linear Discriminant Analysis as a dimensionality
reduction approach ... Members whose profile are more similar appear closer
to each other."*

The driver projects the members of a large DB-AUTHORS group into 2-D with
LDA (supervised by an attribute — the structure the Focus view exposes) and
with PCA as the unsupervised baseline, and scores both by silhouette and
Fisher separability.  The claim's shape: LDA ≫ PCA on class structure.
"""

from __future__ import annotations

import numpy as np

from repro.core.features import user_feature_matrix
from repro.experiments.common import ExperimentReport, dbauthors_data, dbauthors_space
from repro.viz.projection import (
    fisher_separability,
    lda_projection,
    pca_projection,
    silhouette_score,
)


def run_projection_quality(
    label_attribute: str = "topic", max_members: int = 600
) -> ExperimentReport:
    data = dbauthors_data()
    space = dbauthors_space()
    dataset = data.dataset

    group = space.largest(1)[0]
    members = group.members[:max_members]
    features = user_feature_matrix(dataset)
    # Exclude the label attribute's own one-hot block: projecting features
    # that literally encode the class would trivialise LDA's job.
    keep = [
        column
        for column, name in enumerate(features.column_names)
        if not name.startswith(f"{label_attribute}=")
    ]
    matrix = features.matrix[members][:, keep]
    labels = np.array(
        [dataset.demographic_value(int(user), label_attribute) for user in members]
    )

    lda = lda_projection(matrix, labels)
    pca = pca_projection(matrix)

    rows = [
        {
            "method": "LDA (paper's choice)",
            "silhouette": silhouette_score(lda.coordinates, labels),
            "fisher_ratio": fisher_separability(lda.coordinates, labels),
            "explained": lda.explained,
        },
        {
            "method": "PCA (baseline)",
            "silhouette": silhouette_score(pca.coordinates, labels),
            "fisher_ratio": fisher_separability(pca.coordinates, labels),
            "explained": pca.explained,
        },
    ]
    return ExperimentReport(
        experiment="C11",
        paper_claim="LDA focus view places similar members close (beats unsupervised)",
        rows=rows,
        notes=(
            f"group '{group.label}' ({len(members)} members), classes = "
            f"{label_attribute}, label's own one-hot block excluded"
        ),
    )
