"""Experiment C9: incremental coordinated views vs naive recomputation.

§II-B *Interoperability*: Crossfilter's *"incremental queries ... prevents
redundant query executions by sub-setting the data under the brush,
on-the-fly"*.

The driver runs the same brush program twice over the STATS view of a
group's members: once with the incremental engine (touching only flipped
records) and once recomputing every histogram from scratch after each
brush, reporting per-brush latency and the speedup.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentReport, bookcrossing_data
from repro.viz.crossfilter import Crossfilter


def run_crossfilter_perf(brush_steps: int = 60) -> ExperimentReport:
    # Crossfilter's advantage is per-record-flipped cost, so the experiment
    # needs a population large enough that full recomputation visibly costs
    # more than the brush deltas.
    dataset = bookcrossing_data(100000, 20000, 400000).dataset
    n = dataset.n_users

    def build() -> tuple[Crossfilter, list, list]:
        crossfilter = Crossfilter(n)
        dimensions = []
        histograms = []
        for attribute in dataset.attributes:
            column = dataset.column(attribute)
            values = np.array(
                [column.value_of(user) for user in range(n)], dtype=object
            )
            dimension = crossfilter.dimension(values, name=attribute)
            dimensions.append(dimension)
            histograms.append(dimension.histogram())
        activity = dataset.user_activity().astype(np.float64)
        dimension = crossfilter.dimension(activity, name="activity")
        dimensions.append(dimension)
        histograms.append(dimension.histogram())
        # Per-user mean rating, rounded as the UI's histogram bins would be.
        sums = np.zeros(n)
        np.add.at(sums, dataset.action_user, dataset.action_value.astype(np.float64))
        counts = np.maximum(dataset.user_activity(), 1)
        mean_rating = np.round(sums / counts, 2)
        dimension = crossfilter.dimension(mean_rating, name="mean_rating")
        dimensions.append(dimension)
        histograms.append(dimension.histogram())
        return crossfilter, dimensions, histograms

    # The brush program mirrors the canonical crossfilter gesture: a range
    # brush *sliding* across the activity axis in small steps (each step
    # flips only the records entering/leaving the window), with an
    # occasional categorical brush and clear.
    crossfilter, dimensions, histograms = build()
    categorical = dimensions[0]
    numeric = dimensions[-1]
    category_values = list(dict(histograms[0].all()))

    program: list[tuple] = []
    window = 0.6
    position = 4.0
    for step in range(brush_steps):
        if step % 17 == 16:
            program.append(("clear", categorical))
        elif step % 11 == 10:
            keep = {category_values[step % len(category_values)]}
            program.append(("in", categorical, keep))
        else:
            # Drag the window 0.1 per frame across the mean-rating axis —
            # the canonical crossfilter gesture; each frame flips only the
            # records entering/leaving at the two edges.
            position = 4.0 + ((position - 4.0) + 0.1) % 5.0
            program.append(("range", numeric, position, position + window))

    # Incremental run.
    incremental_times = []
    for operation in program:
        started = time.perf_counter()
        _apply(operation)
        incremental_times.append(time.perf_counter() - started)

    # Naive run: same program, but recompute every histogram each brush.
    crossfilter2, dimensions2, histograms2 = build()
    remap = {id(dimensions[i]): dimensions2[i] for i in range(len(dimensions))}
    naive_times = []
    for operation in program:
        target = remap[id(operation[1])]
        remapped = (operation[0], target) + operation[2:]
        started = time.perf_counter()
        _apply(remapped)
        for histogram in histograms2:
            histogram.counts = histogram.recompute()
        naive_times.append(time.perf_counter() - started)

    drag_steps = [i for i, op in enumerate(program) if op[0] == "range"]
    repaint_steps = [i for i, op in enumerate(program) if op[0] != "range"]

    def mean_ms(times: list[float], steps: list[int]) -> float:
        return float(np.mean([times[i] for i in steps]) * 1000) if steps else 0.0

    rows = []
    for label, steps in (("drag (small delta)", drag_steps), ("repaint (big delta)", repaint_steps)):
        incremental_ms = mean_ms(incremental_times, steps)
        naive_ms = mean_ms(naive_times, steps)
        rows.append(
            {
                "brush kind": label,
                "incremental_ms": incremental_ms,
                "naive_ms": naive_ms,
                "speedup": naive_ms / max(incremental_ms, 1e-9),
            }
        )
    rows.append(
        {
            "brush kind": "whole program",
            "incremental_ms": float(np.mean(incremental_times) * 1000),
            "naive_ms": float(np.mean(naive_times) * 1000),
            "speedup": float(
                np.sum(naive_times) / max(np.sum(incremental_times), 1e-9)
            ),
        }
    )
    return ExperimentReport(
        experiment="C9",
        paper_claim="incremental queries beat redundant re-execution per brush",
        rows=rows,
        notes=f"{brush_steps}-step brush program over {n} users, "
        f"{len(histograms)} coordinated histograms",
    )


def _apply(operation: tuple) -> None:
    kind = operation[0]
    dimension = operation[1]
    if kind == "range":
        dimension.filter_range(operation[2], operation[3])
    elif kind == "in":
        dimension.filter_in(operation[2])
    else:
        dimension.filter_all()
