"""Shared fixtures for experiment drivers.

Every benchmark regenerates one paper claim; they all need the same two
synthetic datasets and their group spaces.  Builders here are cached per
process so ``pytest benchmarks/`` pays setup once.

``REPRO_SCALE=full`` switches the BookCrossing generator to the paper's
quoted scale (1M ratings) for the experiments that can use it (C10).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.group import GroupSpace
from repro.data.generators.bookcrossing import (
    BookCrossingConfig,
    BookCrossingData,
    generate_bookcrossing,
    paper_scale_config,
)
from repro.data.generators.dbauthors import (
    DBAuthorsConfig,
    DBAuthorsData,
    generate_dbauthors,
)

#: The satisfaction scenario's documented mining resolution (see DESIGN.md):
#: fine enough that niche genre communities have intermediate groups.
BOOKCROSSING_MIN_SUPPORT = 0.015


def full_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "").lower() == "full"


@lru_cache(maxsize=4)
def dbauthors_data(seed: int = 11) -> DBAuthorsData:
    return generate_dbauthors(DBAuthorsConfig(seed=seed))


@lru_cache(maxsize=4)
def dbauthors_space(seed: int = 11, min_support: float = 0.04) -> GroupSpace:
    return discover_groups(
        dbauthors_data(seed).dataset,
        DiscoveryConfig(method="lcm", min_support=min_support, max_description=3),
    )


@lru_cache(maxsize=4)
def bookcrossing_data(
    n_users: int = 1500, n_items: int = 800, n_ratings: int = 12000, seed: int = 7
) -> BookCrossingData:
    return generate_bookcrossing(
        BookCrossingConfig(
            n_users=n_users, n_items=n_items, n_ratings=n_ratings, seed=seed
        )
    )


@lru_cache(maxsize=4)
def bookcrossing_space(
    n_users: int = 1500,
    n_items: int = 800,
    n_ratings: int = 12000,
    seed: int = 7,
    min_support: float = BOOKCROSSING_MIN_SUPPORT,
) -> GroupSpace:
    return discover_groups(
        bookcrossing_data(n_users, n_items, n_ratings, seed).dataset,
        DiscoveryConfig(
            method="lcm",
            min_support=min_support,
            max_description=3,
            min_item_support=15,
        ),
    )


def paper_scale_bookcrossing() -> BookCrossingData:
    """The full 278,858-user / 1M-rating population (C10 under REPRO_SCALE)."""
    return generate_bookcrossing(paper_scale_config())


@dataclass
class ExperimentReport:
    """Uniform experiment output: identifier, claim, measured rows."""

    experiment: str
    paper_claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def formatted(self) -> str:
        lines = [f"[{self.experiment}] paper: {self.paper_claim}"]
        if self.notes:
            lines.append(f"  note: {self.notes}")
        if self.rows:
            keys = list(self.rows[0])
            widths = {
                key: max(len(str(key)), *(len(_fmt(row.get(key))) for row in self.rows))
                for key in keys
            }
            header = "  " + " | ".join(f"{key:<{widths[key]}}" for key in keys)
            lines.append(header)
            lines.append("  " + "-+-".join("-" * widths[key] for key in keys))
            for row in self.rows:
                lines.append(
                    "  "
                    + " | ".join(f"{_fmt(row.get(key)):<{widths[key]}}" for key in keys)
                )
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
