"""Shared fixtures for experiment drivers.

Every benchmark regenerates one paper claim; they all need the same two
synthetic datasets and their group spaces.  Builders here are cached per
process so ``pytest benchmarks/`` pays setup once.

``REPRO_SCALE=full`` switches the BookCrossing generator to the paper's
quoted scale (1M ratings) for the experiments that can use it (C10).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from functools import lru_cache

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.group import GroupSpace
from repro.core.runtime import GroupSpaceRuntime
from repro.spaces import SpaceDescriptor, SpaceRegistry, valid_space_name
from repro.data.generators.bookcrossing import (
    BookCrossingConfig,
    BookCrossingData,
    generate_bookcrossing,
    paper_scale_config,
)
from repro.data.generators.dbauthors import (
    DBAuthorsConfig,
    DBAuthorsData,
    generate_dbauthors,
)

#: The satisfaction scenario's documented mining resolution (see DESIGN.md):
#: fine enough that niche genre communities have intermediate groups.
BOOKCROSSING_MIN_SUPPORT = 0.015


def full_scale() -> bool:
    return os.environ.get("REPRO_SCALE", "").lower() == "full"


# The cached implementations take every parameter explicitly so the
# public wrappers below normalize default arguments onto one cache key —
# ``dbauthors_space()`` and ``dbauthors_space(11, 0.04)`` must return the
# *same object*, or runtimes and drivers would each get a private copy
# and identity checks (``runtime.space is space``) would fail.


@lru_cache(maxsize=4)
def _dbauthors_data(seed: int) -> DBAuthorsData:
    return generate_dbauthors(DBAuthorsConfig(seed=seed))


def dbauthors_data(seed: int = 11) -> DBAuthorsData:
    return _dbauthors_data(seed)


@lru_cache(maxsize=4)
def _dbauthors_space(seed: int, min_support: float) -> GroupSpace:
    return discover_groups(
        dbauthors_data(seed).dataset,
        DiscoveryConfig(method="lcm", min_support=min_support, max_description=3),
    )


def dbauthors_space(seed: int = 11, min_support: float = 0.04) -> GroupSpace:
    return _dbauthors_space(seed, min_support)


@lru_cache(maxsize=4)
def _bookcrossing_data(
    n_users: int, n_items: int, n_ratings: int, seed: int
) -> BookCrossingData:
    return generate_bookcrossing(
        BookCrossingConfig(
            n_users=n_users, n_items=n_items, n_ratings=n_ratings, seed=seed
        )
    )


def bookcrossing_data(
    n_users: int = 1500, n_items: int = 800, n_ratings: int = 12000, seed: int = 7
) -> BookCrossingData:
    return _bookcrossing_data(n_users, n_items, n_ratings, seed)


@lru_cache(maxsize=4)
def _bookcrossing_space(
    n_users: int,
    n_items: int,
    n_ratings: int,
    seed: int,
    min_support: float,
) -> GroupSpace:
    return discover_groups(
        bookcrossing_data(n_users, n_items, n_ratings, seed).dataset,
        DiscoveryConfig(
            method="lcm",
            min_support=min_support,
            max_description=3,
            min_item_support=15,
        ),
    )


def bookcrossing_space(
    n_users: int = 1500,
    n_items: int = 800,
    n_ratings: int = 12000,
    seed: int = 7,
    min_support: float = BOOKCROSSING_MIN_SUPPORT,
) -> GroupSpace:
    return _bookcrossing_space(n_users, n_items, n_ratings, seed, min_support)


def paper_scale_bookcrossing() -> BookCrossingData:
    """The full 278,858-user / 1M-rating population (C10 under REPRO_SCALE)."""
    return generate_bookcrossing(paper_scale_config())


@lru_cache(maxsize=1)
def experiment_registry() -> SpaceRegistry:
    """The process-wide space registry every experiment runtime lives in.

    Drivers resolve their serving runtimes through it — the same hosting
    subsystem the multi-space server uses.  ``max_ready=8`` keeps the
    memory bound the two retired ``lru_cache(maxsize=4)`` helpers used
    to provide (a parameter sweep does not retain every index it ever
    built; experiment sessions hold no manager slots, so their spaces
    stay evictable).  Each parameterization registers under a
    deterministic token-safe name, and the registry's entry cache
    preserves the one-runtime-per-space identity the old caches
    provided (``runtime.space is dbauthors_space(...)`` still holds:
    builders go through the cached space builders above).
    """
    return SpaceRegistry(build_workers=2, max_ready=8)


def _fraction_token(value: float) -> str:
    """A float knob as a registry-name-safe token (0.04 -> '0040')."""
    return f"{int(round(value * 1000)):04d}"


def _registry_name(stem: str) -> str:
    """``stem`` as a valid space name, digest-compressed when too long.

    Parameter stems stay readable while they fit the 48-char space-name
    limit; paper-scale parameterizations (six-digit user/rating counts)
    overflow it, so the tail is replaced by a sha256 digest of the full
    stem — still deterministic per parameter set, always valid.
    """
    if valid_space_name(stem):
        return stem
    digest = hashlib.sha256(stem.encode("utf-8")).hexdigest()[:16]
    return f"{stem[:31]}-{digest}"


def _resolved_runtime(name: str, builder) -> GroupSpaceRuntime:
    registry = experiment_registry()
    registry.register(
        SpaceDescriptor(name=name, builder=builder), exist_ok=True
    )
    return registry.runtime(name)


def dbauthors_runtime(
    seed: int = 11,
    min_support: float = 0.04,
    materialize_fraction: float = 0.10,
) -> GroupSpaceRuntime:
    """One serving runtime per dbauthors space, shared across drivers.

    Every experiment session created from it reuses the same similarity
    index and cross-session cache — the multi-user serving story the
    drivers now measure instead of rebuilding per-session indexes.
    Resolved through :func:`experiment_registry`, so identical
    parameters return the identical runtime object.
    """
    name = _registry_name(
        f"dbauthors-s{seed}-ms{_fraction_token(min_support)}"
        f"-mf{_fraction_token(materialize_fraction)}"
    )
    return _resolved_runtime(
        name,
        lambda: GroupSpaceRuntime(
            dbauthors_space(seed, min_support),
            materialize_fraction=materialize_fraction,
        ),
    )


def bookcrossing_runtime(
    n_users: int = 1500,
    n_items: int = 800,
    n_ratings: int = 12000,
    seed: int = 7,
    min_support: float = BOOKCROSSING_MIN_SUPPORT,
    materialize_fraction: float = 0.10,
) -> GroupSpaceRuntime:
    """One serving runtime per bookcrossing space (see ``dbauthors_runtime``)."""
    name = _registry_name(
        f"bookcrossing-u{n_users}-i{n_items}-r{n_ratings}-s{seed}"
        f"-ms{_fraction_token(min_support)}"
        f"-mf{_fraction_token(materialize_fraction)}"
    )
    return _resolved_runtime(
        name,
        lambda: GroupSpaceRuntime(
            bookcrossing_space(n_users, n_items, n_ratings, seed, min_support),
            materialize_fraction=materialize_fraction,
        ),
    )


@dataclass
class ExperimentReport:
    """Uniform experiment output: identifier, claim, measured rows."""

    experiment: str
    paper_claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def formatted(self) -> str:
        lines = [f"[{self.experiment}] paper: {self.paper_claim}"]
        if self.notes:
            lines.append(f"  note: {self.notes}")
        if self.rows:
            keys = list(self.rows[0])
            widths = {
                key: max(len(str(key)), *(len(_fmt(row.get(key))) for row in self.rows))
                for key in keys
            }
            header = "  " + " | ".join(f"{key:<{widths[key]}}" for key in keys)
            lines.append(header)
            lines.append("  " + "-+-".join("-" * widths[key] for key in keys))
            for row in self.rows:
                lines.append(
                    "  "
                    + " | ".join(f"{_fmt(row.get(key)):<{widths[key]}}" for key in keys)
                )
        return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
