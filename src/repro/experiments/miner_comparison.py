"""Experiment C13: the four discovery backends the paper names, compared.

§II-A: LCM and α-MOMRI for datasets; STREAMMINING and BIRCH for streams;
*"VEXUS is independent of this process."*  The driver runs all four (plus
the Apriori baseline) on the same population and reports runtime, output
size and a per-method quality signal — demonstrating the independence
boundary really is interchangeable.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.experiments.common import ExperimentReport, bookcrossing_data
from repro.mining.apriori import AprioriConfig, mine_frequent
from repro.mining.itemsets import TransactionDB
from repro.mining.lcm import LCMConfig, mine_closed


def run_miner_comparison(min_support: float = 0.03) -> ExperimentReport:
    dataset = bookcrossing_data().dataset
    rows: list[dict[str, object]] = []

    # Raw miner-level comparison: LCM vs Apriori on identical transactions.
    transactions, vocab = dataset.transactions(min_item_support=15)
    db = TransactionDB(transactions, vocab)
    support = max(2, int(min_support * dataset.n_users))

    started = time.perf_counter()
    closed = mine_closed(db, LCMConfig(min_support=support, max_items=3))
    lcm_seconds = time.perf_counter() - started
    rows.append(
        {
            "method": "LCM (closed)",
            "seconds": lcm_seconds,
            "groups": len(closed),
            "quality": "exact closed itemsets",
        }
    )

    started = time.perf_counter()
    frequent = mine_frequent(db, AprioriConfig(min_support=support, max_items=3))
    apriori_seconds = time.perf_counter() - started
    rows.append(
        {
            "method": "Apriori (baseline)",
            "seconds": apriori_seconds,
            "groups": len(frequent),
            "quality": f"{len(frequent) / max(len(closed), 1):.1f}x redundant itemsets",
        }
    )

    # Facade-level comparison: each backend to a GroupSpace.
    for method in ("momri", "stream", "birch"):
        started = time.perf_counter()
        space = discover_groups(
            dataset,
            DiscoveryConfig(
                method=method,
                min_support=min_support,
                max_description=3,
                min_item_support=15,
                momri_budget=600,
            ),
        )
        seconds = time.perf_counter() - started
        sizes = [group.size for group in space]
        rows.append(
            {
                "method": {
                    "momri": "alpha-MOMRI (Pareto subset)",
                    "stream": "STREAMMINING (one pass)",
                    "birch": "BIRCH (CF-tree clusters)",
                }[method],
                "seconds": seconds,
                "groups": len(space),
                "quality": (
                    f"mean group size {float(np.mean(sizes)):.0f}" if sizes else "empty"
                ),
            }
        )

    return ExperimentReport(
        experiment="C13",
        paper_claim="LCM / alpha-MOMRI / STREAMMINING / BIRCH all plug into VEXUS",
        rows=rows,
        notes=f"min_support={min_support} on {dataset.n_users} users",
    )
