"""Experiment C8: the STATS drill-down example of §II-B.

§II-B: *"focusing on the group of 'very senior researchers in data
management with a very high number of publications' reveals that 62% of
its members are male ... by brushing on gender to select females and on
publication rate to select 'extremely active' ..., the table lists Elke A.
Rundensteiner ... with 325 publications in 26 years of her career."*

Our DB-AUTHORS stand-in is calibrated to the same numbers (DESIGN.md §4):
the driver rebuilds the group, reads the male share off the STATS
histogram, applies the same two brushes and prints the resulting table —
which must contain exactly one researcher with 325 publications.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentReport, dbauthors_data
from repro.viz.stats import StatsView


def run_stats_drilldown() -> ExperimentReport:
    data = dbauthors_data()
    dataset = data.dataset

    very_senior_dm = dataset.users_matching_all(
        [("seniority", "very-senior"), ("topic", "data management")]
    )
    high_output = np.union1d(
        dataset.users_matching("publication_rate", "highly-active"),
        dataset.users_matching("publication_rate", "extremely-active"),
    )
    group_members = np.intersect1d(very_senior_dm, high_output)

    stats = StatsView(dataset, group_members)
    male_share = stats.share("gender", "male")

    stats.brush("gender", "female")
    stats.brush("publication_rate", "extremely-active")
    table = stats.table(limit=5)

    rows: list[dict[str, object]] = [
        {
            "measure": "group size",
            "paper": "(very senior, data mgmt, very-high pubs)",
            "measured": len(group_members),
        },
        {
            "measure": "male share",
            "paper": "62%",
            "measured": f"{male_share:.1%}",
        },
        {
            "measure": "brushed members (female + extremely active)",
            "paper": "1 (Elke A. Rundensteiner)",
            "measured": stats.selected_count(),
        },
    ]
    for entry in table:
        rows.append(
            {
                "measure": "table row",
                "paper": "325 publications, 26-year career",
                "measured": (
                    f"{entry['user']}: {entry['total_value']:.0f} publications"
                ),
            }
        )
    return ExperimentReport(
        experiment="C8",
        paper_claim="62% male; brushes reveal one extremely active female researcher",
        rows=rows,
    )
