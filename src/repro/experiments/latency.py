"""Experiment C1: interaction latency vs dataset size.

§II-B: *"all interactions in VEXUS occur in O(1), the bottleneck of the
framework is the greedy process"* (whose cost is capped by its time
budget).  The driver measures each interaction across growing populations:
click latency should stay near the greedy budget, and backtrack / memo /
context reads should stay flat (they touch index prefixes and snapshots,
never the group space).
"""

from __future__ import annotations

import time

from repro.core.discovery import DiscoveryConfig, discover_groups
from repro.core.runtime import GroupSpaceRuntime
from repro.core.session import SessionConfig
from repro.data.generators.dbauthors import DBAuthorsConfig, generate_dbauthors
from repro.experiments.common import ExperimentReport


def _timed(operation, repeats: int = 5) -> float:
    """Best-of-N wall time in milliseconds (stable on noisy machines)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        operation()
        best = min(best, time.perf_counter() - started)
    return best * 1000.0


def run_latency(
    scales: tuple[int, ...] = (250, 500, 1000, 2000),
    budget_ms: float = 50.0,
    engine: str = "celf",
    governor: bool = False,
    cache_pools: bool = True,
    http: bool = False,
) -> ExperimentReport:
    """C1 across population scales; ``http=True`` adds the remote arm.

    The remote arm boots the JSON-over-HTTP front
    (:mod:`repro.service`) over the *same* runtime at each scale and
    measures the click round trip a networked analyst pays — the wire
    overhead should be a flat few-hundred-microsecond constant on top of
    the in-process click, independent of population size.
    """
    rows: list[dict[str, object]] = []
    for n_authors in scales:
        data = generate_dbauthors(DBAuthorsConfig(n_authors=n_authors, seed=11))
        space = discover_groups(
            data.dataset,
            DiscoveryConfig(method="lcm", min_support=0.05, max_description=3),
        )
        # One serving runtime per scale: the index is built once and any
        # follow-up session at this scale would share it (§II's offline
        # phase serving many analysts).
        runtime = GroupSpaceRuntime(space)
        session = runtime.create_session(
            SessionConfig(
                k=5,
                time_budget_ms=budget_ms,
                engine=engine,
                governor=governor,
                cache_pools=cache_pools,
            ),
        )
        shown = session.start()
        gid = shown[0].gid

        click_ms = _timed(lambda: session.click(gid), repeats=3)
        selection = session.last_selection
        click_evaluations = selection.evaluations if selection else 0
        governor_tier = selection.governor_tier if selection else 0
        backtrack_ms = _timed(lambda: session.backtrack(0))
        # The HISTORY gesture's follow-up: re-clicking a group after a
        # backtrack restored its context — warm in the session pool cache.
        session.backtrack(0)
        reclick_ms = _timed(lambda: session.click(gid), repeats=3)
        memo_ms = _timed(lambda: session.bookmark_group(gid))
        context_ms = _timed(lambda: session.context.entries(10))
        drill_ms = _timed(lambda: session.drill_down(gid))

        row: dict[str, object] = {
            "users": n_authors,
            "groups": len(space),
            "click_ms": click_ms,
            "reclick_ms": reclick_ms,
            "click_evaluations": click_evaluations,
            "governor_tier": governor_tier,
            "backtrack_ms": backtrack_ms,
            "memo_ms": memo_ms,
            "context_ms": context_ms,
            "drill_ms": drill_ms,
        }
        if http:
            row["http_click_ms"] = _http_click_ms(
                runtime, budget_ms, engine, governor, cache_pools
            )
        rows.append(row)
    return ExperimentReport(
        experiment="C1",
        paper_claim="all interactions O(1); greedy (click) bounded by its budget",
        rows=rows,
        notes=(
            f"greedy budget {budget_ms:.0f} ms, engine={engine}, "
            f"governor={governor}, cache={cache_pools}; "
            "other ops should stay ~constant; reclick = backtracked re-click "
            "(warm in the session pool cache)"
            + ("; http_click = the same click over the network front" if http else "")
        ),
    )


def _http_click_ms(
    runtime: GroupSpaceRuntime,
    budget_ms: float,
    engine: str,
    governor: bool,
    cache_pools: bool,
) -> float:
    """Best-of-N remote click round trip against this runtime's service."""
    from repro.core.runtime import SessionManager
    from repro.service.client import ExplorationClient
    from repro.service.server import ExplorationService

    manager = SessionManager(
        runtime,
        default_config=SessionConfig(
            k=5,
            time_budget_ms=budget_ms,
            engine=engine,
            governor=governor,
            cache_pools=cache_pools,
        ),
    )
    with ExplorationService(manager).start() as service:
        with ExplorationClient(service.host, service.port) as client:
            opened = client.open()
            gid = opened.display[0].gid
            return _timed(
                lambda: client.click(opened.session_id, gid), repeats=3
            )
