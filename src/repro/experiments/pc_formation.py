"""Experiment C4: PC formation in how many iterations?

§III Scenario 1: *"VEXUS enables PC chairs to form committees of major
conferences (SIGMOD, VLDB and CIKM) in less than 10 iterations on
average."*

The driver runs the CollectorExplorer agent per venue (seeded from
venue-flavoured groups, constraints: size + geographic diversity + gender
balance + seniority mix + community membership) and reports iterations and
completion rates.
"""

from __future__ import annotations

from repro.agents.scenarios import pc_formation_study
from repro.core.session import SessionConfig
from repro.experiments.common import (
    ExperimentReport,
    dbauthors_data,
    dbauthors_runtime,
    dbauthors_space,
)


def run_pc_formation(
    venues: tuple[str, ...] = ("SIGMOD", "VLDB", "CIKM"),
    repeats: int = 5,
    committee_size: int = 12,
    engine: str = "celf",
    governor: bool = False,
    cache_pools: bool = True,
) -> ExperimentReport:
    data = dbauthors_data()
    space = dbauthors_space()
    # All venues × repeats run against the one shared serving runtime —
    # the index is built once and every chair's session warms the next.
    outcomes = pc_formation_study(
        data,
        space,
        venues=venues,
        repeats=repeats,
        committee_size=committee_size,
        session_config=SessionConfig(
            engine=engine, governor=governor, cache_pools=cache_pools
        ),
        runtime=dbauthors_runtime(),
    )
    rows = [
        {
            "venue": venue,
            "mean_iterations": outcome.mean_iterations,
            "completion": outcome.completion_rate,
            "mean_effort": outcome.mean_effort,
            "mean_governor_tier": outcome.mean_governor_tier,
            "under_10": outcome.mean_iterations < 10,
        }
        for venue, outcome in outcomes.items()
    ]
    return ExperimentReport(
        experiment="C4",
        paper_claim="PC committees formed in < 10 iterations on average",
        rows=rows,
        notes=(
            f"committee: {committee_size} members, geo/gender/seniority "
            f"constraints; engine={engine}, governor={governor}, "
            f"cache={cache_pools}"
        ),
    )
