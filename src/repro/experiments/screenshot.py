"""Experiment F2: regenerate the Fig. 2 screenshot.

Fig. 2 shows the five coordinated panels mid-session on DB-AUTHORS, with
CONTEXT holding ``[cikm][male]`` chips.  The driver scripts that same
session — click into a CIKM-flavoured group so the same kind of chips
appear — and snapshots the dashboard (ASCII) and the GROUPVIZ panel (SVG).
"""

from __future__ import annotations

import numpy as np

from repro.core.session import ExplorationSession, SessionConfig
from repro.experiments.common import ExperimentReport, dbauthors_data, dbauthors_space
from repro.viz.groupviz import Scene, build_scene
from repro.viz.render import render_dashboard, render_scene_svg
from repro.viz.stats import StatsView


def run_screenshot(color_by: str = "gender") -> tuple[ExperimentReport, str, str]:
    """Returns (report, dashboard text, groupviz svg)."""
    data = dbauthors_data()
    space = dbauthors_space()
    session = ExplorationSession(space, config=SessionConfig(k=5))

    shown = session.start()
    # Walk toward a CIKM-centred display, mirroring the figure's context.
    cikm = next(
        (group for group in shown if "item:CIKM" in group.description), None
    )
    if cikm is None:
        candidates = [g for g in space if "item:CIKM" in g.description]
        cikm = max(candidates, key=lambda group: group.size)
    shown = session.click(cikm.gid)
    session.bookmark_group(shown[0].gid, "shortlist")
    if shown[0].size:
        session.bookmark_user(int(shown[0].members[0]), "candidate expert")

    scene = _scene_for(session, color_by)
    stats = StatsView(data.dataset, session.drill_down(shown[0].gid))
    dashboard = render_dashboard(
        scene=scene,
        context_entries=[
            (entry.label, entry.score) for entry in session.context.entries(6)
        ],
        history_labels=[
            f"#{step.clicked_gid}" if step.clicked_gid is not None else "start"
            for step in session.history.path()
        ],
        memo_summary=(
            f"{len(session.memo.groups)} groups, {len(session.memo.users)} users"
        ),
        stats_histograms={
            "gender": stats.histogram("gender"),
            "seniority": stats.histogram("seniority"),
            "topic": stats.histogram("topic"),
        },
        title="VEXUS on DB-AUTHORS (Fig. 2 reproduction)",
    )
    svg = render_scene_svg(scene)

    report = ExperimentReport(
        experiment="F2",
        paper_claim="Fig. 2: GROUPVIZ + CONTEXT + STATS + HISTORY + MEMO in action",
        rows=[
            {"panel": "GROUPVIZ", "content": f"{scene.k} circles, colored by {color_by}"},
            {
                "panel": "CONTEXT",
                "content": ", ".join(
                    entry.label for entry in session.context.entries(4)
                ),
            },
            {
                "panel": "STATS",
                "content": f"{len(stats.histograms())} coordinated histograms",
            },
            {"panel": "HISTORY", "content": f"{len(session.history)} steps"},
            {"panel": "MEMO", "content": f"{len(session.memo)} bookmarks"},
        ],
    )
    return report, dashboard, svg


def _scene_for(session: ExplorationSession, color_by: str) -> Scene:
    shown = session.displayed()
    k = len(shown)
    similarity = np.zeros((k, k))
    for i in range(k):
        for j in range(i + 1, k):
            similarity[i, j] = similarity[j, i] = session.index.similarity(
                shown[i].gid, shown[j].gid
            )
    return build_scene(
        gids=[group.gid for group in shown],
        sizes=[group.size for group in shown],
        labels=[group.label for group in shown],
        memberships=[group.members for group in shown],
        dataset=session.space.dataset,
        color_by=color_by,
        similarity=similarity,
    )
