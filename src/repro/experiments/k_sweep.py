"""Experiment C7: why k ≤ 7 groups per screen?

§II-A cites Miller's law [11]: *"k ≤ 7 is an ideal match for human
perception capacity."*  Computationally, larger k is never worse for the
machine — the point is the *explorer's* effort: each extra circle costs
scan attention, while task success saturates.

The driver sweeps k for the ST discussion-group hunt: completion keeps
rising to a knee around 5-7, while per-session scan effort keeps growing
linearly — so past the knee the explorer pays attention for nothing.
"""

from __future__ import annotations

import numpy as np

from repro.agents.explorer import AgentConfig, TargetSeekingExplorer
from repro.agents.scenarios import discussion_group_target
from repro.core.session import SessionConfig
from repro.core.tasks import SingleTargetTask
from repro.experiments.common import (
    ExperimentReport,
    bookcrossing_runtime,
    bookcrossing_space,
)


def run_k_sweep(
    ks: tuple[int, ...] = (2, 3, 5, 7, 9, 12),
    genres: tuple[str, ...] = ("fiction", "romance", "mystery"),
    repeats: int = 3,
    engine: str = "celf",
    governor: bool = False,
    cache_pools: bool = True,
) -> ExperimentReport:
    space = bookcrossing_space()
    # One serving runtime for the whole sweep: every (k, genre, repeat)
    # session shares the index and cross-session cache, exactly like
    # many readers exploring the same BookCrossing space.
    runtime = bookcrossing_runtime()
    rows: list[dict[str, object]] = []
    for k in ks:
        completions = []
        iterations = []
        efforts = []
        tiers = []
        for genre in genres:
            target = discussion_group_target(space, genre)
            if target is None:
                continue
            for repeat in range(repeats):
                task = SingleTargetTask(space, target_gid=target)
                session = runtime.create_session(
                    SessionConfig(
                        k=k,
                        time_budget_ms=100.0,
                        engine=engine,
                        governor=governor,
                        cache_pools=cache_pools,
                    ),
                )
                agent = TargetSeekingExplorer(
                    task, AgentConfig(seed=repeat, max_iterations=15)
                )
                result = agent.run(session)
                completions.append(1.0 if result.completed else 0.0)
                iterations.append(result.iterations)
                efforts.append(result.effort)
                tiers.extend(result.governor_tiers)
        completion = float(np.mean(completions))
        effort = float(np.mean(efforts))
        rows.append(
            {
                "k": k,
                "completion": completion,
                "mean_iterations": float(np.mean(iterations)),
                "scan_effort": effort,
                "effort_per_success": (
                    effort / completion if completion > 0 else float("inf")
                ),
                "mean_governor_tier": float(np.mean(tiers)) if tiers else 0.0,
            }
        )
    return ExperimentReport(
        experiment="C7",
        paper_claim="k <= 7 matches perception: success saturates, effort keeps growing",
        rows=rows,
        notes=(
            f"engine={engine}, governor={governor}, cache={cache_pools}; "
            "scan_effort = total groups the explorer had to look at"
        ),
    )
