"""Experiment C12: the P2 guard against Simpson's paradox.

§I principle P2: optimized group selection *"prevents statistically false
local discoveries such as Simpson's paradox"*.

The driver constructs a deliberately confounded population — cohort A beats
cohort B on aggregate mean rating, yet B beats A inside *every* age stratum
(the textbook paradox, achievable because cohort A concentrates in the
generous-rating stratum) — then shows the guard flags exactly this
comparison and stays quiet on an unconfounded control.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.simpson import compare_groups, guard_comparison
from repro.data.dataset import UserDataset
from repro.experiments.common import ExperimentReport


def confounded_dataset(
    n_per_cell: int = 100, seed: int = 21
) -> tuple[UserDataset, np.ndarray, np.ndarray]:
    """A population where cohort A > B aggregate but A < B in every stratum.

    Construction (rates in mean rating units):

    ========  ========  =======  ==========
    cohort    stratum   users    mean value
    ========  ========  =======  ==========
    A         senior    3n       8.0   (high-rating stratum, A-heavy)
    B         senior    n        8.6
    A         young     n        4.0   (low-rating stratum, B-heavy)
    B         young     3n       4.6
    ========  ========  =======  ==========

    Aggregate: A = (3·8.0 + 1·4.0)/4 = 7.0 > B = (1·8.6 + 3·4.6)/4 = 5.6,
    yet B wins inside both strata.
    """
    rng = np.random.default_rng(seed)
    cells = [
        ("a", "senior", 3 * n_per_cell, 8.0),
        ("b", "senior", n_per_cell, 8.6),
        ("a", "young", n_per_cell, 4.0),
        ("b", "young", 3 * n_per_cell, 4.6),
    ]
    user_labels: list[str] = []
    cohorts: list[str] = []
    ages: list[str] = []
    values: list[float] = []
    for cohort, age, count, mean in cells:
        for i in range(count):
            user_labels.append(f"{cohort}-{age}-{i}")
            cohorts.append(cohort)
            ages.append(age)
            values.append(float(np.clip(rng.normal(mean, 0.3), 1.0, 10.0)))

    n = len(user_labels)
    dataset = UserDataset.from_arrays(
        user_labels,
        ["the-book"],
        np.arange(n, dtype=np.int64),
        np.zeros(n, dtype=np.int64),
        np.asarray(values),
        demographics={"cohort": cohorts, "age": ages},
        name="simpson-synthetic",
    )
    members_a = dataset.users_matching("cohort", "a")
    members_b = dataset.users_matching("cohort", "b")
    return dataset, members_a, members_b


def run_simpson_guard() -> ExperimentReport:
    dataset, members_a, members_b = confounded_dataset()
    report = compare_groups(dataset, members_a, members_b, confounder="age")
    flagged = guard_comparison(dataset, members_a, members_b)

    rows: list[dict[str, object]] = [
        {
            "view": "aggregate",
            "mean_A": report.aggregate_mean_a,
            "mean_B": report.aggregate_mean_b,
            "winner": "A" if report.aggregate_direction > 0 else "B",
        }
    ]
    for stratum in report.strata:
        rows.append(
            {
                "view": f"stratum {stratum.stratum}",
                "mean_A": stratum.mean_a,
                "mean_B": stratum.mean_b,
                "winner": "A" if stratum.direction > 0 else "B",
            }
        )
    rows.append(
        {
            "view": "guard verdict",
            "mean_A": "-",
            "mean_B": "-",
            "winner": (
                f"PARADOX flagged on {[r.confounder for r in flagged]}"
                if flagged
                else "no paradox"
            ),
        }
    )

    # Control: an unconfounded comparison must not be flagged.
    rng_split = np.concatenate([members_a[::2], members_b[::2]])
    other_split = np.concatenate([members_a[1::2], members_b[1::2]])
    control_flags = guard_comparison(dataset, np.sort(rng_split), np.sort(other_split))
    rows.append(
        {
            "view": "control (random split)",
            "mean_A": "-",
            "mean_B": "-",
            "winner": "flagged (BAD)" if control_flags else "clean (expected)",
        }
    )
    return ExperimentReport(
        experiment="C12",
        paper_claim="P2 prevents statistically false discoveries (Simpson's paradox)",
        rows=rows,
    )
