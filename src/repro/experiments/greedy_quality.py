"""Experiment C2: greedy quality vs time budget.

§II-B: *"We safely set the time limit to 100ms (i.e., continuity preserving
latency) which enables VEXUS to reach in average 90% of diversity and 85%
of coverage."*

The driver sweeps the greedy's budget and reports achieved diversity /
coverage as a share of the *converged* run (unbounded budget, swap phase
run to fixed point) on the same candidate pools — the same normalisation
the paper's percentages imply.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import SelectionConfig, select_k
from repro.experiments.common import (
    ExperimentReport,
    dbauthors_runtime,
    dbauthors_space,
)


def run_greedy_quality(
    budgets_ms: tuple[float, ...] = (2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 200.0, 500.0),
    k: int = 5,
    n_parents: int = 6,
    engine: str = "celf",
    governor: bool = False,
    cache_pools: bool = True,
) -> ExperimentReport:
    space = dbauthors_space()
    # Parents: a spread of large groups whose neighborhoods we re-select.
    parents = space.largest(n_parents)
    # The shared serving runtime owns the (fully materialized) index; the
    # sweep's cache is a session cache on it, so re-running the driver in
    # one process also exercises the cross-session layer.
    runtime = dbauthors_runtime(materialize_fraction=1.0)
    index = runtime.index

    pools = []
    for parent in parents:
        neighbors = index.neighbors(parent.gid, 200)
        pool = [space[neighbor.group] for neighbor in neighbors]
        if len(pool) >= k:
            pools.append((parent, pool))

    # One cache across the whole sweep: the same pools are re-selected per
    # budget, which is exactly the cross-click reuse sessions exhibit.
    cache = (
        runtime.session_cache(capacity=max(len(pools), 1))
        if cache_pools
        else None
    )

    # Reference: converged swap search (no budget, no governor — the
    # normalisation target must stay the plain converged greedy).
    references = []
    for parent, pool in pools:
        reference = select_k(
            pool,
            parent.members,
            config=SelectionConfig(
                k=k, time_budget_ms=None, max_candidates=200, engine=engine
            ),
            cache=cache,
        )
        references.append(reference)

    rows: list[dict[str, object]] = []
    for budget in budgets_ms:
        diversity_ratios = []
        coverage_ratios = []
        diversities = []
        coverages = []
        phases = []
        evaluations = []
        tiers = []
        for (parent, pool), reference in zip(pools, references):
            result = select_k(
                pool,
                parent.members,
                config=SelectionConfig(
                    k=k,
                    time_budget_ms=budget,
                    max_candidates=200,
                    engine=engine,
                    # SelectionConfig raises for reference+governor — the
                    # oracle must error, not silently ignore escalation.
                    governor=governor,
                ),
                cache=cache,
            )
            diversities.append(result.diversity)
            coverages.append(result.coverage)
            diversity_ratios.append(
                result.diversity / reference.diversity if reference.diversity else 1.0
            )
            coverage_ratios.append(
                result.coverage / reference.coverage if reference.coverage else 1.0
            )
            phases.append(result.phases_completed)
            evaluations.append(result.evaluations)
            tiers.append(result.governor_tier)
        rows.append(
            {
                "budget_ms": budget,
                "diversity": float(np.mean(diversities)),
                "coverage": float(np.mean(coverages)),
                "diversity_vs_ref": float(np.mean(diversity_ratios)),
                "coverage_vs_ref": float(np.mean(coverage_ratios)),
                "mean_phase": float(np.mean(phases)),
                "mean_evaluations": float(np.mean(evaluations)),
                "mean_governor_tier": float(np.mean(tiers)),
            }
        )
    return ExperimentReport(
        experiment="C2",
        paper_claim="100 ms budget reaches ~90% diversity and ~85% coverage",
        rows=rows,
        notes=(
            f"engine={engine}, governor={governor}, cache={cache_pools}; "
            "ratios are vs the converged (unbounded) greedy on the same pools"
        ),
    )
