"""Experiment drivers: one per paper figure/claim (see DESIGN.md §2).

Each ``run_*`` function returns an
:class:`~repro.experiments.common.ExperimentReport` whose rows are exactly
what the corresponding benchmark prints; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from repro.experiments.common import (
    ExperimentReport,
    bookcrossing_data,
    bookcrossing_space,
    dbauthors_data,
    dbauthors_space,
    full_scale,
)
from repro.experiments.ablation import run_ablation
from repro.experiments.crossfilter_perf import run_crossfilter_perf
from repro.experiments.etl_scale import run_etl_scale
from repro.experiments.greedy_quality import run_greedy_quality
from repro.experiments.group_space import run_group_space
from repro.experiments.index_materialization import run_index_materialization
from repro.experiments.k_sweep import run_k_sweep
from repro.experiments.latency import run_latency
from repro.experiments.miner_comparison import run_miner_comparison
from repro.experiments.pc_formation import run_pc_formation
from repro.experiments.pipeline import run_pipeline
from repro.experiments.projection_quality import run_projection_quality
from repro.experiments.satisfaction import run_satisfaction
from repro.experiments.screenshot import run_screenshot
from repro.experiments.simpson_guard import run_simpson_guard
from repro.experiments.stats_drilldown import run_stats_drilldown

__all__ = [
    "ExperimentReport",
    "bookcrossing_data",
    "bookcrossing_space",
    "dbauthors_data",
    "dbauthors_space",
    "full_scale",
    "run_ablation",
    "run_crossfilter_perf",
    "run_etl_scale",
    "run_greedy_quality",
    "run_group_space",
    "run_index_materialization",
    "run_k_sweep",
    "run_latency",
    "run_miner_comparison",
    "run_pc_formation",
    "run_pipeline",
    "run_projection_quality",
    "run_satisfaction",
    "run_screenshot",
    "run_simpson_guard",
    "run_stats_drilldown",
]
