"""Experiment C10: BookCrossing scale and ETL throughput.

§I quotes the dataset: *"BOOKCROSSING, a book rating dataset, contains one
million ratings of 278,858 users for 271,379 books."*

The driver checks the synthetic generator reproduces that shape (exact
user/item counts; rating count within a dedup-tolerant margin) and measures
ETL throughput (CSV write + cleaned read) at the default benchmark scale.
Set ``REPRO_SCALE=full`` to run the generator at the paper's full scale.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.data.etl import load_dataset
from repro.data.generators.bookcrossing import (
    BookCrossingConfig,
    generate_bookcrossing,
    paper_scale_config,
)
from repro.experiments.common import ExperimentReport, full_scale


def run_etl_scale() -> ExperimentReport:
    rows: list[dict[str, object]] = []

    configs: list[tuple[str, BookCrossingConfig]] = [
        ("default", BookCrossingConfig(n_users=1500, n_items=800, n_ratings=12000)),
    ]
    if full_scale():
        configs.append(("paper", paper_scale_config()))

    for label, config in configs:
        started = time.perf_counter()
        data = generate_bookcrossing(config)
        generate_seconds = time.perf_counter() - started
        dataset = data.dataset

        with tempfile.TemporaryDirectory() as scratch:
            directory = Path(scratch)
            started = time.perf_counter()
            dataset.to_csv(directory)
            write_seconds = time.perf_counter() - started
            started = time.perf_counter()
            result = load_dataset(
                directory / "actions.csv",
                directory / "demographics.csv",
                value_range=(config.rating_low, config.rating_high),
            )
            read_seconds = time.perf_counter() - started

        rows.append(
            {
                "scale": label,
                "users": dataset.n_users,
                "items": dataset.n_items,
                "ratings": dataset.n_actions,
                "generate_s": generate_seconds,
                "csv_write_s": write_seconds,
                "etl_read_s": read_seconds,
                "etl_records_per_s": (
                    result.action_report.rows_read / max(read_seconds, 1e-9)
                ),
                "rows_dropped": result.action_report.rows_dropped,
            }
        )

    paper_row = {
        "scale": "paper (quoted)",
        "users": 278_858,
        "items": 271_379,
        "ratings": 1_000_000,
        "generate_s": "-",
        "csv_write_s": "-",
        "etl_read_s": "-",
        "etl_records_per_s": "-",
        "rows_dropped": "-",
    }
    rows.append(paper_row)
    return ExperimentReport(
        experiment="C10",
        paper_claim="1M ratings / 278,858 users / 271,379 books; ETL precedes import",
        rows=rows,
        notes="set REPRO_SCALE=full to generate at the paper's quoted scale",
    )
