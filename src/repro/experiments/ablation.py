"""Ablation A1: which design choices actually carry the exploration?

DESIGN.md calls out four levers in the online loop — feedback learning,
the explorer profile, the description-diversity term of the selector, and
the §II-B weighted-similarity re-ranking.  This driver re-runs the ST
discussion-group hunt (the C5 workload) with each lever toggled and reports
completion/satisfaction per variant, so the contribution of every piece is
measurable rather than asserted.
"""

from __future__ import annotations

import numpy as np

from repro.agents.explorer import AgentConfig, TargetSeekingExplorer
from repro.agents.scenarios import discussion_group_target
from repro.core.selection import SelectionConfig
from repro.core.session import ExplorationSession, SessionConfig
from repro.core.tasks import SingleTargetTask
from repro.experiments.common import ExperimentReport, bookcrossing_space


def _session_config(
    use_profile: bool = True,
    description_diversity: bool = True,
    weighted_similarity: bool = False,
    feedback_weight: float = 0.25,
) -> SessionConfig:
    config = SessionConfig(
        k=5,
        time_budget_ms=100.0,
        use_profile=use_profile,
        weighted_similarity=weighted_similarity,
    )
    config.selection = SelectionConfig(
        k=5,
        time_budget_ms=100.0,
        max_candidates=config.max_pool,
        feedback_weight=feedback_weight,
        description_diversity_weight=0.3 if description_diversity else 0.0,
    )
    return config


def _variants() -> dict[str, SessionConfig]:
    return {
        "full system": _session_config(),
        "no profile": _session_config(use_profile=False),
        "no description diversity": _session_config(description_diversity=False),
        "no feedback term": _session_config(feedback_weight=0.0),
        "+ weighted similarity": _session_config(weighted_similarity=True),
    }


def run_ablation(
    genres: tuple[str, ...] = ("fiction", "romance", "mystery", "fantasy"),
    repeats: int = 3,
) -> ExperimentReport:
    space = bookcrossing_space()
    rows: list[dict[str, object]] = []
    for label, config in _variants().items():
        completions: list[float] = []
        satisfactions: list[float] = []
        iterations: list[int] = []
        for genre in genres:
            target = discussion_group_target(space, genre)
            if target is None:
                continue
            for repeat in range(repeats):
                task = SingleTargetTask(space, target_gid=target)
                session = ExplorationSession(space, config=config)
                agent = TargetSeekingExplorer(
                    task, AgentConfig(seed=repeat, max_iterations=20)
                )
                result = agent.run(session)
                completions.append(1.0 if result.completed else 0.0)
                satisfactions.append(result.satisfaction)
                iterations.append(result.iterations)
        rows.append(
            {
                "variant": label,
                "completion": float(np.mean(completions)),
                "satisfaction": float(np.mean(satisfactions)),
                "mean_iterations": float(np.mean(iterations)),
            }
        )
    return ExperimentReport(
        experiment="A1",
        paper_claim="(ablation) each online-loop lever contributes to navigation",
        rows=rows,
        notes="ST discussion-group hunt, same workload as C5",
    )
