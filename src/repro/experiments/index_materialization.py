"""Experiment C3: how much of the inverted index must be materialized?

§II-A: *"we only materialize 10% of each inverted index which is shown in
[14] to be adequate to deliver satisfying results."*

The driver sweeps the materialization fraction and measures recall@k of
the true top-k similar groups (against the exact ranking) plus memory and
build time.  The paper's claim is a plateau: by ~10%, recall for the
k ≈ 5-10 neighbors navigation actually uses is ~1.0.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments.common import ExperimentReport, dbauthors_space
from repro.index.inverted import SimilarityIndex


def run_index_materialization(
    fractions: tuple[float, ...] = (0.002, 0.005, 0.01, 0.025, 0.05, 0.10, 0.25),
    k: int = 50,
    sample: int = 60,
) -> ExperimentReport:
    space = dbauthors_space()
    memberships = space.memberships()
    n_users = space.dataset.n_users

    exact = SimilarityIndex(memberships, n_users, 1.0)
    rng = np.random.default_rng(3)
    probes = rng.choice(len(space), size=min(sample, len(space)), replace=False)
    truth = {
        int(gid): [neighbor.group for neighbor in exact.neighbors(int(gid), k)]
        for gid in probes
    }

    rows: list[dict[str, object]] = []
    for fraction in fractions:
        started = time.perf_counter()
        index = SimilarityIndex(memberships, n_users, fraction)
        build_seconds = time.perf_counter() - started
        recalls = []
        for gid, expected in truth.items():
            if not expected:
                continue
            got = [
                neighbor.group
                for neighbor in index.materialized_neighbors(gid)[:k]
            ]
            recalls.append(
                len(set(got) & set(expected)) / len(expected)
            )
        rows.append(
            {
                "fraction": fraction,
                f"recall@{k}": float(np.mean(recalls)) if recalls else 1.0,
                "entries": index.memory_entries(),
                "build_s": build_seconds,
            }
        )
    return ExperimentReport(
        experiment="C3",
        paper_claim="10% materialization is adequate (recall plateau)",
        rows=rows,
        notes="recall measured on the raw materialized prefix (no exact fallback)",
    )
