"""In-process event bus: every session interaction, typed and fanned out.

The ROADMAP's "live exploration feed" item asks for session interactions
to be observable as they happen, not reconstructed from logs.  Each
interaction the runtime serves — ``open``, ``click``, ``drill_down``,
``backtrack``, ``close``, ``evict``, ``mutate`` — publishes one
:class:`Event` to the process's :class:`EventBus`, which fans it out to
pluggable sinks:

- :class:`MetricsSink` — mirrors events onto the metrics registry
  (interaction counters by kind/space, click-latency histogram);
- :class:`ActivityRing` — a bounded per-space ring of recent events,
  served at ``GET /spaces/<name>/activity``;
- :class:`JsonlSink` — optional durable feed: one JSON line per event,
  written from a background drainer thread.

The contract that matters is in :meth:`EventBus.publish`: a click must
never stall on a sink.  Inline sinks (``inline = True``) are O(1)
lock-guarded appends and run on the publishing thread; queued sinks get
a *bounded* queue plus a daemon drainer — when the queue is full the
event is counted in :attr:`EventBus.drops` and discarded, and a sink
that raises has its event counted as dropped rather than propagating
into the interaction path.  The concurrency suites assert zero drops
with the default sinks attached; the drop counter exists so a
deliberately slow external sink degrades visibly instead of invisibly.
"""

from __future__ import annotations

import json
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Optional

#: Interaction kinds the runtime publishes.
EVENT_KINDS = (
    "open", "click", "drill_down", "backtrack", "close", "evict", "mutate",
)


@dataclass(frozen=True)
class Event:
    """One session interaction, as the runtime saw it."""

    kind: str
    space: str = ""
    session_id: str = ""
    ts: float = field(default_factory=time.time)
    #: Clicked/drilled group id, backtrack target step, etc.
    detail: dict = field(default_factory=dict)
    elapsed_ms: Optional[float] = None
    trace_id: Optional[str] = None

    def to_dict(self) -> dict:
        row = {
            "kind": self.kind,
            "space": self.space,
            "session_id": self.session_id,
            "ts": round(self.ts, 3),
        }
        if self.detail:
            row["detail"] = dict(self.detail)
        if self.elapsed_ms is not None:
            row["elapsed_ms"] = round(self.elapsed_ms, 3)
        if self.trace_id:
            row["trace_id"] = self.trace_id
        return row


class Sink:
    """Base sink: set ``inline = True`` only for O(1), non-blocking accepts."""

    inline = False

    def accept(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class ActivityRing(Sink):
    """Bounded per-space ring of recent events (the activity feed)."""

    inline = True

    def __init__(self, per_space: int = 256) -> None:
        if per_space < 1:
            raise ValueError("per_space must be >= 1")
        self.per_space = per_space
        self._lock = threading.Lock()
        self._rings: dict[str, deque] = {}

    def accept(self, event: Event) -> None:
        with self._lock:
            ring = self._rings.get(event.space)
            if ring is None:
                ring = deque(maxlen=self.per_space)
                self._rings[event.space] = ring
            ring.append(event)

    def recent(self, space: str, limit: Optional[int] = None) -> list[dict]:
        """Most recent events for ``space``, oldest first."""
        with self._lock:
            ring = self._rings.get(space)
            rows = list(ring) if ring is not None else []
        if limit is not None and limit >= 0:
            rows = rows[-limit:]
        return [event.to_dict() for event in rows]

    def spaces(self) -> list[str]:
        with self._lock:
            return sorted(self._rings)

    def clear_space(self, space: str) -> int:
        """Drop a space's ring (eviction must not leave a ghost feed)."""
        with self._lock:
            ring = self._rings.pop(space, None)
            return len(ring) if ring is not None else 0


class MetricsSink(Sink):
    """Mirror events onto a metrics registry (the single source of truth)."""

    inline = True

    def __init__(self, registry) -> None:
        self._interactions = registry.counter(
            "repro_interactions_total",
            "Session interactions by kind and space",
        )
        self._click_ms = registry.histogram(
            "repro_click_ms",
            "End-to-end click service time (milliseconds)",
        )

    def accept(self, event: Event) -> None:
        self._interactions.labels(kind=event.kind, space=event.space).inc()
        if event.kind == "click" and event.elapsed_ms is not None:
            self._click_ms.labels(space=event.space).observe(event.elapsed_ms)


class JsonlSink(Sink):
    """One JSON line per event; writes happen on the bus drainer thread."""

    inline = False

    def __init__(self, path) -> None:
        self.path = path
        self._fh = open(path, "a", encoding="utf-8")
        self._lock = threading.Lock()

    def accept(self, event: Event) -> None:
        line = json.dumps(event.to_dict(), sort_keys=True)
        with self._lock:
            self._fh.write(line + "\n")
            self._fh.flush()

    def close(self) -> None:
        with self._lock:
            try:
                self._fh.close()
            except OSError:
                pass


class EventBus:
    """Non-blocking fan-out of events to attached sinks.

    Inline sinks run on the publisher's thread (they are contractually
    O(1)); queued sinks are fed through one bounded queue drained by a
    single daemon thread.  ``publish`` never blocks and never raises:
    full queues and raising sinks increment :attr:`drops` (also mirrored
    to the registry by the owning
    :class:`~repro.obs.Observability`).
    """

    def __init__(self, queue_size: int = 4096) -> None:
        self._inline: list[Sink] = []
        self._queued: list[Sink] = []
        self._queue: "queue.Queue[Optional[Event]]" = queue.Queue(
            maxsize=queue_size
        )
        self._drainer: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        self._drops = 0
        self.published = 0
        self._closed = False

    @property
    def drops(self) -> int:
        with self._lock:
            return self._drops

    def _count_drop(self) -> None:
        with self._lock:
            self._drops += 1

    def subscribe(self, sink: Sink) -> Sink:
        with self._lock:
            if sink.inline:
                self._inline.append(sink)
            else:
                self._queued.append(sink)
                if self._drainer is None and not self._closed:
                    self._drainer = threading.Thread(
                        target=self._drain, name="repro-obs-events", daemon=True
                    )
                    self._drainer.start()
        return sink

    def publish(self, event: Event) -> None:
        self.published += 1
        for sink in self._inline:
            try:
                sink.accept(event)
            except Exception:
                self._count_drop()
        if self._queued:
            try:
                self._queue.put_nowait(event)
            except queue.Full:
                self._count_drop()

    def _drain(self) -> None:
        while True:
            event = self._queue.get()
            if event is None:
                return
            for sink in self._queued:
                try:
                    sink.accept(event)
                except Exception:
                    self._count_drop()

    def flush(self, timeout_s: float = 2.0) -> bool:
        """Best-effort wait until the queued backlog is drained."""
        deadline = time.time() + timeout_s
        while not self._queue.empty():
            if time.time() >= deadline:
                return False
            time.sleep(0.005)
        return True

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            drainer = self._drainer
        if drainer is not None:
            self._queue.put(None)
            drainer.join(timeout=2.0)
        for sink in self._inline + self._queued:
            try:
                sink.close()
            except Exception:
                pass
