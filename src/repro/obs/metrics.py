"""Lock-striped, stdlib-only metrics registry with Prometheus text output.

The serving tier (PRs 4-9) accumulated its operational numbers ad hoc:
``sweep_failures`` on the HTTP front, ``respawn_failures`` dicts on the
replica fleets, journal ``append_ms`` lists, ``SharedPairCache.stats()``
dicts — each surfaced through a different corner of ``/healthz``.  This
module is the single store they migrate onto: one
:class:`MetricsRegistry` per process, three instrument kinds, labeled
series, and two export surfaces —

- :meth:`MetricsRegistry.render` — the Prometheus text exposition format
  (version 0.0.4), served verbatim at ``GET /metrics``;
- :meth:`MetricsRegistry.dump` / :func:`merge_dumps` — a JSON-safe
  structural snapshot, shipped from each worker process over the
  existing ``/internal/`` control surface so the parent router can serve
  one fleet-wide ``/metrics`` with ``worker`` labels.

Concurrency follows the :class:`~repro.core.runtime.SharedPairCache`
recipe: updates take one of ``stripes`` locks chosen by series-key hash,
so concurrent clicks on different series never contend on a global lock.
A series handle resolves its stripe once at creation; the per-update
cost is one lock acquire + a float add.  Registries are cheap enough to
create per worker and throw away on respawn — which is exactly how the
fleet aggregation avoids stale series: the parent scrapes live workers
on demand instead of accumulating push state that would outlive a
SIGKILL'd replica.

Everything here is stdlib-only by design (the registry must import
inside bare worker processes before numpy is touched, and must never
add a dependency to the serving path).
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Iterable, Optional, Sequence

#: Default histogram buckets (milliseconds): sub-ms cache hits through
#: the paper's 100 ms click budget and out to multi-second builds.
DEFAULT_MS_BUCKETS = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0,
)

_RESERVED_LABELS = frozenset({"le"})


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value: float) -> str:
    """Prometheus-friendly number: integers without a trailing ``.0``."""
    if value == float("inf"):
        return "+Inf"
    as_int = int(value)
    if value == as_int:
        return str(as_int)
    return repr(value)


def _label_suffix(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label_value(value)}"' for name, value in labels
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class _Series:
    """One labeled time series: a float cell behind its stripe lock."""

    __slots__ = ("labels", "_lock", "value")

    def __init__(self, labels: tuple[tuple[str, str], ...], lock) -> None:
        self.labels = labels
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def get(self) -> float:
        with self._lock:
            return self.value


class _HistogramSeries:
    """One labeled histogram: cumulative-ready bucket counts + sum."""

    __slots__ = ("labels", "_lock", "_bounds", "counts", "sum", "count")

    def __init__(
        self,
        labels: tuple[tuple[str, str], ...],
        bounds: Sequence[float],
        lock,
    ) -> None:
        self.labels = labels
        self._lock = lock
        self._bounds = bounds
        self.counts = [0] * len(bounds)  # per-bucket (non-cumulative)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        slot = bisect.bisect_left(self._bounds, value)
        with self._lock:
            if slot < len(self.counts):
                self.counts[slot] += 1
            self.sum += value
            self.count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        with self._lock:
            return list(self.counts), self.sum, self.count


class _Family:
    """One named metric family holding its labeled series."""

    __slots__ = ("name", "kind", "help", "buckets", "_series", "_registry")

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[tuple[float, ...]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self._series: dict[tuple[tuple[str, str], ...], object] = {}
        self._registry = registry

    def labels(self, **labels: str):
        """The series for this label set, created on first use."""
        for label in labels:
            if label in _RESERVED_LABELS:
                raise ValueError(f"label name {label!r} is reserved")
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series = self._series.get(key)
        if series is not None:
            return series
        registry = self._registry
        with registry._families_lock:
            series = self._series.get(key)
            if series is None:
                lock = registry._stripe_for((self.name, key))
                if self.kind == "histogram":
                    series = _HistogramSeries(key, self.buckets, lock)
                else:
                    series = _Series(key, lock)
                self._series[key] = series
        return series

    # Label-less convenience: family acts as its own default series.
    def inc(self, amount: float = 1.0) -> None:
        self.labels().inc(amount)

    def set(self, value: float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    def get(self, **labels: str) -> float:
        return self.labels(**labels).get()

    def series(self) -> list:
        with self._registry._families_lock:
            return list(self._series.values())


class MetricsRegistry:
    """Thread-safe metric store with striped update locks.

    ``collectors`` registered via :meth:`register_collector` run at
    export time (both :meth:`render` and :meth:`dump`) — the hook that
    lets gauge families mirror live structures
    (:class:`~repro.core.runtime.SharedPairCache` stripe stats, registry
    occupancy) without polling threads: the stats are pulled exactly
    when something scrapes.
    """

    def __init__(self, stripes: int = 16) -> None:
        if stripes < 1:
            raise ValueError("stripes must be >= 1")
        self._stripes = [threading.Lock() for _ in range(stripes)]
        self._families_lock = threading.Lock()
        self._families: dict[str, _Family] = {}
        self._collectors: list[Callable[[], None]] = []

    def _stripe_for(self, key) -> threading.Lock:
        return self._stripes[hash(key) % len(self._stripes)]

    def _family(
        self,
        name: str,
        kind: str,
        help_text: str,
        buckets: Optional[tuple[float, ...]] = None,
    ) -> _Family:
        with self._families_lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(self, name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}"
                )
            return family

    def counter(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, "counter", help_text)

    def gauge(self, name: str, help_text: str = "") -> _Family:
        return self._family(name, "gauge", help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> _Family:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        family = self._family(name, "histogram", help_text, bounds)
        if family.buckets != bounds:
            raise ValueError(
                f"histogram {name!r} already registered with different buckets"
            )
        return family

    def register_collector(self, collector: Callable[[], None]) -> None:
        """Run ``collector()`` before every export (sets gauges from live state)."""
        with self._families_lock:
            self._collectors.append(collector)

    def _collect(self) -> None:
        with self._families_lock:
            collectors = list(self._collectors)
        for collector in collectors:
            try:
                collector()
            except Exception:
                pass  # a broken collector must never break the scrape

    def get(self, name: str, **labels: str) -> float:
        """Current value of one counter/gauge series (0.0 when absent)."""
        with self._families_lock:
            family = self._families.get(name)
        if family is None or family.kind == "histogram":
            return 0.0
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        series = family._series.get(key)
        return series.get() if series is not None else 0.0

    # -- export ----------------------------------------------------------

    def dump(self) -> dict:
        """JSON-safe structural snapshot (what workers ship to the parent)."""
        self._collect()
        with self._families_lock:
            families = list(self._families.values())
        metrics = []
        for family in families:
            rows = []
            for series in family.series():
                labels = dict(series.labels)
                if family.kind == "histogram":
                    counts, total, count = series.snapshot()
                    rows.append(
                        {
                            "labels": labels,
                            "buckets": counts,
                            "sum": total,
                            "count": count,
                        }
                    )
                else:
                    rows.append({"labels": labels, "value": series.get()})
            entry = {
                "name": family.name,
                "type": family.kind,
                "help": family.help,
                "series": rows,
            }
            if family.buckets is not None:
                entry["bounds"] = list(family.buckets)
            metrics.append(entry)
        return {"metrics": metrics}

    def render(self, extra_labels: Optional[dict[str, str]] = None) -> str:
        """This registry in the Prometheus text exposition format."""
        return render_dump(self.dump(), extra_labels)


def _merged_labels(
    labels: dict[str, str], extra: Optional[dict[str, str]]
) -> tuple[tuple[str, str], ...]:
    if extra:
        merged = dict(labels)
        merged.update(extra)
        labels = merged
    return tuple(sorted(labels.items()))


def render_dump(
    dump: dict, extra_labels: Optional[dict[str, str]] = None
) -> str:
    """One structural snapshot as Prometheus text (trailing newline included)."""
    lines: list[str] = []
    for metric in dump.get("metrics", ()):
        name = metric["name"]
        help_text = metric.get("help") or ""
        if help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text)}")
        lines.append(f"# TYPE {name} {metric['type']}")
        if metric["type"] == "histogram":
            bounds = metric.get("bounds", [])
            for row in metric["series"]:
                labels = _merged_labels(row.get("labels", {}), extra_labels)
                cumulative = 0
                for bound, count in zip(bounds, row["buckets"]):
                    cumulative += count
                    suffix = _label_suffix(
                        labels, f'le="{_format_value(float(bound))}"'
                    )
                    lines.append(f"{name}_bucket{suffix} {cumulative}")
                inf_suffix = _label_suffix(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{inf_suffix} {row['count']}")
                plain = _label_suffix(labels)
                lines.append(
                    f"{name}_sum{plain} {_format_value(float(row['sum']))}"
                )
                lines.append(f"{name}_count{plain} {row['count']}")
        else:
            for row in metric["series"]:
                labels = _merged_labels(row.get("labels", {}), extra_labels)
                suffix = _label_suffix(labels)
                lines.append(
                    f"{name}{suffix} {_format_value(float(row['value']))}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def label_dump(dump: dict, labels: dict[str, str]) -> dict:
    """A copy of ``dump`` with ``labels`` folded into every series.

    This is how the parent router tags each worker's scrape with
    ``worker="w<i>"`` before handing the fleet to :func:`merge_dumps` —
    the extra label keeps per-worker series distinct, so the merge
    unifies families without summing across workers.
    """
    out: list[dict] = []
    for metric in dump.get("metrics", ()):
        entry = dict(metric)
        entry["series"] = [
            {**row, "labels": {**row.get("labels", {}), **labels}}
            for row in metric.get("series", ())
        ]
        out.append(entry)
    return {"metrics": out}


def merge_dumps(dumps: Iterable[dict]) -> dict:
    """Sum a fleet of structural snapshots into one.

    Series with identical ``(name, labels)`` are summed — counters and
    gauges add their values, histograms add per-bucket counts, sums and
    counts.  This is exactly the merge a Prometheus server performs with
    ``sum by``-style aggregation, and the property the oracle test
    asserts: merging per-worker histograms equals observing every value
    into a single registry.  Histograms with mismatched bucket bounds
    raise — silently mixing bounds would fabricate latencies.
    """
    merged: dict[str, dict] = {}
    order: list[str] = []
    for dump in dumps:
        for metric in dump.get("metrics", ()):
            name = metric["name"]
            entry = merged.get(name)
            if entry is None:
                entry = {
                    "name": name,
                    "type": metric["type"],
                    "help": metric.get("help", ""),
                    "series": [],
                    "_by_labels": {},
                }
                if "bounds" in metric:
                    entry["bounds"] = list(metric["bounds"])
                merged[name] = entry
                order.append(name)
            elif entry["type"] != metric["type"]:
                raise ValueError(
                    f"metric {name!r} merged with conflicting types "
                    f"{entry['type']!r} and {metric['type']!r}"
                )
            if metric["type"] == "histogram" and entry.get("bounds") != list(
                metric.get("bounds", [])
            ):
                raise ValueError(
                    f"histogram {name!r} merged with mismatched buckets"
                )
            by_labels = entry["_by_labels"]
            for row in metric["series"]:
                key = tuple(sorted(row.get("labels", {}).items()))
                existing = by_labels.get(key)
                if metric["type"] == "histogram":
                    if existing is None:
                        existing = {
                            "labels": dict(key),
                            "buckets": [0] * len(entry.get("bounds", [])),
                            "sum": 0.0,
                            "count": 0,
                        }
                        by_labels[key] = existing
                        entry["series"].append(existing)
                    existing["buckets"] = [
                        a + b
                        for a, b in zip(existing["buckets"], row["buckets"])
                    ]
                    existing["sum"] += row["sum"]
                    existing["count"] += row["count"]
                else:
                    if existing is None:
                        existing = {"labels": dict(key), "value": 0.0}
                        by_labels[key] = existing
                        entry["series"].append(existing)
                    existing["value"] += row["value"]
    metrics = []
    for name in order:
        entry = merged[name]
        entry.pop("_by_labels")
        metrics.append(entry)
    return {"metrics": metrics}


def parse_prometheus_text(text: str) -> dict[str, list[tuple[dict, float]]]:
    """Minimal Prometheus text parser for tests and the CI smoke.

    Returns ``{metric_name: [(labels, value), ...]}``, validating the
    line grammar strictly enough that a malformed exposition fails loud:
    every non-comment line must be ``name{labels} value`` or
    ``name value`` with a float-parseable value, and every ``# TYPE``
    must name one of the three supported kinds.
    """
    samples: dict[str, list[tuple[dict, float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"malformed comment line: {line!r}")
            if parts[1] == "TYPE" and parts[3 if len(parts) > 3 else 2] not in (
                "counter", "gauge", "histogram", "summary", "untyped",
            ):
                raise ValueError(f"unknown metric type in: {line!r}")
            continue
        if "{" in line:
            name, _, rest = line.partition("{")
            label_blob, _, value_text = rest.rpartition("}")
            labels: dict[str, str] = {}
            if label_blob:
                for pair in _split_label_pairs(label_blob):
                    key, _, raw = pair.partition("=")
                    if not raw.startswith('"') or not raw.endswith('"'):
                        raise ValueError(f"malformed label in: {line!r}")
                    labels[key] = (
                        raw[1:-1]
                        .replace('\\"', '"')
                        .replace("\\n", "\n")
                        .replace("\\\\", "\\")
                    )
        else:
            name, _, value_text = line.partition(" ")
            labels = {}
        value_text = value_text.strip()
        if value_text == "+Inf":
            value = float("inf")
        else:
            value = float(value_text)  # raises on malformed values
        if not name or not name[0].isalpha() and name[0] != "_":
            raise ValueError(f"malformed metric name in: {line!r}")
        samples.setdefault(name, []).append((labels, value))
    return samples


def _split_label_pairs(blob: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quoted values."""
    pairs: list[str] = []
    current: list[str] = []
    in_quotes = False
    escaped = False
    for char in blob:
        if escaped:
            current.append(char)
            escaped = False
            continue
        if char == "\\":
            current.append(char)
            escaped = True
            continue
        if char == '"':
            in_quotes = not in_quotes
            current.append(char)
            continue
        if char == "," and not in_quotes:
            pairs.append("".join(current))
            current = []
            continue
        current.append(char)
    if current:
        pairs.append("".join(current))
    return pairs
