"""Per-request trace propagation and per-stage span timing.

One click that blows the 100 ms budget is useless to debug as a single
number: the time went somewhere — routing, candidate-pool assembly, the
CELF greedy, a pool-cache miss, the journal fsync, an arena attach.
This module decomposes it:

- the **client** (or anything upstream) mints a trace id and sends it in
  the ``X-Repro-Trace`` header; the replicated router forwards the header
  verbatim on the sticky-session hop, so the same id lands in whichever
  worker process serves the click — including the takeover worker after
  a SIGKILL, because the header travels with the *request*, not the
  process;
- the **server** activates a :class:`Trace` for the request's duration;
- instrumented stages deep in the core (``select_k``, the journal's
  fsync, the pool cache's structure lookup, arena attach) wrap
  themselves in :func:`span` — a context manager that records a named
  timing into the active trace, or does nothing at all when no trace is
  active.

The no-trace fast path is the design constraint: ``span`` is called on
every click in every serve mode, so with tracing disabled it must cost
one contextvar read and two attribute writes — no allocation beyond the
tiny ``_Span`` object, no clock read, no branching in the caller.  The
perf harness's ``observability`` section gates this (instrumented p50
within 1.05x of uninstrumented).

Stage names used across the codebase::

    route            HTTP dispatch + routing (service front)
    pool_build       candidate-pool assembly from the inverted index
    selection        the full select_k call (either engine)
    cache_lookup     pool-cache structure resolution
    journal_fsync    the durable journal append's fsync
    arena_attach     shared-memory arena attach (worker boot / rebind)
"""

from __future__ import annotations

import contextvars
import functools
import threading
import time
import uuid
from typing import Optional

#: The propagation header, hop by hop: client -> router -> worker.
TRACE_HEADER = "X-Repro-Trace"

_active: "contextvars.ContextVar[Optional[Trace]]" = contextvars.ContextVar(
    "repro_trace", default=None
)

#: Trace ids are minted per request; the counter disambiguates requests
#: minted within one clock tick on one process.
_mint_lock = threading.Lock()
_mint_counter = 0


def mint_trace_id() -> str:
    """A fresh, process-unique, wire-safe trace id."""
    global _mint_counter
    with _mint_lock:
        _mint_counter += 1
        serial = _mint_counter
    return f"{uuid.uuid4().hex[:16]}-{serial:x}"


class Trace:
    """Span accumulator for one request."""

    __slots__ = ("trace_id", "started", "stages")

    def __init__(self, trace_id: str) -> None:
        self.trace_id = trace_id
        self.started = time.perf_counter()
        self.stages: list[tuple[str, float]] = []

    def total_ms(self) -> float:
        return (time.perf_counter() - self.started) * 1000.0

    def stage_report(self) -> list[dict]:
        return [
            {"stage": stage, "ms": round(ms, 3)} for stage, ms in self.stages
        ]


def current_trace() -> Optional[Trace]:
    return _active.get()


def activate(trace: Trace) -> "contextvars.Token":
    return _active.set(trace)


def deactivate(token: "contextvars.Token") -> None:
    _active.reset(token)


class _Span:
    __slots__ = ("stage", "trace", "t0")

    def __init__(self, stage: str) -> None:
        self.stage = stage

    def __enter__(self) -> "_Span":
        trace = _active.get()
        self.trace = trace
        if trace is not None:
            self.t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        trace = self.trace
        if trace is not None:
            trace.stages.append(
                (self.stage, (time.perf_counter() - self.t0) * 1000.0)
            )


def span(stage: str) -> _Span:
    """Record a named stage timing into the active trace (no-op without one)."""
    return _Span(stage)


def traced(stage: str):
    """Decorator form of :func:`span`: time the whole call as one stage."""

    def wrap(fn):
        @functools.wraps(fn)
        def inner(*args, **kwargs):
            with _Span(stage):
                return fn(*args, **kwargs)

        return inner

    return wrap
