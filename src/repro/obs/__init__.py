"""Observability for the serving tier: metrics, events, traces.

One :class:`Observability` object per serving process bundles the three
pillars this package provides and is threaded (optionally) through the
stack — :class:`~repro.core.runtime.SessionManager`,
:class:`~repro.spaces.registry.SpaceRegistry`,
:class:`~repro.service.server.ExplorationService`, and the replication
workers:

- a :class:`~repro.obs.metrics.MetricsRegistry` (Prometheus text at
  ``GET /metrics``; JSON dumps over ``/internal/metrics`` for fleet
  aggregation with ``worker`` labels);
- an :class:`~repro.obs.events.EventBus` with the metrics sink and the
  per-space :class:`~repro.obs.events.ActivityRing` attached (served at
  ``GET /spaces/<name>/activity``), plus an optional JSONL sink;
- trace propagation (:mod:`repro.obs.trace`): request-scoped
  :class:`~repro.obs.trace.Trace` activation, per-stage
  :func:`~repro.obs.trace.span` timings, and a structured slow-request
  log for requests that exceed ``slow_click_ms``.

Everything degrades to zero: pass ``obs=None`` (the default everywhere)
and the runtime publishes nothing; :func:`~repro.obs.trace.span` calls
sprinkled through the core cost one contextvar read when no trace is
active.  The perf harness's ``observability`` section holds the
instrumented click p50 within 1.05x of the uninstrumented one.

See ``docs/OBSERVABILITY.md`` for the metric names, label schema, event
types and the trace header contract.
"""

from __future__ import annotations

import json
import logging
import threading
import time
from collections import deque
from pathlib import Path
from typing import Optional

from repro.obs.events import (
    EVENT_KINDS,
    ActivityRing,
    Event,
    EventBus,
    JsonlSink,
    MetricsSink,
    Sink,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    MetricsRegistry,
    label_dump,
    merge_dumps,
    parse_prometheus_text,
    render_dump,
)
from repro.obs.trace import (
    TRACE_HEADER,
    Trace,
    activate,
    current_trace,
    deactivate,
    mint_trace_id,
    span,
    traced,
)

__all__ = [
    "ActivityRing",
    "DEFAULT_MS_BUCKETS",
    "EVENT_KINDS",
    "Event",
    "EventBus",
    "JsonlSink",
    "MetricsRegistry",
    "MetricsSink",
    "Observability",
    "Sink",
    "TRACE_HEADER",
    "Trace",
    "current_trace",
    "label_dump",
    "merge_dumps",
    "mint_trace_id",
    "parse_prometheus_text",
    "render_dump",
    "span",
    "traced",
]

_slow_logger = logging.getLogger("repro.obs.slow")


class _RequestSpan:
    """Context manager for one instrumented HTTP request.

    Activates a :class:`Trace` so core-level :func:`span` calls record
    into it, times the request, updates the HTTP metrics, and emits a
    structured slow-request record when the total exceeds the owning
    :class:`Observability`'s ``slow_click_ms``.
    """

    __slots__ = ("obs", "path", "trace", "_token", "status")

    def __init__(self, obs: "Observability", path: str, trace_id: str) -> None:
        self.obs = obs
        self.path = path
        self.trace = Trace(trace_id)
        self.status = 200

    def set_status(self, status: int) -> None:
        self.status = status

    def __enter__(self) -> "_RequestSpan":
        self._token = activate(self.trace)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        deactivate(self._token)
        obs = self.obs
        total_ms = self.trace.total_ms()
        status = 500 if exc_type is not None else self.status
        obs.http_requests.labels(status=str(status)).inc()
        obs.http_request_ms.observe(total_ms)
        if obs.slow_click_ms is not None and total_ms >= obs.slow_click_ms:
            obs.record_slow_request(
                self.path, status, total_ms, self.trace
            )


class Observability:
    """Per-process observability bundle (registry + bus + slow-request log)."""

    def __init__(
        self,
        slow_click_ms: Optional[float] = None,
        slowlog_path: Optional[str] = None,
        events_jsonl_path: Optional[str] = None,
        activity_per_space: int = 256,
        registry: Optional[MetricsRegistry] = None,
        slow_keep: int = 128,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.bus = EventBus()
        self.activity = self.bus.subscribe(ActivityRing(activity_per_space))
        self.bus.subscribe(MetricsSink(self.registry))
        if events_jsonl_path is not None:
            self.bus.subscribe(JsonlSink(events_jsonl_path))
        self.slow_click_ms = slow_click_ms
        self.slowlog_path = slowlog_path
        self._slowlog_lock = threading.Lock()
        self.slow_records: "deque[dict]" = deque(maxlen=max(slow_keep, 1))

        registry = self.registry
        self.http_requests = registry.counter(
            "repro_http_requests_total", "HTTP requests served, by status"
        )
        self.http_request_ms = registry.histogram(
            "repro_http_request_ms", "HTTP request service time (milliseconds)"
        )
        self.slow_requests = registry.counter(
            "repro_slow_requests_total",
            "Requests that exceeded the slow-click threshold",
        )
        self.event_drops = registry.counter(
            "repro_events_dropped_total",
            "Events dropped by the bus (full queue or raising sink)",
        )
        self.event_published = registry.counter(
            "repro_events_published_total",
            "Events accepted by the bus for fan-out",
        )
        self.sweep_failures = registry.counter(
            "repro_sweep_failures_total",
            "Idle-sweep passes that raised unexpectedly",
        )
        self.respawn_failures = registry.counter(
            "repro_respawn_failures_total",
            "Worker respawn attempts that failed, by worker",
        )
        self.journal_append_ms = registry.histogram(
            "repro_journal_append_ms",
            "Durable journal append latency (milliseconds)",
        )
        registry.register_collector(self._collect_bus)

    # -- events ----------------------------------------------------------

    def publish(
        self,
        kind: str,
        space: str = "",
        session_id: str = "",
        detail: Optional[dict] = None,
        elapsed_ms: Optional[float] = None,
    ) -> None:
        """Publish one interaction event (trace id taken from the context)."""
        trace = current_trace()
        self.bus.publish(
            Event(
                kind=kind,
                space=space,
                session_id=session_id,
                detail=detail or {},
                elapsed_ms=elapsed_ms,
                trace_id=trace.trace_id if trace is not None else None,
            )
        )

    def _collect_bus(self) -> None:
        drops = self.bus.drops
        current = self.event_drops.labels().get()
        if drops > current:
            self.event_drops.labels().inc(drops - current)
        published = self.bus.published
        current = self.event_published.labels().get()
        if published > current:
            self.event_published.labels().inc(published - current)

    def register_shared_cache(self, space: str, cache) -> None:
        """Mirror a ``SharedPairCache``'s stats onto the registry.

        Registered as an export-time collector, so the gauge family
        ``repro_shared_cache{space,stat}`` reads the live stripe stats
        exactly when something scrapes — no polling thread, and
        ``/healthz`` and ``/metrics`` report from the same
        ``cache.stats()`` source.
        """
        family = self.registry.gauge(
            "repro_shared_cache", "SharedPairCache stats, by space and stat"
        )
        stats_keys = (
            "pair_entries", "pair_hits", "pair_misses",
            "structures", "structure_hits", "structure_misses",
            "stale_rejections",
        )

        def _collect() -> None:
            stats = cache.stats()
            for stat in stats_keys:
                if stat in stats:
                    family.labels(space=space, stat=stat).set(
                        float(stats[stat])
                    )

        self.registry.register_collector(_collect)

    # -- requests / traces ------------------------------------------------

    def request(self, path: str, trace_id: Optional[str]) -> _RequestSpan:
        return _RequestSpan(self, path, trace_id or mint_trace_id())

    def record_slow_request(
        self, path: str, status: int, total_ms: float, trace: Trace
    ) -> None:
        self.slow_requests.inc()
        record = {
            "trace_id": trace.trace_id,
            "path": path,
            "status": status,
            "total_ms": round(total_ms, 3),
            "stages": trace.stage_report(),
            "ts": round(time.time(), 3),
        }
        self.slow_records.append(record)
        line = json.dumps(record, sort_keys=True)
        _slow_logger.warning("slow request %s", line)
        if self.slowlog_path is not None:
            try:
                with self._slowlog_lock:
                    with open(self.slowlog_path, "a", encoding="utf-8") as fh:
                        fh.write(line + "\n")
            except OSError:
                pass  # the slow log is best-effort, never a failure source

    # -- export ------------------------------------------------------------

    def render_metrics(self) -> str:
        return self.registry.render()

    def dump_metrics(self) -> dict:
        return self.registry.dump()

    def close(self) -> None:
        self.bus.close()


def read_slowlog(path) -> list[dict]:
    """Parse a slow-request JSONL file (helper for tests and tooling)."""
    records = []
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records
