"""2-D projections for the Focus view.

§II-B *Granular Analysis*: *"VEXUS employs Linear Discriminant Analysis [8]
as a dimensionality reduction approach to obtain a 2D projection of members
of a desired group.  Members whose profile are more similar appear closer
to each other."*

Fisher LDA implemented from scratch (regularised generalized eigenproblem
on the within/between scatter matrices, per the cited Ji & Ye framework),
plus PCA as the unsupervised fallback and the experiment-C11 baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import linalg


@dataclass(frozen=True)
class Projection:
    """A fitted 2-D projection."""

    coordinates: np.ndarray  # (n, 2)
    axes: np.ndarray  # (n_features, 2) projection matrix
    method: str
    explained: float  # share of criterion captured by the 2 axes


def pca_projection(matrix: np.ndarray, dimensions: int = 2) -> Projection:
    """Principal component projection (the unsupervised baseline)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    centered = matrix - matrix.mean(axis=0, keepdims=True)
    covariance = centered.T @ centered / max(len(matrix) - 1, 1)
    eigenvalues, eigenvectors = linalg.eigh(covariance)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    axes = eigenvectors[:, order]
    axes = _pad_axes(axes, matrix.shape[1], dimensions)
    total = float(eigenvalues.sum())
    explained = float(eigenvalues[order].sum() / total) if total > 0 else 0.0
    return Projection(centered @ axes, axes, "pca", explained)


def lda_projection(
    matrix: np.ndarray,
    labels: np.ndarray,
    dimensions: int = 2,
    regularization: float = 1e-3,
) -> Projection:
    """Fisher LDA projection onto ``dimensions`` discriminant axes.

    Falls back to PCA when there are fewer than two classes (LDA is
    undefined) — the Focus view still renders, just unsupervised.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        return pca_projection(matrix, dimensions)

    overall_mean = matrix.mean(axis=0)
    n_features = matrix.shape[1]
    within = np.zeros((n_features, n_features))
    between = np.zeros((n_features, n_features))
    for value in classes:
        block = matrix[labels == value]
        mean = block.mean(axis=0)
        centered = block - mean
        within += centered.T @ centered
        offset = (mean - overall_mean)[:, None]
        between += len(block) * (offset @ offset.T)

    # Regularise the within-class scatter so the generalized symmetric
    # eigenproblem stays well-posed for one-hot (rank-deficient) features.
    within += regularization * np.trace(within) / max(n_features, 1) * np.eye(
        n_features
    ) + regularization * np.eye(n_features)
    eigenvalues, eigenvectors = linalg.eigh(between, within)
    order = np.argsort(eigenvalues)[::-1][:dimensions]
    axes = eigenvectors[:, order]
    axes = _pad_axes(axes, n_features, dimensions)
    positive = np.clip(eigenvalues, 0.0, None)
    total = float(positive.sum())
    explained = float(positive[order].sum() / total) if total > 0 else 0.0
    return Projection((matrix - overall_mean) @ axes, axes, "lda", explained)


def _pad_axes(axes: np.ndarray, n_features: int, dimensions: int) -> np.ndarray:
    if axes.shape[1] >= dimensions:
        return axes[:, :dimensions]
    padding = np.zeros((n_features, dimensions - axes.shape[1]))
    return np.hstack([axes, padding])


# ---------------------------------------------------------------------------
# projection quality (experiment C11)
# ---------------------------------------------------------------------------


def silhouette_score(coordinates: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette over all points (O(n^2); Focus views are small).

    Standard definition: per point, ``(b - a) / max(a, b)`` where ``a`` is
    the mean intra-class distance and ``b`` the smallest mean distance to
    another class.  Classes of size 1 contribute 0 (scikit-learn
    convention).
    """
    coordinates = np.asarray(coordinates, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2 or len(coordinates) < 3:
        return 0.0
    deltas = coordinates[:, None, :] - coordinates[None, :, :]
    distances = np.sqrt((deltas**2).sum(axis=2))
    scores = np.zeros(len(coordinates))
    for index in range(len(coordinates)):
        own = labels == labels[index]
        own_count = int(own.sum())
        if own_count <= 1:
            scores[index] = 0.0
            continue
        a = distances[index][own].sum() / (own_count - 1)
        b = np.inf
        for value in classes:
            if value == labels[index]:
                continue
            other = labels == value
            b = min(b, float(distances[index][other].mean()))
        denominator = max(a, b)
        scores[index] = (b - a) / denominator if denominator > 0 else 0.0
    return float(scores.mean())


def fisher_separability(coordinates: np.ndarray, labels: np.ndarray) -> float:
    """Between-class / within-class variance ratio in projected space."""
    coordinates = np.asarray(coordinates, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        return 0.0
    overall = coordinates.mean(axis=0)
    within = 0.0
    between = 0.0
    for value in classes:
        block = coordinates[labels == value]
        mean = block.mean(axis=0)
        within += float(((block - mean) ** 2).sum())
        between += len(block) * float(((mean - overall) ** 2).sum())
    return between / within if within > 0 else float("inf")
