"""Coordinated-view filtering engine (a faithful Crossfilter port).

§II-B *Interoperability*: *"Histograms are implemented using Crossfilter
charts.  Crossfilter employs the methodology of coordinated views where a
brush on one histogram updates all other statistics instantaneously ...
ensured by employing the concept of incremental queries which prevents
redundant query executions by sub-setting the data under the brush."*

Semantics match the original library:

- each **dimension** owns at most one filter (a value set or a range);
- a **histogram** grouped on dimension *d* counts records passing the
  filters of every dimension *except d* (so the brushed bars stay visible
  under their own brush);
- filter changes are **incremental**: like the original, every dimension
  keeps its records *sorted*, so a range brush locates the records that
  entered/left the window by binary search — cost O(log n + flipped), not
  O(n) — and only those records touch the histograms.  That asymmetry is
  the C9 performance claim.

The record-state machinery is a per-record bitmask (bit *d* set = record
fails dimension *d*'s filter), updated by XOR on the flipped subset.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

_MAX_DIMENSIONS = 64  # bits in the status word

FilterSpec = Union[None, tuple[str, object]]


class Crossfilter:
    """A set of records (row indices) with coordinated dimensions."""

    def __init__(self, n_records: int) -> None:
        if n_records < 0:
            raise ValueError("n_records must be >= 0")
        self.n_records = n_records
        self._status = np.zeros(n_records, dtype=np.uint64)
        self._dimensions: list["Dimension"] = []

    def dimension(self, values: np.ndarray, name: str = "") -> "Dimension":
        """Register a dimension over per-record values (numeric or labels)."""
        if len(self._dimensions) >= _MAX_DIMENSIONS:
            raise ValueError(f"at most {_MAX_DIMENSIONS} dimensions supported")
        values = np.asarray(values)
        if len(values) != self.n_records:
            raise ValueError(
                f"dimension has {len(values)} values for {self.n_records} records"
            )
        dimension = Dimension(self, len(self._dimensions), values, name)
        self._dimensions.append(dimension)
        return dimension

    # ------------------------------------------------------------------

    def passing_mask(self, exclude: Optional[int] = None) -> np.ndarray:
        """Bool mask of records passing all filters (optionally ignoring one)."""
        if exclude is None:
            return self._status == 0
        bit = np.uint64(1) << np.uint64(exclude)
        return (self._status & ~bit) == 0

    def passing(self) -> np.ndarray:
        """Indices of records passing every filter (the brushed selection)."""
        return np.flatnonzero(self.passing_mask())

    def count(self) -> int:
        return int(self.passing_mask().sum())

    # ------------------------------------------------------------------

    def _flip(self, dimension: "Dimension", changed: np.ndarray) -> None:
        """Toggle ``dimension``'s fail bit on ``changed``; update histograms."""
        if len(changed) == 0:
            return
        bit = np.uint64(1) << np.uint64(dimension.index)
        self._status[changed] ^= bit
        for other in self._dimensions:
            if other.index == dimension.index:
                continue  # a histogram ignores its own dimension's filter
            for histogram in other._histograms:
                histogram._update(changed, bit)

    def __repr__(self) -> str:
        return (
            f"Crossfilter({self.n_records} records, "
            f"{len(self._dimensions)} dimensions, {self.count()} passing)"
        )


class Dimension:
    """One filterable axis, with a sorted index for O(flipped) brushes."""

    def __init__(
        self, owner: Crossfilter, index: int, values: np.ndarray, name: str
    ) -> None:
        self.owner = owner
        self.index = index
        self.values = values
        self.name = name or f"dim{index}"
        self.current_filter: FilterSpec = None
        self._histograms: list["Histogram"] = []
        # Dense codes (bins in ascending value order) + per-code positions.
        self.bins, self.codes = np.unique(values, return_inverse=True)
        order = np.argsort(self.codes, kind="stable")
        boundaries = np.searchsorted(
            self.codes[order], np.arange(len(self.bins) + 1)
        )
        self._order = order
        self._code_slices = [
            order[boundaries[code] : boundaries[code + 1]]
            for code in range(len(self.bins))
        ]
        self._numeric = np.issubdtype(np.asarray(values).dtype, np.number)
        # Current passing state, canonically as a set of passing codes
        # (None = no filter, everything passes).
        self._pass_codes: Optional[frozenset[int]] = None

    # -- filtering ------------------------------------------------------

    def filter_in(self, keep: set) -> None:
        """Brush to a value set: records outside ``keep`` fail."""
        keep_codes = frozenset(
            int(code)
            for code, value in enumerate(self.bins)
            if value in keep
        )
        self._transition(keep_codes, ("in", frozenset(keep)))

    def filter_range(self, low: float, high: float) -> None:
        """Brush to the half-open range ``[low, high)`` (crossfilter style)."""
        if not self._numeric:
            raise TypeError(f"dimension {self.name!r} is not numeric")
        low_code = int(np.searchsorted(self.bins, low, side="left"))
        high_code = int(np.searchsorted(self.bins, high, side="left"))
        keep_codes = frozenset(range(low_code, high_code))
        self._transition(keep_codes, ("range", (low, high)))

    def filter_all(self) -> None:
        """Clear this dimension's brush."""
        self._transition(None, None)

    def _transition(
        self, new_pass: Optional[frozenset[int]], spec: FilterSpec
    ) -> None:
        """Move to a new passing-code set, flipping only the difference.

        The flipped records are exactly those whose code moved between the
        passing and failing side — located via the per-code position slices
        (the sorted index), never by scanning all records.
        """
        old_pass = (
            self._pass_codes
            if self._pass_codes is not None
            else frozenset(range(len(self.bins)))
        )
        resolved_new = (
            new_pass if new_pass is not None else frozenset(range(len(self.bins)))
        )
        changed_codes = old_pass ^ resolved_new
        self._pass_codes = new_pass
        self.current_filter = spec
        if not changed_codes:
            return
        changed = (
            np.concatenate([self._code_slices[code] for code in sorted(changed_codes)])
            if changed_codes
            else np.empty(0, dtype=np.int64)
        )
        self.owner._flip(self, changed)

    # -- aggregation ------------------------------------------------------

    def histogram(self) -> "Histogram":
        """A coordinated count-per-value view grouped on this dimension."""
        histogram = Histogram(self)
        self._histograms.append(histogram)
        return histogram

    def top(self, count: int) -> np.ndarray:
        """Indices of the ``count`` largest passing records on this axis."""
        mask = self.owner.passing_mask()
        passing_sorted = self._order[mask[self._order]]
        return passing_sorted[::-1][:count]

    def bottom(self, count: int) -> np.ndarray:
        mask = self.owner.passing_mask()
        passing_sorted = self._order[mask[self._order]]
        return passing_sorted[:count]


class Histogram:
    """Counts per distinct dimension value, maintained incrementally.

    Crossfilter semantics: the histogram on dimension *d* reflects every
    filter except *d*'s own.
    """

    def __init__(self, dimension: Dimension) -> None:
        self.dimension = dimension
        self.bins = dimension.bins
        self._bin_of_record = dimension.codes
        mask = dimension.owner.passing_mask(exclude=dimension.index)
        self.counts = np.bincount(
            self._bin_of_record[mask], minlength=len(self.bins)
        ).astype(np.int64)

    def _update(self, changed: np.ndarray, flipped_bit: np.uint64) -> None:
        """Apply a filter flip on another dimension to this histogram.

        ``changed`` holds the records whose ``flipped_bit`` just toggled;
        pass/fail relative to this histogram (excluding its own dimension)
        is recomputed only for those records.
        """
        own_bit = np.uint64(1) << np.uint64(self.dimension.index)
        status = self.dimension.owner._status[changed]
        passes_now = (status & ~own_bit) == 0
        passes_before = ((status ^ flipped_bit) & ~own_bit) == 0
        went_in = changed[passes_now & ~passes_before]
        went_out = changed[~passes_now & passes_before]
        if len(went_in):
            np.add.at(self.counts, self._bin_of_record[went_in], 1)
        if len(went_out):
            np.subtract.at(self.counts, self._bin_of_record[went_out], 1)

    def all(self) -> list[tuple[object, int]]:
        """(value, count) pairs in ascending value order."""
        return [
            (value.item() if hasattr(value, "item") else value, int(count))
            for value, count in zip(self.bins, self.counts)
        ]

    def as_dict(self) -> dict[object, int]:
        return dict(self.all())

    def nonzero(self) -> list[tuple[object, int]]:
        return [(value, count) for value, count in self.all() if count > 0]

    def recompute(self) -> np.ndarray:
        """From-scratch counts (the naive baseline; used by tests and C9)."""
        mask = self.dimension.owner.passing_mask(exclude=self.dimension.index)
        return np.bincount(
            self._bin_of_record[mask], minlength=len(self.bins)
        ).astype(np.int64)
