"""Renderers: scenes and statistics to ASCII or SVG.

The reproduction is headless, so Fig. 2 is regenerated as (a) an ASCII
dashboard — GROUPVIZ circles, CONTEXT chips, STATS histograms, HISTORY
chain and MEMO — and (b) an SVG file of the GROUPVIZ panel.  Experiment F2
snapshots both.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.viz.groupviz import Scene

_CIRCLE_LETTERS = "abcdefghijklmnopqrstuvwxyz"


def render_histogram(
    pairs: Sequence[tuple[object, int]], width: int = 32, max_rows: int = 12
) -> str:
    """One ASCII bar chart: ``value | ###### count`` rows."""
    if not pairs:
        return "(empty)"
    shown = list(pairs)[:max_rows]
    peak = max(count for _, count in shown) or 1
    label_width = max(len(str(value)) for value, _ in shown)
    lines = []
    for value, count in shown:
        bar = "#" * max(1 if count else 0, round(count / peak * width))
        lines.append(f"{str(value):<{label_width}} | {bar} {count}")
    if len(pairs) > max_rows:
        lines.append(f"... ({len(pairs) - max_rows} more)")
    return "\n".join(lines)


def render_scene_ascii(scene: Scene, width: int = 64, height: int = 20) -> str:
    """The GROUPVIZ panel as a character grid.

    Each circle is drawn with its own letter; the legend below maps letters
    to group descriptions and sizes (the hover text of the real UI).
    """
    grid = [[" "] * width for _ in range(height)]
    for index, circle in enumerate(scene.circles):
        letter = _CIRCLE_LETTERS[index % len(_CIRCLE_LETTERS)]
        center_x = circle.x * (width - 1)
        center_y = circle.y * (height - 1)
        radius_x = max(circle.radius * (width - 1), 0.5)
        radius_y = max(circle.radius * (height - 1), 0.5)
        for row in range(height):
            for column in range(width):
                dx = (column - center_x) / radius_x
                dy = (row - center_y) / radius_y
                if dx * dx + dy * dy <= 1.0:
                    grid[row][column] = letter
    lines = ["+" + "-" * width + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    for index, circle in enumerate(scene.circles):
        letter = _CIRCLE_LETTERS[index % len(_CIRCLE_LETTERS)]
        color_note = (
            f" [{circle.color_value} {circle.color_share:.0%}]"
            if circle.color_value
            else ""
        )
        lines.append(f"  ({letter}) #{circle.gid} {circle.label} n={circle.size}{color_note}")
    return "\n".join(lines)


def render_scene_svg(scene: Scene, size: int = 480) -> str:
    """The GROUPVIZ panel as standalone SVG (circle sizes/colors faithful)."""
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" height="{size}" '
        f'viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="#fafafa"/>',
    ]
    for circle in scene.circles:
        cx = circle.x * size
        cy = circle.y * size
        r = circle.radius * size
        title = f"{circle.label} (n={circle.size})"
        parts.append(
            f'<circle cx="{cx:.1f}" cy="{cy:.1f}" r="{r:.1f}" fill="{circle.color}" '
            f'fill-opacity="0.75" stroke="#333" stroke-width="1">'
            f"<title>{_escape(title)}</title></circle>"
        )
        parts.append(
            f'<text x="{cx:.1f}" y="{cy:.1f}" text-anchor="middle" '
            f'font-size="11" fill="#111">#{circle.gid}</text>'
        )
    y = 16
    for value, color in scene.legend.items():
        parts.append(
            f'<rect x="8" y="{y - 10}" width="10" height="10" fill="{color}"/>'
            f'<text x="22" y="{y}" font-size="11" fill="#111">{_escape(value)}</text>'
        )
        y += 16
    parts.append("</svg>")
    return "\n".join(parts)


def render_dashboard(
    scene: Scene,
    context_entries: Sequence[tuple[str, float]],
    history_labels: Sequence[str],
    memo_summary: str,
    stats_histograms: dict[str, Sequence[tuple[object, int]]],
    title: str = "VEXUS",
) -> str:
    """The five coordinated panels of Fig. 2 as one text dashboard."""
    sections = [f"=== {title} ===", "", "--- GROUPVIZ ---", render_scene_ascii(scene)]
    sections.append("")
    sections.append("--- CONTEXT ---")
    if context_entries:
        chips = " ".join(f"[{label}:{score:.2f}]" for label, score in context_entries)
    else:
        chips = "(no feedback yet)"
    sections.append(chips)
    sections.append("")
    sections.append("--- HISTORY ---")
    sections.append(" -> ".join(history_labels) if history_labels else "(start)")
    sections.append("")
    sections.append("--- STATS ---")
    for name, pairs in stats_histograms.items():
        sections.append(f"[{name}]")
        sections.append(render_histogram(pairs))
        sections.append("")
    sections.append("--- MEMO ---")
    sections.append(memo_summary or "(empty)")
    return "\n".join(sections)


def _escape(text: str) -> str:
    return (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
