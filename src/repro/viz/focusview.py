"""The Focus view: a 2-D member map of one group (Fig. 2, right panel).

§II-B: *"VEXUS employs Linear Discriminant Analysis ... to obtain a 2D
projection of members of a desired group (Focus View in Fig. 2).  Members
whose profile are more similar appear closer to each other."*

This module composes a feature matrix, an (optional) class attribute and
the LDA/PCA projections into one artifact with quality scores and an ASCII
scatter renderer, so sessions and examples can show the panel in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.viz.projection import (
    Projection,
    fisher_separability,
    lda_projection,
    pca_projection,
    silhouette_score,
)

_POINT_GLYPHS = "ox+*#@%&"


@dataclass(frozen=True)
class FocusView:
    """A projected group-member map ready to render."""

    coordinates: np.ndarray  # (n, 2), normalised to [0, 1]
    labels: np.ndarray  # class label per member ("" when unsupervised)
    member_ids: np.ndarray  # original user indices
    projection: Projection
    silhouette: float
    fisher_ratio: float

    @property
    def n_members(self) -> int:
        return len(self.member_ids)


def build_focus_view(
    features: np.ndarray,
    member_ids: np.ndarray,
    labels: Optional[np.ndarray] = None,
) -> FocusView:
    """Project group members to 2-D (LDA when labels are given, else PCA)."""
    features = np.asarray(features, dtype=np.float64)
    member_ids = np.asarray(member_ids, dtype=np.int64)
    if len(features) != len(member_ids):
        raise ValueError("features and member_ids must align")
    if labels is not None and len(labels) != len(member_ids):
        raise ValueError("labels and member_ids must align")

    if labels is not None:
        projection = lda_projection(features, labels)
        used_labels = np.asarray(labels)
    else:
        projection = pca_projection(features)
        used_labels = np.array([""] * len(member_ids))

    coordinates = projection.coordinates.copy()
    span = coordinates.max(axis=0) - coordinates.min(axis=0)
    span[span == 0] = 1.0
    coordinates = (coordinates - coordinates.min(axis=0)) / span

    return FocusView(
        coordinates=coordinates,
        labels=used_labels,
        member_ids=member_ids,
        projection=projection,
        silhouette=silhouette_score(projection.coordinates, used_labels),
        fisher_ratio=fisher_separability(projection.coordinates, used_labels),
    )


def render_focus_ascii(view: FocusView, width: int = 56, height: int = 18) -> str:
    """ASCII scatter of the Focus view, one glyph per class."""
    grid = [[" "] * width for _ in range(height)]
    classes = sorted(set(view.labels.tolist()))
    glyph_of = {
        value: _POINT_GLYPHS[index % len(_POINT_GLYPHS)]
        for index, value in enumerate(classes)
    }
    for (x, y), label in zip(view.coordinates, view.labels):
        column = min(int(x * (width - 1)), width - 1)
        row = min(int((1 - y) * (height - 1)), height - 1)
        grid[row][column] = glyph_of[label]
    lines = ["+" + "-" * width + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * width + "+")
    lines.append(
        f"projection={view.projection.method}  members={view.n_members}  "
        f"silhouette={view.silhouette:.2f}  fisher={view.fisher_ratio:.2f}"
    )
    for value in classes:
        if value:
            lines.append(f"  ({glyph_of[value]}) {value}")
    return "\n".join(lines)
