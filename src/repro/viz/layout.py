"""Force-directed layout for GROUPVIZ.

§II-A: *"The position of circles is enforced by a directed force layout to
prevent visual clutter.  The size of circles reflects the number of users
in groups."*

Fruchterman–Reingold with similarity-weighted attraction (overlapping
groups pull together, so related groups sit near each other), followed by a
circle-collision pass so no two circles overlap — the "prevent clutter"
requirement.  Deterministic given the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np


@dataclass(frozen=True)
class LayoutConfig:
    """Force-layout knobs; defaults suit k ≤ 7 circles on a unit canvas."""

    iterations: int = 200
    initial_temperature: float = 0.15
    collision_passes: int = 50
    max_total_radius_share: float = 0.35  # circles cover ≤ this canvas share
    min_radius: float = 0.04
    seed: int = 0


def circle_radii(
    sizes: np.ndarray, config: Optional[LayoutConfig] = None
) -> np.ndarray:
    """Radii proportional to sqrt(group size), scaled to fit the canvas."""
    config = config or LayoutConfig()
    sizes = np.asarray(sizes, dtype=np.float64)
    if len(sizes) == 0:
        return np.empty(0)
    radii = np.sqrt(np.maximum(sizes, 1.0))
    # Scale so the summed circle area is a fixed share of the unit canvas.
    area = np.pi * (radii**2).sum()
    radii *= np.sqrt(config.max_total_radius_share / area * np.pi) / np.sqrt(np.pi)
    return np.maximum(radii, config.min_radius)


def force_layout(
    sizes: np.ndarray,
    similarity: Optional[np.ndarray] = None,
    config: Optional[LayoutConfig] = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Positions + radii for ``len(sizes)`` circles on the unit square.

    ``similarity`` (optional, symmetric, in [0, 1]) weights attraction:
    similar groups land closer.  Returns ``(positions (k, 2), radii (k,))``
    with every circle fully inside the canvas and no two overlapping
    (best effort within ``collision_passes``).
    """
    config = config or LayoutConfig()
    count = len(sizes)
    radii = circle_radii(sizes, config)
    if count == 0:
        return np.empty((0, 2)), radii
    rng = np.random.default_rng(config.seed)
    positions = 0.5 + (rng.random((count, 2)) - 0.5) * 0.5
    if count == 1:
        return np.array([[0.5, 0.5]]), radii

    if similarity is None:
        similarity = np.zeros((count, count))
    similarity = np.asarray(similarity, dtype=np.float64)

    ideal = 1.0 / np.sqrt(count)  # FR's k: ideal pairwise distance
    temperature = config.initial_temperature
    cooling = temperature / max(config.iterations, 1)

    for _ in range(config.iterations):
        delta = positions[:, None, :] - positions[None, :, :]
        distance = np.sqrt((delta**2).sum(axis=2))
        np.fill_diagonal(distance, np.inf)
        direction = delta / distance[:, :, None]
        # Repulsion ~ k^2 / d; attraction ~ sim * d^2 / k.  The diagonal is
        # inf (self-distance sentinel) — keep it out of the attraction term.
        repulsion = (ideal**2) / distance
        finite_distance = np.where(np.isfinite(distance), distance, 0.0)
        attraction = similarity * (finite_distance**2) / ideal
        force = ((repulsion - attraction)[:, :, None] * direction).sum(axis=1)
        magnitude = np.sqrt((force**2).sum(axis=1, keepdims=True))
        magnitude[magnitude == 0] = 1.0
        step = force / magnitude * min(temperature, 1.0)
        positions = positions + step * np.minimum(magnitude, temperature) / np.maximum(
            magnitude, 1e-12
        )
        temperature = max(temperature - cooling, 1e-4)
        positions = np.clip(positions, 0.02, 0.98)

    # Interleave collision resolution with canvas clamping: clamping after
    # separation can reintroduce overlaps near the border, so iterate until
    # both constraints hold (shrinking radii as a last resort on degenerate
    # dense inputs).
    for _shrink in range(4):
        positions = _resolve_collisions(positions, radii, config)
        for index in range(count):
            positions[index] = np.clip(
                positions[index], radii[index], 1.0 - radii[index]
            )
        if overlap_count(positions, radii) == 0:
            break
        radii = radii * 0.93
    return positions, radii


def _resolve_collisions(
    positions: np.ndarray, radii: np.ndarray, config: LayoutConfig
) -> np.ndarray:
    """Push overlapping circles apart, a few relaxation passes."""
    count = len(radii)
    positions = positions.copy()
    for _ in range(config.collision_passes):
        moved = False
        for i in range(count):
            for j in range(i + 1, count):
                delta = positions[j] - positions[i]
                distance = float(np.sqrt((delta**2).sum()))
                needed = radii[i] + radii[j]
                if distance >= needed or needed == 0:
                    continue
                moved = True
                if distance < 1e-9:
                    angle = (i * 2.399963) % (2 * np.pi)  # golden-angle spread
                    delta = np.array([np.cos(angle), np.sin(angle)]) * 1e-3
                    distance = 1e-3
                push = (needed - distance) / 2.0
                unit = delta / distance
                positions[i] -= unit * push
                positions[j] += unit * push
        positions = np.clip(positions, 0.0, 1.0)
        if not moved:
            break
    return positions


def overlap_count(positions: np.ndarray, radii: np.ndarray) -> int:
    """Number of overlapping circle pairs (0 = clutter-free)."""
    count = 0
    for i in range(len(radii)):
        for j in range(i + 1, len(radii)):
            distance = float(np.sqrt(((positions[j] - positions[i]) ** 2).sum()))
            if distance < radii[i] + radii[j] - 1e-9:
                count += 1
    return count
