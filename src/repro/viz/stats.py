"""STATS module: coordinated demographic statistics over group members.

§II-B *Granular Analysis*: histograms show *"an exhaustive list of
demographic distributions"* for a group's members; the explorer *brushes*
(e.g. ``gender = female``) and every other statistic plus the member table
updates instantly.  The paper's running example — brushing gender=female
and publication_rate=extremely-active over the very-senior data-management
group to reveal a single prolific researcher — is experiment C8.

Built on :class:`repro.viz.crossfilter.Crossfilter`, one dimension per
demographic attribute plus two numeric activity dimensions.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.data.dataset import UserDataset
from repro.viz.crossfilter import Crossfilter, Dimension, Histogram

#: Names of the derived numeric dimensions every StatsView carries.
ACTIVITY_DIM = "activity_count"
MEAN_VALUE_DIM = "mean_value"


class StatsView:
    """Brushable statistics for a set of users (a group's members)."""

    def __init__(
        self, dataset: UserDataset, members: Optional[np.ndarray] = None
    ) -> None:
        self.dataset = dataset
        if members is None:
            members = np.arange(dataset.n_users, dtype=np.int64)
        self.members = np.asarray(members, dtype=np.int64)
        self._crossfilter = Crossfilter(len(self.members))
        self._dimensions: dict[str, Dimension] = {}
        self._histograms: dict[str, Histogram] = {}

        for attribute in dataset.attributes:
            column = dataset.column(attribute)
            labels = np.array(
                [column.value_of(int(user)) for user in self.members], dtype=object
            )
            dimension = self._crossfilter.dimension(labels, name=attribute)
            self._dimensions[attribute] = dimension
            self._histograms[attribute] = dimension.histogram()

        activity = dataset.user_activity()[self.members].astype(np.float64)
        self._dimensions[ACTIVITY_DIM] = self._crossfilter.dimension(
            activity, name=ACTIVITY_DIM
        )
        self._histograms[ACTIVITY_DIM] = self._dimensions[ACTIVITY_DIM].histogram()
        mean_values = np.array(
            [self.dataset.mean_value_of_user(int(user)) for user in self.members]
        )
        mean_values = np.nan_to_num(mean_values, nan=0.0)
        self._dimensions[MEAN_VALUE_DIM] = self._crossfilter.dimension(
            np.round(mean_values, 1), name=MEAN_VALUE_DIM
        )
        self._histograms[MEAN_VALUE_DIM] = self._dimensions[MEAN_VALUE_DIM].histogram()

    # ------------------------------------------------------------------
    # brushing
    # ------------------------------------------------------------------

    def brush(self, attribute: str, *values: str) -> None:
        """Keep only members whose ``attribute`` is one of ``values``."""
        self._dimension(attribute).filter_in(set(values))

    def brush_range(self, attribute: str, low: float, high: float) -> None:
        """Keep members with ``attribute`` in ``[low, high)`` (numeric dims)."""
        self._dimension(attribute).filter_range(low, high)

    def clear(self, attribute: str) -> None:
        self._dimension(attribute).filter_all()

    def clear_all(self) -> None:
        for dimension in self._dimensions.values():
            if dimension.current_filter is not None:
                dimension.filter_all()

    def _dimension(self, attribute: str) -> Dimension:
        if attribute not in self._dimensions:
            raise KeyError(
                f"unknown stats dimension {attribute!r}; "
                f"have {sorted(self._dimensions)}"
            )
        return self._dimensions[attribute]

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def histogram(self, attribute: str) -> list[tuple[object, int]]:
        """(value, count) pairs for ``attribute`` under all *other* brushes."""
        if attribute not in self._histograms:
            raise KeyError(f"unknown stats dimension {attribute!r}")
        return self._histograms[attribute].nonzero()

    def share(self, attribute: str, value: str) -> float:
        """Fraction of (other-brush-passing) members with this value (C8)."""
        pairs = dict(self._histograms[attribute].all())
        total = sum(pairs.values())
        return pairs.get(value, 0) / total if total else 0.0

    def selected_count(self) -> int:
        return self._crossfilter.count()

    def selected_users(self) -> np.ndarray:
        """Original user indices passing every brush."""
        return self.members[self._crossfilter.passing()]

    def table(self, limit: int = 20) -> list[dict[str, object]]:
        """The member table under the current brushes (paper's STATS table)."""
        rows: list[dict[str, object]] = []
        for user in self.selected_users()[:limit]:
            user = int(user)
            row: dict[str, object] = {
                "user": self.dataset.users.label(user),
            }
            row.update(self.dataset.demographics_of(user))
            row["actions"] = int(self.dataset.user_activity()[user])
            values = self.dataset.values_of_user(user)
            row["total_value"] = float(values.sum()) if len(values) else 0.0
            rows.append(row)
        return rows

    def histograms(self) -> dict[str, list[tuple[object, int]]]:
        """Every coordinated histogram at once (the STATS panel contents)."""
        return {name: histogram.nonzero() for name, histogram in self._histograms.items()}
