"""GROUPVIZ scene model: the k circles of Fig. 2.

§II-A: *"GROUPVIZ visualizes k groups in the form of circles ... The size
of circles reflects the number of users in groups.  Circles are color-coded
by any attribute of choice (e.g., by gender in Fig. 2) to provide immediate
insights.  The group description is shown by hovering over the circle."*

This module is rendering-agnostic: it computes the *scene* (positions,
radii, colors, hover labels); :mod:`repro.viz.render` turns scenes into
ASCII or SVG.  To stay below :mod:`repro.core` in the dependency order it
consumes plain data (sizes, member arrays, descriptions), which the session
or the experiment drivers extract from their groups.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import UserDataset
from repro.viz.layout import LayoutConfig, force_layout

#: A colorblind-safe categorical palette (Okabe–Ito).
PALETTE = [
    "#E69F00", "#56B4E9", "#009E73", "#F0E442",
    "#0072B2", "#D55E00", "#CC79A7", "#999999",
]


@dataclass(frozen=True)
class Circle:
    """One group circle in the scene."""

    gid: int
    x: float
    y: float
    radius: float
    size: int
    label: str  # hover text: the group description
    color: str
    color_value: str  # dominant value of the color-by attribute
    color_share: float  # how dominant that value is among members


@dataclass(frozen=True)
class Scene:
    """A laid-out GROUPVIZ frame."""

    circles: tuple[Circle, ...]
    color_attribute: Optional[str]
    legend: dict[str, str]  # value -> color

    @property
    def k(self) -> int:
        return len(self.circles)


def build_scene(
    gids: list[int],
    sizes: list[int],
    labels: list[str],
    memberships: list[np.ndarray],
    dataset: UserDataset,
    color_by: Optional[str] = None,
    similarity: Optional[np.ndarray] = None,
    layout_config: Optional[LayoutConfig] = None,
) -> Scene:
    """Lay out one GROUPVIZ frame.

    ``color_by`` picks the attribute circles are color-coded with; each
    circle takes the color of its dominant value.  ``similarity`` (k x k)
    feeds the force layout's attraction.
    """
    if not (len(gids) == len(sizes) == len(labels) == len(memberships)):
        raise ValueError("gids, sizes, labels and memberships must align")
    positions, radii = force_layout(
        np.asarray(sizes, dtype=np.float64), similarity, layout_config
    )

    legend: dict[str, str] = {}
    circles: list[Circle] = []
    for index, gid in enumerate(gids):
        color_value = ""
        share = 0.0
        color = PALETTE[index % len(PALETTE)]
        if color_by is not None:
            counts = dataset.column(color_by).counts(memberships[index])
            if counts:
                color_value, top_count = max(
                    counts.items(), key=lambda pair: (pair[1], pair[0])
                )
                share = top_count / max(sum(counts.values()), 1)
                if color_value not in legend:
                    legend[color_value] = PALETTE[len(legend) % len(PALETTE)]
                color = legend[color_value]
        circles.append(
            Circle(
                gid=gid,
                x=float(positions[index][0]),
                y=float(positions[index][1]),
                radius=float(radii[index]),
                size=int(sizes[index]),
                label=labels[index],
                color=color,
                color_value=color_value,
                color_share=share,
            )
        )
    return Scene(
        circles=tuple(circles),
        color_attribute=color_by,
        legend=legend,
    )
