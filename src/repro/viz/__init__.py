"""Visualization substrate: the data side of every VEXUS panel.

Headless by design — each module computes what the UI would show
(coordinated histogram counts, circle positions/colors, 2-D projections)
and :mod:`repro.viz.render` snapshots it to ASCII/SVG.
"""

from repro.viz.crossfilter import Crossfilter, Dimension, Histogram
from repro.viz.focusview import FocusView, build_focus_view, render_focus_ascii
from repro.viz.groupviz import PALETTE, Circle, Scene, build_scene
from repro.viz.layout import (
    LayoutConfig,
    circle_radii,
    force_layout,
    overlap_count,
)
from repro.viz.projection import (
    Projection,
    fisher_separability,
    lda_projection,
    pca_projection,
    silhouette_score,
)
from repro.viz.render import (
    render_dashboard,
    render_histogram,
    render_scene_ascii,
    render_scene_svg,
)
from repro.viz.stats import ACTIVITY_DIM, MEAN_VALUE_DIM, StatsView

__all__ = [
    "ACTIVITY_DIM",
    "Circle",
    "Crossfilter",
    "Dimension",
    "FocusView",
    "Histogram",
    "build_focus_view",
    "render_focus_ascii",
    "LayoutConfig",
    "MEAN_VALUE_DIM",
    "PALETTE",
    "Projection",
    "Scene",
    "StatsView",
    "build_scene",
    "circle_radii",
    "fisher_separability",
    "force_layout",
    "lda_projection",
    "overlap_count",
    "pca_projection",
    "render_dashboard",
    "render_histogram",
    "render_scene_ascii",
    "render_scene_svg",
    "silhouette_score",
]
