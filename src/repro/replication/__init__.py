"""Shared-nothing worker replication over zero-copy shared-memory arenas.

The serving tier from this package multiplies the single-process stack
across N ``spawn``-started workers without multiplying its memory or
startup cost: each epoch's immutable artifacts (membership CSR, the
similarity index's flat prefix/reserve arrays) are serialized once into
a content-addressed ``multiprocessing.shared_memory`` segment
(:mod:`~repro.replication.arena`) and mapped read-only by every replica
(:mod:`~repro.replication.worker`), while a sticky router
(:mod:`~repro.replication.pool`) pins each session's walk to the worker
holding its in-memory state and fails resumes over to any live replica
via the shared journal directory.
"""

from repro.replication.arena import (
    ARENA_PREFIX,
    ArenaDigestMismatch,
    AttachedArena,
    PublishedArena,
    arena_name,
    attach_arena,
    list_segments,
    publish_arena,
    sweep_orphans,
    unlink_arena,
)
from repro.replication.pool import (
    ReplicatedService,
    WorkerPool,
    WorkerUnavailable,
    serve_replicated,
)
from repro.replication.worker import WorkerControl, worker_main

__all__ = [
    "ARENA_PREFIX",
    "ArenaDigestMismatch",
    "AttachedArena",
    "PublishedArena",
    "ReplicatedService",
    "WorkerControl",
    "WorkerPool",
    "WorkerUnavailable",
    "arena_name",
    "attach_arena",
    "list_segments",
    "publish_arena",
    "serve_replicated",
    "sweep_orphans",
    "unlink_arena",
    "worker_main",
]
