"""Shared-nothing worker replication over zero-copy shared-memory arenas.

The serving tier from this package multiplies the single-process stack
across N ``spawn``-started workers without multiplying its memory or
startup cost: each epoch's immutable artifacts (membership CSR, the
similarity index's flat prefix/reserve arrays) are serialized once into
a content-addressed ``multiprocessing.shared_memory`` segment
(:mod:`~repro.replication.arena`) and mapped read-only by every replica
(:mod:`~repro.replication.worker`), while a sticky router
(:mod:`~repro.replication.pool`) pins each session's walk to the worker
holding its in-memory state and fails resumes over to any live replica
via the shared journal directory.  :class:`MultiSpaceWorkerPool`
composes the tier with the space registry: one fleet serves every space
in a manifest, publishing one arena per ``(space, epoch)`` and minting
``w<i>-<space>-s0001`` ids so routing works per ``(space, worker)``;
published payloads can additionally be snapshotted to disk
(``arena_cache``) and mmap-loaded on the next boot.
"""

from repro.replication.arena import (
    ARENA_PREFIX,
    ArenaDigestMismatch,
    AttachedArena,
    PublishedArena,
    arena_cache_path,
    arena_name,
    attach_arena,
    list_segments,
    load_arena_cache,
    publish_arena,
    save_arena_cache,
    sweep_orphans,
    unlink_arena,
)
from repro.replication.pool import (
    MultiSpaceWorkerPool,
    ReplicatedService,
    WorkerPool,
    WorkerUnavailable,
    compile_reference_pattern,
    serve_replicated,
    serve_replicated_spaces,
)
from repro.replication.worker import (
    SpaceWorkerControl,
    WorkerControl,
    worker_main,
)

__all__ = [
    "ARENA_PREFIX",
    "ArenaDigestMismatch",
    "AttachedArena",
    "MultiSpaceWorkerPool",
    "PublishedArena",
    "ReplicatedService",
    "SpaceWorkerControl",
    "WorkerControl",
    "WorkerPool",
    "WorkerUnavailable",
    "arena_cache_path",
    "arena_name",
    "attach_arena",
    "compile_reference_pattern",
    "list_segments",
    "load_arena_cache",
    "publish_arena",
    "save_arena_cache",
    "serve_replicated",
    "serve_replicated_spaces",
    "sweep_orphans",
    "unlink_arena",
    "worker_main",
]
