"""Shared-memory arenas for a group space's immutable epoch artifacts.

One :class:`StoreEpoch`'s serving artifacts — the pooled membership CSR
buffers, the similarity index's flat prefix/reserve rankings, and the
group descriptions — are bit-for-bit immutable once published, which is
exactly the property that lets N replica processes on one box *map* them
instead of owning them.  An :class:`ArtifactArena` segment is one
``multiprocessing.shared_memory`` block laid out as::

    8-byte magic | uint64-LE header length | JSON header | aligned arrays

keyed by the epoch's sha256 membership digest
(:func:`repro.core.store.space_digest`), so the segment name *is* the
content address: publishing the same epoch twice attaches the existing
segment, and a worker attaching by digest can verify — by re-hashing the
mapped member arrays — that the bytes it mapped are the bytes the
publisher named.  A mismatch raises the typed
:class:`ArenaDigestMismatch` and the worker refuses to serve (the same
contract as ``load_index``'s stale-store refusal).

Lifetime is deliberately manual.  CPython's ``resource_tracker`` would
unlink every segment when *any* tracking process exits, which is wrong
for a parent/worker fleet sharing segments across process lifetimes —
so both publish and attach unregister from it and ownership works like
this: the parent unlinks segments it ages out of the retention window
(Linux keeps existing mappings valid after ``shm_unlink``, so workers
pinned to an old epoch are unaffected) and sweeps leftover segments by
name prefix on startup (:func:`sweep_orphans`) because a SIGKILLed
parent really does leak them.
"""

from __future__ import annotations

import json
import mmap
import os
import struct
import sys
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from pathlib import Path
from typing import Optional

import numpy as np

from repro.obs.trace import traced

_MAGIC = b"RARENA1\n"
_HEADER_LEN = struct.Struct("<Q")
_ALIGN = 64

#: ``/dev/shm`` entries carrying this prefix belong to us; the startup
#: orphan sweep matches on it (plus the deployment tag) and nothing else.
ARENA_PREFIX = "repro_arena"

#: Names stored in every arena, in layout order.  The first two are the
#: pooled membership CSR buffers; the rest are the similarity index's
#: flat ranking arrays in ``SimilarityIndex.from_arrays`` order.
_ARRAY_NAMES = (
    "member_indices",
    "member_indptr",
    "prefix_ids",
    "prefix_sims",
    "prefix_indptr",
    "prefix_complete",
    "reserve_ids",
    "reserve_sims",
    "reserve_indptr",
    "tail_complete",
)


class ArenaDigestMismatch(ValueError):
    """The mapped artifact bytes do not hash to the digest that keys them.

    Raised on attach, before any artifact is handed out: a worker must
    never serve neighbors from a segment whose content disagrees with
    its manifest (torn publish, stray writer, name collision).
    """


def _disown(shm: shared_memory.SharedMemory) -> None:
    """Stop the resource tracker from unlinking this segment at exit.

    On CPython < 3.13 both create *and* attach register the segment, so
    the first tracked process to exit would tear the arena out from
    under every other replica.  Lifetime is managed explicitly by the
    parent (unlink on age-out, sweep on restart) instead.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink(shm: shared_memory.SharedMemory) -> None:
    """Unlink with the tracker re-armed so its books stay balanced.

    ``SharedMemory.unlink`` unconditionally sends the tracker an
    unregister — which we already sent in :func:`_disown` — so the pair
    is rebalanced by registering first; otherwise the tracker process
    logs a ``KeyError`` at exit for every segment we ever removed.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")
    except Exception:
        pass
    shm.unlink()


def _leave_mapped(shm: shared_memory.SharedMemory) -> None:
    """Accept that this mapping lives until process exit, quietly.

    A segment with exported NumPy views cannot be unmapped
    (``BufferError``); that is fine — exit reclaims the pages — but
    ``SharedMemory.__del__`` would retry the close and spray ``Exception
    ignored`` tracebacks over stderr during interpreter shutdown.  Shadow
    the bound ``close`` with a no-op so the finalizer stays silent.
    """
    shm.close = lambda: None  # type: ignore[method-assign]


def arena_name(tag: str, digest: str) -> str:
    """The content-addressed segment name for one published epoch."""
    return f"{ARENA_PREFIX}_{tag}_{digest[:16]}"


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def _space_digest(memberships) -> str:
    from repro.core.store import space_digest

    return space_digest(memberships)


@dataclass
class PublishedArena:
    """A parent-side handle on one published segment."""

    name: str
    digest: str
    epoch: int
    size: int
    shm: shared_memory.SharedMemory

    def close(self) -> None:
        try:
            self.shm.close()
        except BufferError:
            _leave_mapped(self.shm)

    def unlink(self) -> None:
        try:
            _unlink(self.shm)
        except FileNotFoundError:
            pass

    def __del__(self) -> None:
        # Route garbage collection through the quiet close so a dropped
        # publisher never sprays BufferError finalizer noise.
        try:
            self.close()
        except Exception:
            pass


def publish_arena(space, index, tag: str, epoch: int = 0) -> PublishedArena:
    """Serialize one epoch's artifacts into a shared-memory segment.

    Content-addressed and idempotent: the segment name is derived from
    the space's membership digest, and racing publishers of the same
    epoch converge on one segment (``FileExistsError`` means someone
    else finished first — attach their copy).  The digest is computed
    from the live space here, so the name can never promise bytes the
    segment does not hold.
    """
    memberships = space.memberships()
    digest = _space_digest(memberships)
    lengths = np.array(
        [len(members) for members in memberships], dtype=np.int64
    )
    member_indptr = np.zeros(len(memberships) + 1, dtype=np.int64)
    np.cumsum(lengths, out=member_indptr[1:])
    member_indices = (
        np.concatenate(
            [np.asarray(m, dtype=np.int64) for m in memberships]
        )
        if len(memberships)
        else np.empty(0, dtype=np.int64)
    )
    arrays = {
        "member_indices": member_indices,
        "member_indptr": member_indptr,
        "prefix_ids": index._prefix_ids,
        "prefix_sims": index._prefix_sims,
        "prefix_indptr": index._prefix_indptr,
        "prefix_complete": index._prefix_complete,
        "reserve_ids": index._reserve_ids,
        "reserve_sims": index._reserve_sims,
        "reserve_indptr": index._reserve_indptr,
        "tail_complete": index._tail_complete,
    }
    payloads = {
        name: np.ascontiguousarray(arrays[name]) for name in _ARRAY_NAMES
    }

    manifest: dict[str, dict] = {}
    # Header length depends on the offsets, which depend on the header
    # length — resolved by fixing the data start first (header measured
    # with zero offsets, padded up to alignment).
    probe = {
        name: {"dtype": arr.dtype.str, "count": int(arr.shape[0]), "offset": 0}
        for name, arr in payloads.items()
    }
    header = {
        "version": 1,
        "digest": digest,
        "tag": tag,
        "epoch": int(epoch),
        "dataset": space.dataset.name,
        "n_users": int(space.dataset.n_users),
        "n_groups": len(memberships),
        "materialize_fraction": float(index.materialize_fraction),
        "descriptions": [list(group.description) for group in space],
        "arrays": probe,
    }
    probe_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    # Offsets widen the JSON by at most a few digits per array; pad the
    # header region generously so the final encoding always fits.
    data_start = _aligned(
        len(_MAGIC) + _HEADER_LEN.size + len(probe_bytes) + 16 * len(payloads)
    )
    offset = data_start
    for name in _ARRAY_NAMES:
        arr = payloads[name]
        offset = _aligned(offset)
        manifest[name] = {
            "dtype": arr.dtype.str,
            "count": int(arr.shape[0]),
            "offset": offset,
        }
        offset += arr.nbytes
    header["arrays"] = manifest
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    total = max(offset, 1)

    name = arena_name(tag, digest)
    try:
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
    except FileExistsError:
        # Another publisher won the race; the content address guarantees
        # the existing segment holds the same bytes (attach verifies).
        attached = attach_arena(tag, digest)
        existing = attached.shm
        attached._shm = None  # hand ownership to the PublishedArena
        return PublishedArena(
            name=name,
            digest=digest,
            epoch=attached.epoch,
            size=existing.size,
            shm=existing,
        )
    _disown(shm)
    buf = shm.buf
    buf[: len(_MAGIC)] = _MAGIC
    _HEADER_LEN.pack_into(buf, len(_MAGIC), len(header_bytes))
    start = len(_MAGIC) + _HEADER_LEN.size
    buf[start : start + len(header_bytes)] = header_bytes
    for name_, meta in manifest.items():
        data = payloads[name_].tobytes()
        buf[meta["offset"] : meta["offset"] + len(data)] = data
    return PublishedArena(
        name=name, digest=digest, epoch=int(epoch), size=total, shm=shm
    )


class AttachedArena:
    """A worker-side zero-copy view over one published arena.

    Every accessor returns read-only NumPy views into the shared buffer
    — nothing is copied but the small description list.  The instance
    must outlive every view it hands out (closing the segment with live
    exports is a ``BufferError``); workers keep their attachments for
    the life of the epoch binding.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, header: dict, verified: bool
    ) -> None:
        self._shm: Optional[shared_memory.SharedMemory] = shm
        self.header = header
        self.verified = verified
        self._views: dict[str, np.ndarray] = {}

    # -- identity --------------------------------------------------------

    @property
    def shm(self) -> shared_memory.SharedMemory:
        if self._shm is None:
            raise ValueError("arena is closed")
        return self._shm

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def digest(self) -> str:
        return self.header["digest"]

    @property
    def epoch(self) -> int:
        return int(self.header["epoch"])

    @property
    def n_groups(self) -> int:
        return int(self.header["n_groups"])

    # -- raw views -------------------------------------------------------

    def array(self, name: str) -> np.ndarray:
        """A read-only view of one stored array."""
        view = self._views.get(name)
        if view is None:
            meta = self.header["arrays"][name]
            view = np.frombuffer(
                self.shm.buf,
                dtype=np.dtype(meta["dtype"]),
                count=meta["count"],
                offset=meta["offset"],
            )
            view.flags.writeable = False
            self._views[name] = view
        return view

    def memberships(self) -> list[np.ndarray]:
        """Per-group member views (int64, sorted-unique by publish)."""
        indices = self.array("member_indices")
        indptr = self.array("member_indptr")
        return [
            indices[indptr[g] : indptr[g + 1]] for g in range(self.n_groups)
        ]

    # -- artifact constructors -------------------------------------------

    def group_space(self, dataset):
        """The epoch's :class:`GroupSpace` over zero-copy member views.

        ``dataset`` must be the dataset the publisher serialized against
        — the header pins its name and user count, and every member
        index is bounds-checked, so a worker booted with the wrong data
        refuses instead of serving out-of-range neighbors.
        """
        from repro.core.group import Group, GroupSpace

        if dataset.name != self.header["dataset"]:
            raise ValueError(
                f"arena was published for dataset "
                f"{self.header['dataset']!r}, worker holds {dataset.name!r}"
            )
        if int(dataset.n_users) != int(self.header["n_users"]):
            raise ValueError(
                f"arena expects {self.header['n_users']} users, "
                f"dataset has {dataset.n_users}"
            )
        indices = self.array("member_indices")
        if len(indices) and int(indices.max()) >= int(dataset.n_users):
            raise ValueError(
                "arena member indices exceed the dataset's user range"
            )
        descriptions = self.header["descriptions"]
        groups = [
            Group(gid, tuple(descriptions[gid]), members)
            for gid, members in enumerate(self.memberships())
        ]
        return GroupSpace(dataset, groups)

    def similarity_index(self):
        """The epoch's :class:`SimilarityIndex` over borrowed rankings."""
        from repro.index.inverted import SimilarityIndex

        return SimilarityIndex.from_arrays(
            self.memberships(),
            int(self.header["n_users"]),
            float(self.header["materialize_fraction"]),
            prefix_ids=self.array("prefix_ids"),
            prefix_sims=self.array("prefix_sims"),
            prefix_indptr=self.array("prefix_indptr"),
            prefix_complete=self.array("prefix_complete"),
            reserve_ids=self.array("reserve_ids"),
            reserve_sims=self.array("reserve_sims"),
            reserve_indptr=self.array("reserve_indptr"),
            tail_complete=self.array("tail_complete"),
            csr_indices=self.array("member_indices"),
            csr_indptr=self.array("member_indptr"),
        )

    # -- lifetime --------------------------------------------------------

    def close(self) -> None:
        """Unmap the segment (only safe once no views remain live)."""
        self._views.clear()
        if self._shm is not None:
            try:
                self._shm.close()
            except BufferError:
                # Live exports somewhere; leave the mapping alone.  The
                # views stay valid and process exit reclaims the pages.
                _leave_mapped(self._shm)
                return
            self._shm = None

    def unlink(self) -> None:
        try:
            _unlink(self.shm)
        except FileNotFoundError:
            pass

    def __del__(self) -> None:
        # Garbage collection goes through the quiet close: mappings with
        # live views stay mapped, silently, until process exit.
        try:
            self.close()
        except Exception:
            pass


@traced("arena_attach")
def attach_arena(
    tag: str, digest: str, verify: bool = True
) -> AttachedArena:
    """Map a published arena by content address and verify it.

    ``verify=True`` (the default, and what every worker uses) re-hashes
    the mapped member arrays with the same
    :func:`~repro.core.store.space_digest` the publisher used and
    demands it equal both the requested digest and the one stored in
    the header — a disagreement is a typed :class:`ArenaDigestMismatch`
    refusal, never silently-wrong neighbors.
    """
    name = arena_name(tag, digest)
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no arena segment {name!r} — the publisher has not "
            f"published epoch digest {digest[:12]}… (or already unlinked it)"
        ) from None
    _disown(shm)
    try:
        header = _read_header(shm)
    except Exception:
        shm.close()
        raise
    arena = AttachedArena(shm, header, verified=False)
    if header.get("digest") != digest:
        stored = str(header.get("digest", ""))[:12]
        arena.close()
        raise ArenaDigestMismatch(
            f"arena {name!r} manifest names digest {stored}…, "
            f"attach requested {digest[:12]}…"
        )
    if verify:
        mapped = _space_digest(arena.memberships())
        if mapped != digest:
            # Drop the member views before unmapping.
            arena._views.clear()
            arena.close()
            raise ArenaDigestMismatch(
                f"arena {name!r} content digests to {mapped[:12]}…, "
                f"manifest promises {digest[:12]}… — refusing to serve "
                f"from a corrupt or foreign segment"
            )
        arena.verified = True
    return arena


def _read_header(shm: shared_memory.SharedMemory) -> dict:
    buf = shm.buf
    if bytes(buf[: len(_MAGIC)]) != _MAGIC:
        raise ArenaDigestMismatch(
            f"segment {shm.name!r} does not carry the arena magic"
        )
    (header_len,) = _HEADER_LEN.unpack_from(buf, len(_MAGIC))
    start = len(_MAGIC) + _HEADER_LEN.size
    header = json.loads(bytes(buf[start : start + header_len]).decode("utf-8"))
    if header.get("version") != 1:
        raise ValueError(
            f"unsupported arena version {header.get('version')!r}"
        )
    return header


def unlink_arena(tag: str, digest: str) -> bool:
    """Remove one segment by content address; True when it existed.

    Existing mappings stay valid (POSIX ``shm_unlink`` removes the name,
    not the memory), so workers pinned to this epoch are unaffected —
    only new attaches are refused.
    """
    name = arena_name(tag, digest)
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    _disown(shm)
    try:
        _unlink(shm)
    except FileNotFoundError:
        return False
    finally:
        shm.close()
    return True


def list_segments(tag: str) -> list[str]:
    """Segment names under this tag currently present in ``/dev/shm``."""
    root = Path("/dev/shm")
    if not root.is_dir():
        return []
    prefix = f"{ARENA_PREFIX}_{tag}_"
    return sorted(
        entry.name for entry in root.iterdir() if entry.name.startswith(prefix)
    )


def arena_cache_path(tag: str, cache_dir: str | Path) -> Path:
    """Where one tag's latest published payload is cached on disk."""
    return Path(cache_dir) / f"{tag}.arena"


def save_arena_cache(
    published: PublishedArena, tag: str, cache_dir: str | Path
) -> Path:
    """Persist one published segment's bytes for the next cold boot.

    The file is the segment verbatim (magic, header, aligned arrays) —
    self-describing and content-addressed, so :func:`load_arena_cache`
    can re-create the shared segment without touching discovery or
    index construction.  One file per tag: the latest publish wins,
    written atomically (tmp + rename) so a crash mid-save leaves the
    previous snapshot intact.
    """
    directory = Path(cache_dir)
    directory.mkdir(parents=True, exist_ok=True)
    final = arena_cache_path(tag, directory)
    staging = directory / f"{tag}.arena.tmp"
    with open(staging, "wb") as handle:
        handle.write(bytes(published.shm.buf))
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(staging, final)
    return final


def _manifest_extent(header: dict) -> int:
    """The last byte any header-manifested array reaches, or ``inf``.

    Anything malformed reports an unreachable extent so the caller
    treats the file as torn rather than crashing on it.
    """
    arrays = header.get("arrays")
    if not isinstance(arrays, dict) or not arrays:
        return sys.maxsize
    end = 0
    try:
        for meta in arrays.values():
            nbytes = int(meta["count"]) * np.dtype(meta["dtype"]).itemsize
            end = max(end, int(meta["offset"]) + nbytes)
    except Exception:  # noqa: BLE001 — foreign/garbage manifest
        return sys.maxsize
    return end


def load_arena_cache(
    tag: str, cache_dir: str | Path, verify: bool = True
) -> Optional[PublishedArena]:
    """Re-create a published segment from its on-disk snapshot, verified.

    ``mmap``s the cache file, copies the payload into a fresh
    shared-memory segment under the content address the header names,
    and (by default) re-attaches with digest verification — the same
    refusal every worker applies — before handing the publisher handle
    back.  Anything wrong (missing file, torn write, foreign tag, stale
    digest) returns ``None`` after removing the bad file: a corrupt
    cache must degrade to a cold build, never to wrong neighbors.
    """
    path = arena_cache_path(tag, cache_dir)
    try:
        size = path.stat().st_size
    except OSError:
        return None
    if size < len(_MAGIC) + _HEADER_LEN.size:
        path.unlink(missing_ok=True)
        return None
    with open(path, "rb") as handle:
        with mmap.mmap(handle.fileno(), 0, access=mmap.ACCESS_READ) as mapped:
            if mapped[: len(_MAGIC)] != _MAGIC:
                header = None
            else:
                try:
                    (header_len,) = _HEADER_LEN.unpack_from(mapped, len(_MAGIC))
                    start = len(_MAGIC) + _HEADER_LEN.size
                    header = json.loads(
                        mapped[start : start + header_len].decode("utf-8")
                    )
                except Exception:  # noqa: BLE001 — torn/foreign file
                    header = None
            if (
                not isinstance(header, dict)
                or header.get("version") != 1
                or header.get("tag") != tag
                or not header.get("digest")
            ):
                path.unlink(missing_ok=True)
                return None
            # The membership digest only covers the member arrays (the
            # first region of the payload), so a torn tail would still
            # "verify" — demand the file reach every extent the header
            # manifests before re-creating the segment.
            if size < _manifest_extent(header):
                path.unlink(missing_ok=True)
                return None
            digest = str(header["digest"])
            epoch = int(header.get("epoch", 0))
            name = arena_name(tag, digest)
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            except FileExistsError:
                # The segment is already live (a racing loader or a
                # publisher beat us); attach-and-verify their copy.
                try:
                    attached = attach_arena(tag, digest, verify=verify)
                except (FileNotFoundError, ValueError):
                    return None
                existing = attached.shm
                attached._shm = None  # hand ownership to the PublishedArena
                return PublishedArena(
                    name=name,
                    digest=digest,
                    epoch=attached.epoch,
                    size=existing.size,
                    shm=existing,
                )
            _disown(shm)
            shm.buf[:size] = mapped[:size]
    if verify:
        try:
            probe = attach_arena(tag, digest, verify=True)
        except (FileNotFoundError, ValueError):
            try:
                _unlink(shm)
            except FileNotFoundError:
                pass
            shm.close()
            path.unlink(missing_ok=True)
            return None
        probe.close()
    return PublishedArena(
        name=name, digest=digest, epoch=epoch, size=shm.size, shm=shm
    )


def sweep_orphans(tag: str) -> list[str]:
    """Unlink every segment under this tag; the startup leak sweep.

    A SIGKILLed parent leaks its segments (nothing ran unlink, and the
    resource tracker was deliberately disarmed) — the replacement parent
    calls this before publishing anything, so a crash loop can never
    accumulate dead arenas in ``/dev/shm``.  Returns the removed names.
    """
    removed: list[str] = []
    for name in list_segments(tag):
        try:
            shm = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        _disown(shm)
        try:
            _unlink(shm)
            removed.append(name)
        except FileNotFoundError:
            pass
        finally:
            shm.close()
    return removed
