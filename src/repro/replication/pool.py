"""The parent tier: publish arenas, spawn replicas, route sticky traffic.

:class:`WorkerPool` owns the authoritative
:class:`~repro.core.runtime.GroupSpaceRuntime` (mutations apply here
first), serializes each epoch's artifacts into a shared-memory arena
(:mod:`repro.replication.arena`), and keeps N ``spawn``-started worker
processes attached to the current arena — each one a full
``SessionManager`` + HTTP service minting ids under its own ``w<i>-``
prefix.  :class:`MultiSpaceWorkerPool` is the same fleet fronting a full
:class:`~repro.spaces.registry.SpaceRegistry`: the parent lazily
materializes each named space (202 + Retry-After while building, exactly
as the single-process registry front does), publishes one arena per
``(space, epoch)`` under a per-space tag, and each worker runs a
*registry* of arena-attached runtimes — session ids compose the worker
tag and the space prefix (``w<i>-<space>-s0001``) so sticky routing,
journal-tail takeover and durable eviction all route by ``(space,
worker)``.  :class:`ReplicatedService` is the HTTP router in front of
either pool:

- *sticky routing*: session ids and resume tokens start with the minting
  worker's tag, so every verb of a walk lands on the replica holding its
  in-memory state;
- *takeover*: a resume whose home worker is dead routes to any live
  replica — all workers share one state directory, so the PR 6 journal
  tail replays there and the walk continues field-identical;
- *mutation*: ``POST /spaces/<name>/mutate`` applies the delta on the
  parent runtime, publishes the new epoch's arena, and broadcasts
  ``rebind`` to every worker (each invalidates its own stale
  fingerprints); segments aged out of the retention window are unlinked
  (mapped copies in pinned workers stay valid).  In registry mode only
  the named space's arena is republished and rebound;
- *health*: ``/healthz`` and ``/spaces`` aggregate per-replica liveness,
  epoch, and session counts.

A worker that stops answering is marked dead, the request that noticed
gets a typed 503 with ``Retry-After`` (the stock client retries), and a
replacement is respawned onto the current arena(s) with bounded backoff
in the background.  Consecutive respawn failures are surfaced per
replica on ``/healthz`` and scale the 503's ``Retry-After`` so a load
balancer can tell a blip from a crash loop.
"""

from __future__ import annotations

import base64
import http.client
import json
import math
import multiprocessing
import pickle
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional
from urllib.parse import parse_qs

from repro.obs import (
    TRACE_HEADER,
    Observability,
    current_trace,
    label_dump,
    merge_dumps,
    render_dump,
    span,
)
from repro.replication.arena import (
    PublishedArena,
    attach_arena,
    load_arena_cache,
    publish_arena,
    save_arena_cache,
    sweep_orphans,
)
from repro.replication.worker import _worker_entry
from repro.spaces.descriptor import SpaceDescriptor
from repro.spaces.registry import (
    SpaceBuildError,
    SpaceBuildingError,
    SpaceNotFoundError,
    SpaceRegistry,
)

#: Space names shaped like a worker tag would make ``w1-eval-s0001``
#: unparseable (worker 1 of space ``eval``, or some worker of space
#: ``w1-eval``?) — pools refuse such manifests loudly at construction.
_AMBIGUOUS_SPACE = re.compile(r"^w\d+-")

#: Seconds a freshly spawned worker gets to come up (imports NumPy and
#: SciPy from scratch under the spawn start method, then maps the arena).
_BOOT_TIMEOUT_S = 60.0

#: Per-request forwarding timeout.  Generous: a budgeted click is capped
#: near the paper's 100 ms, but resumes replay journal tails.
_FORWARD_TIMEOUT_S = 30.0

#: In-thread retry schedule for replacing a dead replica.  Spawning can
#: fail transiently (fd pressure, a port race, the OS reaping slowly);
#: retrying with backoff inside the respawn thread means one SIGKILL
#: never strands a replica slot behind a single failed attempt.  After
#: the schedule is exhausted the thread gives up and the next route that
#: needs the replica re-arms it.
_RESPAWN_BACKOFF_S = (0.1, 0.4, 1.6)


def compile_reference_pattern(
    space_names: Optional[list[str]] = None,
) -> "re.Pattern[str]":
    """The anchored sticky-routing pattern for session ids / tokens.

    Session ids are ``w<index>-s0001`` (single-space pools) or
    ``w<index>-<space>-s0001`` (registry pools); resume tokens append
    ``-<hex12>``.  The pattern anchors the full shape — worker tag,
    then (for registry pools) one of the *known* space names escaped
    literally, then the session counter — instead of grabbing any
    leading ``w<digits>-``, so a reference that merely *starts* like a
    worker tag is never misrouted.  Known names are alternated
    longest-first so a space whose name extends another's
    (``eval`` / ``eval-extra``) resolves to the longest literal match.
    """
    if space_names:
        names = sorted(space_names, key=len, reverse=True)
        alternatives = "|".join(re.escape(name) for name in names)
        return re.compile(rf"^w(\d+)-({alternatives})-s\d{{4,}}(?:-|$)")
    return re.compile(r"^w(\d+)-s\d{4,}(?:-|$)")


def _parse_reference(
    reference: str, pattern: "re.Pattern[str]", n_workers: int
) -> tuple[Optional[int], Optional[str]]:
    """``(worker index, space name)`` of a reference, or ``(None, None)``."""
    match = pattern.match(reference or "")
    if match is None:
        return None, None
    index = int(match.group(1))
    if not 0 <= index < n_workers:
        return None, None
    space = match.group(2) if pattern.groups >= 2 else None
    return index, space


class WorkerUnavailable(RuntimeError):
    """The replica that owns this request is (currently) gone.

    Carries the typed-503 surface: ``retry_after_s`` scales with the
    replica's consecutive respawn failures, and ``error_type`` flips to
    ``replica_respawn_failing`` once the bounded backoff schedule has
    been burned through without a successful replacement.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 1.0,
        error_type: str = "replica_unavailable",
    ) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.error_type = error_type


@dataclass
class _Replica:
    index: int
    process: multiprocessing.process.BaseProcess
    port: int
    pid: int
    epoch: int = -1
    digest: str = ""
    spaces: dict = field(default_factory=dict)
    alive: bool = True
    restarts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


def _post(
    host: str,
    port: int,
    path: str,
    body: dict,
    timeout: float = _FORWARD_TIMEOUT_S,
) -> dict:
    payload = json.dumps(body).encode("utf-8")
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8") or "{}")
        if response.status >= 400:
            raise RuntimeError(
                f"worker answered {response.status} on {path}: {data}"
            )
        return data
    finally:
        connection.close()


class _ReplicaFleet:
    """Shared replica machinery: spawn, respawn-with-backoff, routing.

    Subclasses provide ``_spec`` (the boot material one worker needs),
    ``_release`` (parent-side artifact teardown after the fleet is
    reaped) and the health-row describe/merge hooks; everything about
    process lifecycle, sticky routing and failure accounting lives here
    so the single-space and registry pools cannot drift apart.
    """

    # -- construction ----------------------------------------------------

    def _init_fleet(
        self,
        *,
        workers: int,
        host: str,
        tag: str,
        metrics: bool = True,
        slow_click_ms: Optional[float] = None,
        slowlog_dir: Optional[str | Path] = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.host = host
        self.tag = tag
        self.n_workers = workers
        #: Observability knobs, threaded verbatim into every worker spec:
        #: ``metrics=False`` boots workers with no obs bundle at all, and
        #: ``slowlog_dir`` gives each worker its own
        #: ``slowlog-w<i>.jsonl`` under the shared directory.
        self.metrics = bool(metrics)
        self.slow_click_ms = slow_click_ms
        self.slowlog_dir = str(slowlog_dir) if slowlog_dir is not None else None
        self.replicas: list[_Replica] = []
        self._ctx = multiprocessing.get_context("spawn")
        self._mutate_lock = threading.Lock()
        self._stopped = False
        self._route_counter = 0
        self._route_lock = threading.Lock()
        self._respawn_lock = threading.Lock()
        self._respawning: set[int] = set()
        #: Cumulative failed respawn attempts per replica slot (never
        #: reset — ``/healthz`` surfaces it as a crash-loop odometer).
        self._respawn_failures: dict[int, int] = {}
        #: Consecutive failures since the last successful respawn; zeroed
        #: on success, drives the typed 503's ``Retry-After``.
        self._respawn_streak: dict[int, int] = {}

    def _spawn_fleet(self) -> None:
        self.replicas = [self._spawn(index) for index in range(self.n_workers)]

    # -- worker lifecycle ------------------------------------------------

    def _spec(self, worker_index: int) -> dict:
        raise NotImplementedError

    def _spawn(self, worker_index: int) -> _Replica:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(self._spec(worker_index), child_conn),
            name=f"repro-worker-{self.tag}-{worker_index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_BOOT_TIMEOUT_S):
            process.terminate()
            raise RuntimeError(
                f"worker {worker_index} did not come up within "
                f"{_BOOT_TIMEOUT_S:.0f}s"
            )
        ready = parent_conn.recv()
        parent_conn.close()
        if not ready.get("ok"):
            process.join(timeout=5.0)
            raise RuntimeError(
                f"worker {worker_index} failed to boot: {ready.get('error')}"
            )
        return _Replica(
            index=worker_index,
            process=process,
            port=int(ready["port"]),
            pid=int(ready["pid"]),
            epoch=int(ready.get("epoch", -1)),
            digest=str(ready.get("digest", "")),
            spaces={
                name: dict(info)
                for name, info in (ready.get("spaces") or {}).items()
            },
        )

    def _mark_dead(self, replica: _Replica) -> None:
        replica.alive = False

    def respawn(self, worker_index: int) -> _Replica:
        """Replace a dead replica in place (idempotent per index)."""
        replica = self.replicas[worker_index]
        with replica.lock:
            current = self.replicas[worker_index]
            if self._stopped:
                return current
            if current.alive and current.process.is_alive():
                return current
            if current.process.is_alive():
                current.process.terminate()
            current.process.join(timeout=5.0)
            with self._mutate_lock:
                # Snapshot digest/epoch under the mutation lock so the
                # replacement can never attach an arena that a racing
                # mutate is about to supersede without a rebind.
                fresh = self._spawn(worker_index)
            fresh.restarts = current.restarts + 1
            self.replicas[worker_index] = fresh
            return fresh

    def _respawn_async(self, worker_index: int) -> None:
        """Arm one background respawn for the slot (dedup'd while live)."""
        with self._respawn_lock:
            if self._stopped or worker_index in self._respawning:
                return
            self._respawning.add(worker_index)
        threading.Thread(
            target=lambda: self._quiet_respawn(worker_index),
            name=f"repro-respawn-{self.tag}-{worker_index}",
            daemon=True,
        ).start()

    def _quiet_respawn(self, worker_index: int) -> None:
        """Respawn with bounded backoff; count every failed attempt.

        Each failure bumps the replica's cumulative ``respawn_failures``
        (surfaced on ``/healthz``) and its consecutive streak (scales
        the 503 ``Retry-After`` routes answer while the slot is down).
        When the schedule runs dry the thread exits — the guard set is
        cleared, so the next route that lands on the dead slot arms a
        fresh round instead of silently never retrying.
        """
        try:
            for delay in (*_RESPAWN_BACKOFF_S, None):
                if self._stopped:
                    return
                try:
                    self.respawn(worker_index)
                except Exception:
                    self._respawn_failures[worker_index] = (
                        self._respawn_failures.get(worker_index, 0) + 1
                    )
                    self._respawn_streak[worker_index] = (
                        self._respawn_streak.get(worker_index, 0) + 1
                    )
                    if delay is None:
                        return
                    time.sleep(delay)
                else:
                    self._respawn_streak[worker_index] = 0
                    return
        finally:
            with self._respawn_lock:
                self._respawning.discard(worker_index)

    # -- routing ---------------------------------------------------------

    def worker_of(self, reference: str) -> Optional[int]:
        """The worker index a session id / resume token is stuck to."""
        index, _ = _parse_reference(
            reference, self._reference_re, len(self.replicas)
        )
        return index

    def reference_space(self, reference: str) -> Optional[str]:
        """The space a reference belongs to (registry pools only)."""
        _, space = _parse_reference(
            reference, self._reference_re, len(self.replicas)
        )
        return space

    def alive_replicas(self) -> list[_Replica]:
        return [replica for replica in self.replicas if replica.alive]

    def pick_fresh(self) -> _Replica:
        """Round-robin over live replicas for a fresh ``open``."""
        candidates = self.alive_replicas()
        if not candidates:
            raise WorkerUnavailable("no live replicas")
        with self._route_lock:
            self._route_counter += 1
            return candidates[self._route_counter % len(candidates)]

    def pick_for(self, reference: str, takeover: bool = False) -> _Replica:
        """The replica owning ``reference`` (a session id or token).

        ``takeover=True`` (resume-by-token routing) falls back to any
        live replica when the home worker is dead: the shared state
        directory holds the snapshot + journal tail, so any replica can
        finish the walk.  Mid-session verbs never take over — the
        session's in-memory state died with its worker, and the client's
        recovery path is a resume.
        """
        index = self.worker_of(reference)
        if index is None:
            raise KeyError(f"reference {reference!r} carries no worker tag")
        replica = self.replicas[index]
        if replica.alive and replica.process.is_alive():
            return replica
        if replica.alive:
            self._mark_dead(replica)
        # Always re-arm: the in-flight guard dedups, and a slot whose
        # backoff schedule ran dry gets a fresh round from the next
        # request that needs it instead of staying down forever.
        self._respawn_async(index)
        if takeover:
            candidates = self.alive_replicas()
            if candidates:
                return candidates[0]
        raise self._unavailable(index)

    def _unavailable(self, index: int) -> WorkerUnavailable:
        streak = self._respawn_streak.get(index, 0)
        if streak >= len(_RESPAWN_BACKOFF_S):
            return WorkerUnavailable(
                f"worker {index} is down and its last {streak} respawn "
                "attempts failed",
                retry_after_s=min(1.0 + streak, 15.0),
                error_type="replica_respawn_failing",
            )
        return WorkerUnavailable(
            f"worker {index} is down; its replacement is starting"
        )

    def prepare_open_body(self, body: dict) -> bool:
        """Pre-route hook for ``open``; True when ``body`` was rewritten."""
        return False

    # -- introspection ---------------------------------------------------

    def _describe_replica(self, row: dict, replica: _Replica) -> None:
        raise NotImplementedError

    def _merge_ping(self, row: dict, replica: _Replica, ping: dict) -> None:
        raise NotImplementedError

    def replica_health(self) -> list[dict]:
        """One row per replica: liveness probe + worker-side counters."""
        rows = []
        for replica in self.replicas:
            row = {
                "index": replica.index,
                "pid": replica.pid,
                "port": replica.port,
                "alive": replica.alive and replica.process.is_alive(),
                "restarts": replica.restarts,
                "respawn_failures": self._respawn_failures.get(
                    replica.index, 0
                ),
            }
            self._describe_replica(row, replica)
            if row["alive"]:
                try:
                    ping = _post(
                        self.host,
                        replica.port,
                        "/internal/ping",
                        {},
                        timeout=2.0,
                    )
                except (OSError, RuntimeError, ValueError):
                    row["alive"] = False
                    self._mark_dead(replica)
                    self._respawn_async(replica.index)
                else:
                    row.update(
                        sessions=ping.get("sessions"),
                        degraded=ping.get("degraded"),
                    )
                    self._merge_ping(row, replica, ping)
            rows.append(row)
        return rows

    # -- shutdown --------------------------------------------------------

    def _release(self) -> None:
        raise NotImplementedError

    def stop(self, drain: bool = True) -> None:
        """Drain every worker, reap the processes, unlink the segments."""
        if self._stopped:
            return
        self._stopped = True
        for replica in self.replicas:
            if not (replica.alive and replica.process.is_alive()):
                continue
            if drain:
                try:
                    _post(
                        self.host,
                        replica.port,
                        "/internal/drain",
                        {},
                        timeout=10.0,
                    )
                except (OSError, RuntimeError, ValueError):
                    pass
        deadline = time.monotonic() + 15.0
        for replica in self.replicas:
            replica.process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            if replica.process.is_alive():
                replica.process.terminate()
                replica.process.join(timeout=5.0)
            if replica.process.is_alive():
                replica.process.kill()
                replica.process.join(timeout=5.0)
            replica.alive = False
        self._release()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class WorkerPool(_ReplicaFleet):
    """N replica processes serving one space from shared-memory arenas."""

    def __init__(
        self,
        dataset,
        space,
        index=None,
        *,
        workers: int = 2,
        tag: Optional[str] = None,
        state_dir: Optional[str | Path] = None,
        durability: str = "snapshot",
        compact_every: int = 64,
        default_config=None,
        max_sessions: Optional[int] = None,
        host: str = "127.0.0.1",
        space_name: Optional[str] = None,
        retain_segments: int = 4,
        materialize_fraction: float = 0.10,
        sweep: bool = True,
        metrics: bool = True,
        slow_click_ms: Optional[float] = None,
        slowlog_dir: Optional[str | Path] = None,
    ) -> None:
        from repro.core.runtime import GroupSpaceRuntime

        if retain_segments < 1:
            raise ValueError("retain_segments must be >= 1")
        #: The deployment identity: segment names carry it, and the
        #: startup sweep removes whatever a crashed predecessor with the
        #: same tag leaked.  Defaults to the space name so restarts of
        #: one deployment sweep their own orphans and nobody else's.
        self._init_fleet(
            workers=workers,
            host=host,
            tag=tag if tag is not None else (space_name or "space"),
            metrics=metrics,
            slow_click_ms=slow_click_ms,
            slowlog_dir=slowlog_dir,
        )
        self.dataset = dataset
        self.space_name = space_name
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.durability = durability
        self.compact_every = compact_every
        self.default_config = default_config
        self.max_sessions = max_sessions
        self.retain_segments = retain_segments
        self._reference_re = compile_reference_pattern()
        #: Segments a SIGKILLed predecessor leaked; swept before the
        #: first publish so a crash loop never accumulates dead arenas.
        self.swept_orphans: list[str] = sweep_orphans(self.tag) if sweep else []
        # The parent's runtime is the mutation authority, never a
        # serving path — no cross-session cache needed here.
        self.runtime = GroupSpaceRuntime(
            space,
            index=index,
            materialize_fraction=materialize_fraction,
            share_cache=False,
            name=space_name,
        )
        self._published: "OrderedDict[str, PublishedArena]" = OrderedDict()
        genesis = publish_arena(
            self.runtime.space,
            self.runtime.index,
            self.tag,
            epoch=self.runtime.epoch,
        )
        self._published[genesis.digest] = genesis
        self._spawn_fleet()

    # -- worker lifecycle ------------------------------------------------

    def _spec(self, worker_index: int) -> dict:
        return {
            "tag": self.tag,
            "worker_index": worker_index,
            "digest": self.runtime.membership_digest(),
            "epoch": self.runtime.epoch,
            "dataset": self.dataset,
            "space_name": self.space_name,
            "state_dir": (
                str(self.state_dir) if self.state_dir is not None else None
            ),
            "durability": self.durability,
            "compact_every": self.compact_every,
            "default_config": self.default_config,
            "max_sessions": self.max_sessions,
            "host": self.host,
            "metrics": self.metrics,
            "slow_click_ms": self.slow_click_ms,
            "slowlog_dir": self.slowlog_dir,
        }

    # -- mutation --------------------------------------------------------

    def mutate(self, delta, verify: bool = False) -> dict:
        """Apply a delta everywhere: parent epoch, arena, worker rebinds.

        The parent runtime applies (and optionally parity-verifies) the
        delta, the new epoch is published as a content-addressed arena
        segment, and every live worker is told to rebind by digest —
        computing its own stale-fingerprint set from ``changed_old``
        (the old-gid view of the delta) because fingerprints are
        process-local.  Old segments beyond the retention window are
        unlinked; workers pinned to them keep their mappings.
        """
        respawn: list[int] = []
        with self._mutate_lock:
            changed_old = sorted(
                {int(gid) for gid in delta.removed}
                | {int(gid) for gid, _ in delta.changed}
            )
            report = dict(self.runtime.apply_deltas(delta, verify=verify))
            published = publish_arena(
                self.runtime.space,
                self.runtime.index,
                self.tag,
                epoch=report["epoch"],
            )
            self._published[published.digest] = published
            rebound = []
            for replica in self.replicas:
                if not replica.alive:
                    continue
                try:
                    outcome = _post(
                        self.host,
                        replica.port,
                        "/internal/rebind",
                        {
                            "digest": published.digest,
                            "epoch": report["epoch"],
                            "changed_old": changed_old,
                        },
                    )
                except (OSError, RuntimeError, ValueError):
                    self._mark_dead(replica)
                    respawn.append(replica.index)
                    continue
                replica.epoch = int(outcome.get("epoch", report["epoch"]))
                replica.digest = published.digest
                rebound.append(replica.index)
            while len(self._published) > self.retain_segments:
                _, aged = self._published.popitem(last=False)
                aged.unlink()
                aged.close()
            report["arena"] = published.name
            report["rebound_workers"] = rebound
        for index in respawn:
            self._respawn_async(index)
        return report

    def mutate_space(self, name: str, delta, verify: bool = False) -> dict:
        """Route a named mutation: this pool hosts exactly one space."""
        expected = self.space_name or "default"
        if name != expected:
            raise SpaceNotFoundError(name)
        return self.mutate(delta, verify=verify)

    # -- introspection ---------------------------------------------------

    def _describe_replica(self, row: dict, replica: _Replica) -> None:
        row["epoch"] = replica.epoch
        row["digest"] = replica.digest

    def _merge_ping(self, row: dict, replica: _Replica, ping: dict) -> None:
        row["epoch"] = ping.get("epoch", row["epoch"])
        row["digest"] = ping.get("digest", row["digest"])

    def stats(self) -> dict:
        replicas = self.replica_health()
        return {
            "mode": "replicated",
            "tag": self.tag,
            "workers": self.n_workers,
            "alive": sum(1 for row in replicas if row["alive"]),
            "epoch": self.runtime.epoch,
            "digest": self.runtime.membership_digest(),
            "segments": list(self._published.keys()),
            "swept_orphans": self.swept_orphans,
            "replicas": replicas,
        }

    def spaces_payload(self) -> dict:
        name = self.space_name or "default"
        pool_stats = self.stats()
        return {
            "spaces": [
                {
                    "name": name,
                    "state": "ready" if pool_stats["alive"] else "down",
                    "epoch": pool_stats["epoch"],
                    "digest": pool_stats["digest"],
                    "replicas": pool_stats["replicas"],
                }
            ],
            "default": name,
        }

    # -- shutdown --------------------------------------------------------

    def _release(self) -> None:
        for published in self._published.values():
            published.unlink()
            published.close()
        self._published.clear()


class MultiSpaceWorkerPool(_ReplicaFleet):
    """A replica fleet fronting a whole space registry.

    The parent hosts the authoritative :class:`SpaceRegistry`: spaces
    materialize lazily on its build workers (serving threads see the
    registry's usual 202-building / 404 / sticky-500 ladder through the
    router), and the build's last step publishes the runtime's artifacts
    as a shared-memory arena under the per-space tag
    ``{pool_tag}_{space}`` and broadcasts an ``attach_space`` to every
    live worker.  Workers host their *own* registries of arena-attached
    runtimes — each space's manager mints ids ``w<i>-<space>-s0001`` —
    so one fleet serves every space without N×M rebuild cost, and a
    mutation republishes and rebinds only the space it names.

    With ``arena_cache`` set, every published payload is also serialized
    to ``<dir>/<space_tag>.arena``; the next cold boot mmap-loads the
    file back into a segment and skips discovery + index construction
    entirely (builder-backed spaces are exempt — they have no standalone
    dataset recipe to bounds-check a cached arena against).
    """

    def __init__(
        self,
        descriptors,
        *,
        workers: int = 2,
        tag: Optional[str] = None,
        state_dir: Optional[str | Path] = None,
        durability: str = "snapshot",
        compact_every: int = 64,
        default_config=None,
        max_sessions: Optional[int] = None,
        host: str = "127.0.0.1",
        retain_segments: int = 4,
        idle_ttl_s: Optional[float] = None,
        build_workers: int = 2,
        arena_cache: Optional[str | Path] = None,
        sweep: bool = True,
        metrics: bool = True,
        slow_click_ms: Optional[float] = None,
        slowlog_dir: Optional[str | Path] = None,
    ) -> None:
        descriptors = list(descriptors)
        if not descriptors:
            raise ValueError("a replicated registry needs at least one space")
        if retain_segments < 1:
            raise ValueError("retain_segments must be >= 1")
        ambiguous = [
            descriptor.name
            for descriptor in descriptors
            if _AMBIGUOUS_SPACE.match(descriptor.name)
        ]
        if ambiguous:
            raise ValueError(
                f"space names {ambiguous} match the worker-tag shape "
                "'w<index>-': composed session ids could not be routed "
                "unambiguously — rename them"
            )
        if durability == "journal" and state_dir is None:
            raise ValueError("durability='journal' needs a state_dir")
        if state_dir is None and (
            idle_ttl_s is not None
            or any(d.idle_ttl_s is not None for d in descriptors)
        ):
            raise ValueError(
                "idle TTLs need a state_dir: workers sweep durably"
            )
        self._init_fleet(
            workers=workers,
            host=host,
            tag=tag if tag is not None else "spaces",
            metrics=metrics,
            slow_click_ms=slow_click_ms,
            slowlog_dir=slowlog_dir,
        )
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.durability = durability
        self.compact_every = compact_every
        self.default_config = default_config
        self.max_sessions = max_sessions
        self.idle_ttl_s = idle_ttl_s
        self.retain_segments = retain_segments
        self.arena_cache = (
            Path(arena_cache) if arena_cache is not None else None
        )
        #: Space names whose boot was served from the arena snapshot
        #: cache instead of a cold build (perf harness reads this).
        self.arena_cache_hits: list[str] = []
        self.swept_orphans: list[str] = sweep_orphans(self.tag) if sweep else []
        self._arenas: dict[str, "OrderedDict[str, PublishedArena]"] = {}
        self._current: dict[str, dict] = {}
        self._datasets: dict[str, object] = {}
        self._policies: dict[str, dict] = {}
        self._cacheable: dict[str, SpaceDescriptor] = {}
        self._cache_attachments: list = []
        for descriptor in descriptors:
            self._policies[descriptor.name] = {
                "idle_ttl_s": descriptor.idle_ttl_s,
                "max_sessions": descriptor.max_sessions,
            }
            if descriptor.builder is None:
                self._cacheable[descriptor.name] = descriptor
        # The parent registry is the mutation authority, never a serving
        # path: no state_dir (workers own durability on the shared one),
        # no TTLs, no session budget — just lazily built runtimes.
        self.registry = SpaceRegistry(
            [self._wrap(descriptor) for descriptor in descriptors],
            build_workers=build_workers,
        )
        self._reference_re = compile_reference_pattern(
            [descriptor.name for descriptor in descriptors]
        )
        self._spawn_fleet()

    def space_tag(self, name: str) -> str:
        """The arena namespace of one space (swept under the pool tag)."""
        return f"{self.tag}_{name}"

    # -- materialization -------------------------------------------------

    def _wrap(self, descriptor: SpaceDescriptor) -> SpaceDescriptor:
        # Serving policy (TTLs, session budgets) stays off the parent
        # wrapper: it applies on the workers, which hold the sessions.
        return SpaceDescriptor(
            name=descriptor.name,
            builder=partial(self._materialize_space, descriptor),
        )

    def _materialize_space(self, descriptor: SpaceDescriptor):
        """Build (or cache-load) one space; runs on a registry builder.

        The warm path mmap-loads the arena snapshot file back into a
        fresh segment, rebuilds only the dataset (cheap relative to
        discovery + index construction) and maps the runtime from the
        arena; the cold path materializes the descriptor and publishes
        its artifacts.  Either way the arena is recorded as the space's
        current segment and broadcast to every live worker before the
        registry flips the space to ready.
        """
        from repro.core.runtime import GroupSpaceRuntime

        name = descriptor.name
        space_tag = self.space_tag(name)
        runtime = None
        if self.arena_cache is not None and name in self._cacheable:
            published = load_arena_cache(space_tag, self.arena_cache)
            if published is not None:
                dataset = descriptor.build_dataset()
                attached = attach_arena(space_tag, published.digest)
                runtime = GroupSpaceRuntime.from_arena(
                    dataset, attached, share_cache=False, name=name
                )
                self._cache_attachments.append(attached)
                self.arena_cache_hits.append(name)
        if runtime is None:
            runtime = descriptor.materialize()
            dataset = runtime.space.dataset
            published = publish_arena(
                runtime.space, runtime.index, space_tag, epoch=runtime.epoch
            )
            if self.arena_cache is not None and name in self._cacheable:
                save_arena_cache(published, space_tag, self.arena_cache)
        with self._mutate_lock:
            segments = self._arenas.setdefault(name, OrderedDict())
            segments[published.digest] = published
            self._current[name] = {
                "digest": published.digest,
                "epoch": int(runtime.epoch),
            }
            self._datasets[name] = dataset
        self._broadcast_space(name)
        return runtime

    def _attach_payload(self, name: str) -> dict:
        current = self._current[name]
        policy = self._policies[name]
        return {
            "name": name,
            "space_tag": self.space_tag(name),
            "digest": current["digest"],
            "epoch": current["epoch"],
            "dataset_b64": base64.b64encode(
                pickle.dumps(self._datasets[name])
            ).decode("ascii"),
            "idle_ttl_s": policy["idle_ttl_s"],
            "max_sessions": policy["max_sessions"],
        }

    def _broadcast_space(self, name: str) -> None:
        """Tell every live worker to adopt a newly materialized space."""
        payload = self._attach_payload(name)
        respawn: list[int] = []
        for replica in self.replicas:
            if not replica.alive:
                continue
            try:
                outcome = _post(
                    self.host,
                    replica.port,
                    "/internal/attach_space",
                    payload,
                )
            except (OSError, RuntimeError, ValueError):
                self._mark_dead(replica)
                respawn.append(replica.index)
                continue
            replica.spaces[name] = {
                "digest": str(outcome.get("digest", payload["digest"])),
                "epoch": int(outcome.get("epoch", payload["epoch"])),
            }
        for index in respawn:
            self._respawn_async(index)

    # -- worker lifecycle ------------------------------------------------

    def _spec(self, worker_index: int) -> dict:
        spaces = []
        for name in self.registry.names():
            current = self._current.get(name)
            if current is None:
                continue  # cold/building: workers adopt it via broadcast
            policy = self._policies[name]
            spaces.append(
                {
                    "name": name,
                    "space_tag": self.space_tag(name),
                    "digest": current["digest"],
                    "epoch": current["epoch"],
                    "dataset": self._datasets[name],
                    "idle_ttl_s": policy["idle_ttl_s"],
                    "max_sessions": policy["max_sessions"],
                }
            )
        return {
            "multi_space": True,
            "tag": self.tag,
            "worker_index": worker_index,
            "host": self.host,
            "state_dir": (
                str(self.state_dir) if self.state_dir is not None else None
            ),
            "durability": self.durability,
            "compact_every": self.compact_every,
            "default_config": self.default_config,
            "max_sessions": self.max_sessions,
            "idle_ttl_s": self.idle_ttl_s,
            "metrics": self.metrics,
            "slow_click_ms": self.slow_click_ms,
            "slowlog_dir": self.slowlog_dir,
            "spaces": spaces,
        }

    # -- routing ---------------------------------------------------------

    def prepare_open_body(self, body: dict) -> bool:
        """Resolve + pin the target space before forwarding an ``open``.

        Raises the registry's typed ladder (202-building queues the lazy
        build exactly like the single-process front) *before* the
        forward, and rewrites the body to carry the resolved space name
        so worker-side default-space drift can never misroute: a resume
        token's space is recovered from the token itself, a space-less
        fresh open pins the registry default.
        """
        space = body.get("space")
        if space is not None and not isinstance(space, str):
            raise _RouterBadRequest("space must be a string")
        resume = body.get("resume")
        if space is None and isinstance(resume, str):
            space = self.reference_space(resume)
        if space is None:
            space = self.registry.default_space
        self.registry.manager(space, wait=False)
        if body.get("space") != space:
            body["space"] = space
            return True
        return False

    # -- mutation --------------------------------------------------------

    def mutate(self, name: str, delta, verify: bool = False) -> dict:
        """Apply a delta to one space: parent epoch, arena, rebinds.

        Only the named space's runtime advances, only its arena is
        republished, and only its per-space retention window is trimmed;
        every other space keeps serving untouched — the router's
        ``POST /spaces/<name>/mutate`` maps straight here.
        """
        runtime = self.registry.runtime(name, wait=False)
        space_tag = self.space_tag(name)
        respawn: list[int] = []
        with self._mutate_lock:
            changed_old = sorted(
                {int(gid) for gid in delta.removed}
                | {int(gid) for gid, _ in delta.changed}
            )
            report = dict(runtime.apply_deltas(delta, verify=verify))
            published = publish_arena(
                runtime.space, runtime.index, space_tag, epoch=report["epoch"]
            )
            segments = self._arenas.setdefault(name, OrderedDict())
            segments[published.digest] = published
            self._current[name] = {
                "digest": published.digest,
                "epoch": int(report["epoch"]),
            }
            if self.arena_cache is not None and name in self._cacheable:
                save_arena_cache(published, space_tag, self.arena_cache)
            rebound = []
            for replica in self.replicas:
                if not replica.alive:
                    continue
                try:
                    outcome = _post(
                        self.host,
                        replica.port,
                        "/internal/rebind",
                        {
                            "space": name,
                            "digest": published.digest,
                            "epoch": report["epoch"],
                            "changed_old": changed_old,
                        },
                    )
                except (OSError, RuntimeError, ValueError):
                    self._mark_dead(replica)
                    respawn.append(replica.index)
                    continue
                replica.spaces[name] = {
                    "digest": published.digest,
                    "epoch": int(outcome.get("epoch", report["epoch"])),
                }
                rebound.append(replica.index)
            while len(segments) > self.retain_segments:
                _, aged = segments.popitem(last=False)
                aged.unlink()
                aged.close()
            report["space"] = name
            report["arena"] = published.name
            report["rebound_workers"] = rebound
        for index in respawn:
            self._respawn_async(index)
        return report

    def mutate_space(self, name: str, delta, verify: bool = False) -> dict:
        return self.mutate(name, delta, verify=verify)

    # -- introspection ---------------------------------------------------

    def _describe_replica(self, row: dict, replica: _Replica) -> None:
        row["spaces"] = {
            name: dict(info) for name, info in replica.spaces.items()
        }

    def _merge_ping(self, row: dict, replica: _Replica, ping: dict) -> None:
        spaces = ping.get("spaces")
        if isinstance(spaces, dict):
            row["spaces"] = spaces

    def stats(self) -> dict:
        replicas = self.replica_health()
        return {
            "mode": "replicated-spaces",
            "tag": self.tag,
            "workers": self.n_workers,
            "alive": sum(1 for row in replicas if row["alive"]),
            "registry": self.registry.stats(),
            "spaces": {
                name: dict(current)
                for name, current in self._current.items()
            },
            "segments": {
                name: list(segments)
                for name, segments in self._arenas.items()
            },
            "swept_orphans": self.swept_orphans,
            "arena_cache": (
                str(self.arena_cache) if self.arena_cache is not None else None
            ),
            "arena_cache_hits": list(self.arena_cache_hits),
            "replicas": replicas,
        }

    def spaces_payload(self) -> dict:
        described = self.registry.describe()
        for name, row in described.items():
            current = self._current.get(name)
            if current is not None:
                row["epoch"] = current["epoch"]
                row["digest"] = current["digest"]
                row["segments"] = list(self._arenas.get(name, ()))
        return {
            "spaces": described,
            "default": self.registry.default_space,
            "replicas": self.replica_health(),
        }

    # -- shutdown --------------------------------------------------------

    def _release(self) -> None:
        # Wait out in-flight builds first so a racing builder cannot
        # publish a segment after the sweep below already ran.
        self.registry.shutdown(wait=True)
        for segments in self._arenas.values():
            for published in segments.values():
                published.unlink()
                published.close()
        self._arenas.clear()
        for attached in self._cache_attachments:
            attached.close()
        self._cache_attachments.clear()


class _RouterHandler(BaseHTTPRequestHandler):
    """Forward the wire protocol to the sticky replica, verbatim."""

    protocol_version = "HTTP/1.1"

    def __init__(self, service: "ReplicatedService", *args, **kwargs) -> None:
        self.service = service
        super().__init__(*args, **kwargs)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------

    def _body_bytes(self) -> bytes:
        # Read-once, cached: error replies fire from anywhere in the
        # route (often before the body was needed), and an unread body
        # left in the socket desyncs the next keep-alive request into
        # a framing 400.  ``_dispatch`` drains through here up front.
        cached = getattr(self, "_cached_body", None)
        if cached is None:
            length = int(self.headers.get("Content-Length") or 0)
            cached = self.rfile.read(length) if length > 0 else b""
            self._cached_body = cached
        return cached

    def _body(self) -> dict:
        raw = self._body_bytes()
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _RouterBadRequest("body must be a JSON object")
        if not isinstance(body, dict):
            raise _RouterBadRequest("body must be a JSON object")
        return body

    #: Set by :meth:`_dispatch` while an instrumented request is live so
    #: replies can stamp the final status on the request span.
    _request_span = None

    def _reply(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        self._send(
            status,
            json.dumps(payload).encode("utf-8"),
            "application/json",
            headers,
        )

    def _reply_text(
        self,
        status: int,
        text: str,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> None:
        """A raw-text reply: the Prometheus ``/metrics`` exposition."""
        self._send(status, text.encode("utf-8"), content_type, None)

    def _send(
        self,
        status: int,
        encoded: bytes,
        content_type: str,
        headers: Optional[dict],
    ) -> None:
        if self._request_span is not None:
            self._request_span.set_status(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(encoded)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(encoded)

    def _fail(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[dict] = None,
    ) -> None:
        self._reply(
            status,
            {"error": {"type": error_type, "message": message}},
            headers=headers,
        )

    def _forward(self, replica: _Replica, body: Optional[bytes] = None) -> None:
        """Proxy this request to ``replica`` and relay the raw answer."""
        payload = body if body is not None else self._body_bytes()
        forward_headers = {"Content-Type": "application/json"}
        # Trace propagation across the replication hop: the client's
        # X-Repro-Trace travels verbatim; when the router minted the id
        # itself (no incoming header, obs on), the active trace carries
        # it — either way the worker's slow log records the same id the
        # client can correlate on.
        trace = current_trace()
        trace_id = self.headers.get(TRACE_HEADER) or (
            trace.trace_id if trace is not None else None
        )
        if trace_id:
            forward_headers[TRACE_HEADER] = trace_id
        connection = http.client.HTTPConnection(
            self.service.pool.host, replica.port, timeout=_FORWARD_TIMEOUT_S
        )
        try:
            connection.request(
                self.command,
                self.path,
                body=payload or None,
                headers=forward_headers,
            )
            response = connection.getresponse()
            data = response.read()
            headers = {}
            retry_after = response.getheader("Retry-After")
            if retry_after:
                headers["Retry-After"] = retry_after
            if self._request_span is not None:
                self._request_span.set_status(response.status)
            self.send_response(response.status)
            self.send_header(
                "Content-Type",
                response.getheader("Content-Type", "application/json"),
            )
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (OSError, http.client.HTTPException):
            self.service.pool._mark_dead(replica)
            self.service.pool._respawn_async(replica.index)
            raise WorkerUnavailable(
                f"worker {replica.index} dropped the connection"
            )
        finally:
            connection.close()

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        # One handler instance serves every request on a keep-alive
        # connection: reset the body cache, then drain eagerly so an
        # error reply fired before any body read can't leave request
        # bytes in the socket (the next request would parse mid-body).
        self._cached_body = None
        self._body_bytes()
        obs = self.service.obs
        if obs is None:
            self._handle(method)
            return
        with obs.request(
            self.path, self.headers.get(TRACE_HEADER)
        ) as request_span:
            self._request_span = request_span
            try:
                self._handle(method)
            finally:
                self._request_span = None

    def _handle(self, method: str) -> None:
        try:
            with span("route"):
                handled = self._route(method)
        except _RouterBadRequest as error:
            self._fail(400, "bad_request", str(error))
        except SpaceBuildingError as error:
            self._reply(
                202,
                {
                    "state": "building",
                    "space": error.name,
                    "retry_after_s": error.retry_after_s,
                },
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after_s)))
                },
            )
        except SpaceNotFoundError as error:
            # Before KeyError: it subclasses KeyError but is not a
            # session-routing miss.
            self._fail(404, "unknown_space", str(error))
        except SpaceBuildError as error:
            self._fail(500, "space_build_failed", str(error))
        except WorkerUnavailable as error:
            # The stock client's 503 retry loop handles this: the
            # replacement replica (or a takeover resume) answers next.
            self._fail(
                503,
                error.error_type,
                str(error),
                headers={
                    "Retry-After": str(max(1, math.ceil(error.retry_after_s)))
                },
            )
        except KeyError as error:
            self._fail(404, "unknown_session", str(error))
        except ValueError as error:
            self._fail(409, "conflict", str(error))
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as error:  # noqa: BLE001 — router must not die
            self._fail(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        else:
            if not handled:
                self._fail(
                    404, "not_found", f"no route for {method} {self.path}"
                )

    def _route(self, method: str) -> bool:
        pool = self.service.pool
        path = self.path.split("?", 1)[0].rstrip("/")
        segments = [segment for segment in path.split("/") if segment]
        if path == "/healthz" and method == "GET":
            self._reply(200, self.service.health())
            return True
        if path == "/spaces" and method == "GET":
            self._reply(200, self.service.spaces_payload())
            return True
        if path == "/metrics" and method == "GET":
            text = self.service.metrics_text()
            if text is None:
                self._fail(
                    404, "not_found", "metrics are disabled on this router"
                )
            else:
                self._reply_text(200, text)
            return True
        if (
            len(segments) == 3
            and segments[0] == "spaces"
            and segments[2] == "activity"
            and method == "GET"
        ):
            payload = self.service.activity_payload(
                segments[1], self._query_int("limit")
            )
            if payload is None:
                self._fail(
                    404, "not_found", "metrics are disabled on this router"
                )
            else:
                self._reply(200, payload)
            return True
        if (
            len(segments) == 3
            and segments[0] == "spaces"
            and segments[2] == "mutate"
            and method == "POST"
        ):
            from repro.service.server import _BadRequest, parse_mutation

            try:
                delta, verify = parse_mutation(self._body())
            except _BadRequest as error:
                raise _RouterBadRequest(str(error))
            self._reply(
                200, pool.mutate_space(segments[1], delta, verify=verify)
            )
            return True
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "sessions":
            if len(segments) == 2:
                if method == "POST":
                    raw = self._body_bytes()
                    body = {}
                    if raw:
                        try:
                            body = json.loads(raw.decode("utf-8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            raise _RouterBadRequest(
                                "body must be a JSON object"
                            )
                    if not isinstance(body, dict):
                        raise _RouterBadRequest("body must be a JSON object")
                    resume = body.get("resume")
                    if resume is not None and not isinstance(resume, str):
                        raise _RouterBadRequest("resume must be a token string")
                    modified = pool.prepare_open_body(body)
                    if resume is not None and pool.worker_of(resume) is not None:
                        replica = pool.pick_for(resume, takeover=True)
                    else:
                        replica = pool.pick_fresh()
                    if modified:
                        raw = json.dumps(body).encode("utf-8")
                    self._forward(replica, body=raw)
                else:
                    self._reply(200, {"sessions": self.service.session_ids()})
                return True
            session_id = segments[2]
            replica = pool.pick_for(session_id)
            self._forward(replica)
            return True
        return False

    def _query_int(self, name: str) -> Optional[int]:
        """An optional integer query parameter (``None`` when absent)."""
        parts = self.path.split("?", 1)
        if len(parts) < 2:
            return None
        values = parse_qs(parts[1]).get(name)
        if not values:
            return None
        try:
            return int(values[-1])
        except ValueError:
            raise _RouterBadRequest(
                f"query parameter {name!r} must be an integer"
            )


class _RouterBadRequest(Exception):
    pass


class _RouterServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReplicatedService:
    """The HTTP router over a worker pool (single-space or registry).

    Speaks the same wire protocol as
    :class:`~repro.service.server.ExplorationService`, so the stock
    :class:`~repro.service.client.ExplorationClient` works unchanged —
    the replication tier is invisible to clients except in ``/healthz``'s
    ``replicas`` section and the worker tags inside session ids.
    """

    def __init__(
        self,
        pool: "WorkerPool | MultiSpaceWorkerPool",
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: bool = True,
        slow_click_ms: Optional[float] = None,
    ) -> None:
        self.pool = pool
        #: The router's own observability bundle: request/trace metrics
        #: for the routing hop itself, plus the fleet aggregation below.
        #: ``metrics=False`` turns the router dark (``/metrics`` 404s)
        #: regardless of what the workers were booted with.
        self.obs = Observability(slow_click_ms=slow_click_ms) if metrics else None
        if self.obs is not None:
            self.obs.registry.register_collector(self._collect_respawns)
        self._httpd = _RouterServer((host, port), partial(_RouterHandler, self))
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    def _collect_respawns(self) -> None:
        """Mirror the pool's respawn-failure odometer onto the registry.

        The pool's ``_respawn_failures`` dict stays the single source of
        truth (``/healthz`` reads it directly); this export-time collector
        reflects it into ``repro_respawn_failures_total{worker=}`` so
        ``/metrics`` reports the same numbers without double accounting.
        """
        for index, count in list(self.pool._respawn_failures.items()):
            self.obs.respawn_failures.labels(worker=f"w{index}").set(
                float(count)
            )

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReplicatedService":
        if self._serve_thread is not None:
            raise RuntimeError("router already started")
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-router:{self.port}",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self, stop_pool: bool = True) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if stop_pool:
            self.pool.stop()
        if self.obs is not None:
            self.obs.close()

    def __enter__(self) -> "ReplicatedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- aggregation -----------------------------------------------------

    def session_ids(self) -> list[str]:
        ids: list[str] = []
        for replica in self.pool.alive_replicas():
            try:
                connection = http.client.HTTPConnection(
                    self.pool.host, replica.port, timeout=5.0
                )
                try:
                    connection.request("GET", "/v1/sessions")
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                    ids.extend(payload.get("sessions", []))
                finally:
                    connection.close()
            except (OSError, ValueError, http.client.HTTPException):
                self.pool._mark_dead(replica)
                self.pool._respawn_async(replica.index)
        return sorted(ids)

    def health(self) -> dict:
        pool_stats = self.pool.stats()
        alive = pool_stats["alive"]
        degraded = alive < self.pool.n_workers or any(
            row.get("degraded") for row in pool_stats["replicas"]
        )
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "pool": pool_stats,
            "replicas": pool_stats["replicas"],
        }

    def spaces_payload(self) -> dict:
        return self.pool.spaces_payload()

    def metrics_text(self) -> Optional[str]:
        """The merged fleet exposition (``None`` when metrics are off).

        Scrape-on-demand: each live worker's registry is dumped over
        ``/internal/metrics`` at request time, labeled ``worker="w<i>"``
        and merged with the router's own series.  A replica that stops
        answering is marked dead and respawned exactly like any other
        probe — and because the merged view is rebuilt from live dumps
        on every scrape, a SIGKILLed worker's series vanish immediately
        and its replacement restarts them from zero (no stale series).
        """
        if self.obs is None:
            return None
        dumps = [self.obs.dump_metrics()]
        for replica in self.pool.alive_replicas():
            try:
                reply = _post(
                    self.pool.host,
                    replica.port,
                    "/internal/metrics",
                    {},
                    timeout=2.0,
                )
            except (OSError, RuntimeError, ValueError):
                self.pool._mark_dead(replica)
                self.pool._respawn_async(replica.index)
                continue
            dump = reply.get("metrics")
            if dump:
                dumps.append(
                    label_dump(dump, {"worker": f"w{replica.index}"})
                )
        return render_dump(merge_dumps(dumps))

    def activity_payload(
        self, space: str, limit: Optional[int] = None
    ) -> Optional[dict]:
        """The fleet-wide activity feed of one space, oldest first."""
        if self.obs is None:
            return None
        events: list[dict] = []
        for replica in self.pool.alive_replicas():
            try:
                reply = _post(
                    self.pool.host,
                    replica.port,
                    "/internal/activity",
                    {"space": space, "limit": limit},
                    timeout=2.0,
                )
            except (OSError, RuntimeError, ValueError):
                self.pool._mark_dead(replica)
                self.pool._respawn_async(replica.index)
                continue
            events.extend(reply.get("events") or [])
        events.sort(key=lambda event: event.get("ts") or 0.0)
        if limit is not None and limit >= 0:
            events = events[-limit:] if limit else []
        return {"space": space, "events": events}


def serve_replicated(
    dataset,
    space,
    index=None,
    *,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: bool = True,
    slow_click_ms: Optional[float] = None,
    **pool_kwargs,
) -> ReplicatedService:
    """Convenience: build the pool, start the router, return it running."""
    pool = WorkerPool(
        dataset,
        space,
        index,
        workers=workers,
        host=host,
        metrics=metrics,
        slow_click_ms=slow_click_ms,
        **pool_kwargs,
    )
    try:
        return ReplicatedService(
            pool,
            host=host,
            port=port,
            metrics=metrics,
            slow_click_ms=slow_click_ms,
        ).start()
    except BaseException:
        pool.stop()
        raise


def serve_replicated_spaces(
    descriptors,
    *,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics: bool = True,
    slow_click_ms: Optional[float] = None,
    **pool_kwargs,
) -> ReplicatedService:
    """Convenience: replicate a whole registry behind one router."""
    pool = MultiSpaceWorkerPool(
        descriptors,
        workers=workers,
        host=host,
        metrics=metrics,
        slow_click_ms=slow_click_ms,
        **pool_kwargs,
    )
    try:
        return ReplicatedService(
            pool,
            host=host,
            port=port,
            metrics=metrics,
            slow_click_ms=slow_click_ms,
        ).start()
    except BaseException:
        pool.stop()
        raise


__all__ = [
    "MultiSpaceWorkerPool",
    "ReplicatedService",
    "WorkerPool",
    "WorkerUnavailable",
    "compile_reference_pattern",
    "serve_replicated",
    "serve_replicated_spaces",
]
