"""The parent tier: publish arenas, spawn replicas, route sticky traffic.

:class:`WorkerPool` owns the authoritative
:class:`~repro.core.runtime.GroupSpaceRuntime` (mutations apply here
first), serializes each epoch's artifacts into a shared-memory arena
(:mod:`repro.replication.arena`), and keeps N ``spawn``-started worker
processes attached to the current arena — each one a full
``SessionManager`` + HTTP service minting ids under its own ``w<i>-``
prefix.  :class:`ReplicatedService` is the HTTP router in front of them:

- *sticky routing*: session ids and resume tokens start with the minting
  worker's tag, so every verb of a walk lands on the replica holding its
  in-memory state;
- *takeover*: a resume whose home worker is dead routes to any live
  replica — all workers share one state directory, so the PR 6 journal
  tail replays there and the walk continues field-identical;
- *mutation*: ``POST /spaces/<name>/mutate`` applies the delta on the
  parent runtime, publishes the new epoch's arena, and broadcasts
  ``rebind`` to every worker (each invalidates its own stale
  fingerprints); segments aged out of the retention window are unlinked
  (mapped copies in pinned workers stay valid);
- *health*: ``/healthz`` and ``/spaces`` aggregate per-replica liveness,
  epoch, and session counts.

A worker that stops answering is marked dead, the request that noticed
gets a typed 503 with ``Retry-After`` (the stock client retries), and a
replacement is respawned onto the current arena in the background.
"""

from __future__ import annotations

import http.client
import json
import multiprocessing
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from functools import partial
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional

from repro.replication.arena import (
    PublishedArena,
    publish_arena,
    sweep_orphans,
)
from repro.replication.worker import _worker_entry

_WORKER_ID = re.compile(r"^w(\d+)-")

#: Seconds a freshly spawned worker gets to come up (imports NumPy and
#: SciPy from scratch under the spawn start method, then maps the arena).
_BOOT_TIMEOUT_S = 60.0

#: Per-request forwarding timeout.  Generous: a budgeted click is capped
#: near the paper's 100 ms, but resumes replay journal tails.
_FORWARD_TIMEOUT_S = 30.0


class WorkerUnavailable(RuntimeError):
    """The replica that owns this request is (currently) gone."""


@dataclass
class _Replica:
    index: int
    process: multiprocessing.process.BaseProcess
    port: int
    pid: int
    epoch: int
    digest: str
    alive: bool = True
    restarts: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


def _post(
    host: str,
    port: int,
    path: str,
    body: dict,
    timeout: float = _FORWARD_TIMEOUT_S,
) -> dict:
    payload = json.dumps(body).encode("utf-8")
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        data = json.loads(response.read().decode("utf-8") or "{}")
        if response.status >= 400:
            raise RuntimeError(
                f"worker answered {response.status} on {path}: {data}"
            )
        return data
    finally:
        connection.close()


class WorkerPool:
    """N replica processes serving one space from shared-memory arenas."""

    def __init__(
        self,
        dataset,
        space,
        index=None,
        *,
        workers: int = 2,
        tag: Optional[str] = None,
        state_dir: Optional[str | Path] = None,
        durability: str = "snapshot",
        compact_every: int = 64,
        default_config=None,
        max_sessions: Optional[int] = None,
        host: str = "127.0.0.1",
        space_name: Optional[str] = None,
        retain_segments: int = 4,
        materialize_fraction: float = 0.10,
        sweep: bool = True,
    ) -> None:
        from repro.core.runtime import GroupSpaceRuntime

        if workers < 1:
            raise ValueError("workers must be >= 1")
        if retain_segments < 1:
            raise ValueError("retain_segments must be >= 1")
        self.dataset = dataset
        self.host = host
        self.space_name = space_name
        #: The deployment identity: segment names carry it, and the
        #: startup sweep removes whatever a crashed predecessor with the
        #: same tag leaked.  Defaults to the space name so restarts of
        #: one deployment sweep their own orphans and nobody else's.
        self.tag = tag if tag is not None else (space_name or "space")
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self.durability = durability
        self.compact_every = compact_every
        self.default_config = default_config
        self.max_sessions = max_sessions
        self.retain_segments = retain_segments
        self.n_workers = workers
        #: Segments a SIGKILLed predecessor leaked; swept before the
        #: first publish so a crash loop never accumulates dead arenas.
        self.swept_orphans: list[str] = sweep_orphans(self.tag) if sweep else []
        # The parent's runtime is the mutation authority, never a
        # serving path — no cross-session cache needed here.
        self.runtime = GroupSpaceRuntime(
            space,
            index=index,
            materialize_fraction=materialize_fraction,
            share_cache=False,
            name=space_name,
        )
        self._ctx = multiprocessing.get_context("spawn")
        self._published: "OrderedDict[str, PublishedArena]" = OrderedDict()
        self._mutate_lock = threading.Lock()
        self._stopped = False
        genesis = publish_arena(
            self.runtime.space,
            self.runtime.index,
            self.tag,
            epoch=self.runtime.epoch,
        )
        self._published[genesis.digest] = genesis
        self.replicas: list[_Replica] = [
            self._spawn(index_) for index_ in range(workers)
        ]
        self._route_counter = 0
        self._route_lock = threading.Lock()

    # -- worker lifecycle ------------------------------------------------

    def _spec(self, worker_index: int) -> dict:
        return {
            "tag": self.tag,
            "worker_index": worker_index,
            "digest": self.runtime.membership_digest(),
            "epoch": self.runtime.epoch,
            "dataset": self.dataset,
            "space_name": self.space_name,
            "state_dir": (
                str(self.state_dir) if self.state_dir is not None else None
            ),
            "durability": self.durability,
            "compact_every": self.compact_every,
            "default_config": self.default_config,
            "max_sessions": self.max_sessions,
            "host": self.host,
        }

    def _spawn(self, worker_index: int) -> _Replica:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_worker_entry,
            args=(self._spec(worker_index), child_conn),
            name=f"repro-worker-{self.tag}-{worker_index}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(_BOOT_TIMEOUT_S):
            process.terminate()
            raise RuntimeError(
                f"worker {worker_index} did not come up within "
                f"{_BOOT_TIMEOUT_S:.0f}s"
            )
        ready = parent_conn.recv()
        parent_conn.close()
        if not ready.get("ok"):
            process.join(timeout=5.0)
            raise RuntimeError(
                f"worker {worker_index} failed to boot: {ready.get('error')}"
            )
        return _Replica(
            index=worker_index,
            process=process,
            port=int(ready["port"]),
            pid=int(ready["pid"]),
            epoch=int(ready["epoch"]),
            digest=str(ready["digest"]),
        )

    def _mark_dead(self, replica: _Replica) -> None:
        replica.alive = False

    def respawn(self, worker_index: int) -> _Replica:
        """Replace a dead replica in place (idempotent per index)."""
        replica = self.replicas[worker_index]
        with replica.lock:
            current = self.replicas[worker_index]
            if current.alive and current.process.is_alive():
                return current
            if current.process.is_alive():
                current.process.terminate()
            current.process.join(timeout=5.0)
            with self._mutate_lock:
                # Snapshot digest/epoch under the mutation lock so the
                # replacement can never attach an arena that a racing
                # mutate is about to supersede without a rebind.
                fresh = self._spawn(worker_index)
            fresh.restarts = current.restarts + 1
            self.replicas[worker_index] = fresh
            return fresh

    def _respawn_async(self, worker_index: int) -> None:
        threading.Thread(
            target=lambda: self._quiet_respawn(worker_index),
            name=f"repro-respawn-{self.tag}-{worker_index}",
            daemon=True,
        ).start()

    def _quiet_respawn(self, worker_index: int) -> None:
        try:
            self.respawn(worker_index)
        except Exception:
            pass  # next request on this replica retries the respawn

    # -- routing ---------------------------------------------------------

    def worker_of(self, reference: str) -> Optional[int]:
        """The worker index a session id / resume token is stuck to."""
        match = _WORKER_ID.match(reference or "")
        if match is None:
            return None
        index = int(match.group(1))
        return index if 0 <= index < len(self.replicas) else None

    def alive_replicas(self) -> list[_Replica]:
        return [replica for replica in self.replicas if replica.alive]

    def pick_fresh(self) -> _Replica:
        """Round-robin over live replicas for a fresh ``open``."""
        candidates = self.alive_replicas()
        if not candidates:
            raise WorkerUnavailable("no live replicas")
        with self._route_lock:
            self._route_counter += 1
            return candidates[self._route_counter % len(candidates)]

    def pick_for(
        self, reference: str, takeover: bool = False
    ) -> _Replica:
        """The replica owning ``reference`` (a session id or token).

        ``takeover=True`` (resume-by-token routing) falls back to any
        live replica when the home worker is dead: the shared state
        directory holds the snapshot + journal tail, so any replica can
        finish the walk.  Mid-session verbs never take over — the
        session's in-memory state died with its worker, and the client's
        recovery path is a resume.
        """
        index = self.worker_of(reference)
        if index is None:
            raise KeyError(
                f"reference {reference!r} carries no worker tag"
            )
        replica = self.replicas[index]
        if replica.alive and replica.process.is_alive():
            return replica
        if replica.alive:
            # First observer of a silently dead process (SIGKILL).
            self._mark_dead(replica)
            self._respawn_async(index)
        if takeover:
            candidates = self.alive_replicas()
            if candidates:
                return candidates[0]
        raise WorkerUnavailable(
            f"worker {index} is down; its replacement is starting"
        )

    # -- mutation --------------------------------------------------------

    def mutate(self, delta, verify: bool = False) -> dict:
        """Apply a delta everywhere: parent epoch, arena, worker rebinds.

        The parent runtime applies (and optionally parity-verifies) the
        delta, the new epoch is published as a content-addressed arena
        segment, and every live worker is told to rebind by digest —
        computing its own stale-fingerprint set from ``changed_old``
        (the old-gid view of the delta) because fingerprints are
        process-local.  Old segments beyond the retention window are
        unlinked; workers pinned to them keep their mappings.
        """
        respawn: list[int] = []
        with self._mutate_lock:
            changed_old = sorted(
                {int(gid) for gid in delta.removed}
                | {int(gid) for gid, _ in delta.changed}
            )
            report = dict(self.runtime.apply_deltas(delta, verify=verify))
            published = publish_arena(
                self.runtime.space,
                self.runtime.index,
                self.tag,
                epoch=report["epoch"],
            )
            self._published[published.digest] = published
            rebound = []
            for replica in self.replicas:
                if not replica.alive:
                    continue
                try:
                    outcome = _post(
                        self.host,
                        replica.port,
                        "/internal/rebind",
                        {
                            "digest": published.digest,
                            "epoch": report["epoch"],
                            "changed_old": changed_old,
                        },
                    )
                except (OSError, RuntimeError, ValueError):
                    self._mark_dead(replica)
                    respawn.append(replica.index)
                    continue
                replica.epoch = int(outcome.get("epoch", report["epoch"]))
                replica.digest = published.digest
                rebound.append(replica.index)
            while len(self._published) > self.retain_segments:
                _, aged = self._published.popitem(last=False)
                aged.unlink()
                aged.close()
            report["arena"] = published.name
            report["rebound_workers"] = rebound
        for index in respawn:
            self._respawn_async(index)
        return report

    # -- introspection ---------------------------------------------------

    def replica_health(self) -> list[dict]:
        """One row per replica: liveness probe + worker-side counters."""
        rows = []
        for replica in self.replicas:
            row = {
                "index": replica.index,
                "pid": replica.pid,
                "port": replica.port,
                "alive": replica.alive and replica.process.is_alive(),
                "restarts": replica.restarts,
                "epoch": replica.epoch,
                "digest": replica.digest,
            }
            if row["alive"]:
                try:
                    ping = _post(
                        self.host,
                        replica.port,
                        "/internal/ping",
                        {},
                        timeout=2.0,
                    )
                    row.update(
                        sessions=ping.get("sessions"),
                        degraded=ping.get("degraded"),
                        epoch=ping.get("epoch", row["epoch"]),
                        digest=ping.get("digest", row["digest"]),
                    )
                except (OSError, RuntimeError, ValueError):
                    row["alive"] = False
                    self._mark_dead(replica)
                    self._respawn_async(replica.index)
            rows.append(row)
        return rows

    def stats(self) -> dict:
        replicas = self.replica_health()
        return {
            "mode": "replicated",
            "tag": self.tag,
            "workers": self.n_workers,
            "alive": sum(1 for row in replicas if row["alive"]),
            "epoch": self.runtime.epoch,
            "digest": self.runtime.membership_digest(),
            "segments": list(self._published.keys()),
            "swept_orphans": self.swept_orphans,
            "replicas": replicas,
        }

    # -- shutdown --------------------------------------------------------

    def stop(self, drain: bool = True) -> None:
        """Drain every worker, reap the processes, unlink the segments."""
        if self._stopped:
            return
        self._stopped = True
        for replica in self.replicas:
            if not (replica.alive and replica.process.is_alive()):
                continue
            if drain:
                try:
                    _post(
                        self.host,
                        replica.port,
                        "/internal/drain",
                        {},
                        timeout=10.0,
                    )
                except (OSError, RuntimeError, ValueError):
                    pass
        deadline = time.monotonic() + 15.0
        for replica in self.replicas:
            replica.process.join(
                timeout=max(0.1, deadline - time.monotonic())
            )
            if replica.process.is_alive():
                replica.process.terminate()
                replica.process.join(timeout=5.0)
            if replica.process.is_alive():
                replica.process.kill()
                replica.process.join(timeout=5.0)
            replica.alive = False
        for published in self._published.values():
            published.unlink()
            published.close()
        self._published.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _RouterHandler(BaseHTTPRequestHandler):
    """Forward the wire protocol to the sticky replica, verbatim."""

    protocol_version = "HTTP/1.1"

    def __init__(self, service: "ReplicatedService", *args, **kwargs) -> None:
        self.service = service
        super().__init__(*args, **kwargs)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass

    # -- plumbing --------------------------------------------------------

    def _body_bytes(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length > 0 else b""

    def _body(self) -> dict:
        raw = self._body_bytes()
        if not raw:
            return {}
        try:
            body = json.loads(raw.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            raise _RouterBadRequest("body must be a JSON object")
        if not isinstance(body, dict):
            raise _RouterBadRequest("body must be a JSON object")
        return body

    def _reply(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def _fail(
        self,
        status: int,
        error_type: str,
        message: str,
        headers: Optional[dict] = None,
    ) -> None:
        self._reply(
            status,
            {"error": {"type": error_type, "message": message}},
            headers=headers,
        )

    def _forward(self, replica: _Replica, body: Optional[bytes] = None) -> None:
        """Proxy this request to ``replica`` and relay the raw answer."""
        payload = body if body is not None else self._body_bytes()
        connection = http.client.HTTPConnection(
            self.service.pool.host, replica.port, timeout=_FORWARD_TIMEOUT_S
        )
        try:
            connection.request(
                self.command,
                self.path,
                body=payload or None,
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            data = response.read()
            headers = {}
            retry_after = response.getheader("Retry-After")
            if retry_after:
                headers["Retry-After"] = retry_after
            self.send_response(response.status)
            self.send_header(
                "Content-Type",
                response.getheader("Content-Type", "application/json"),
            )
            self.send_header("Content-Length", str(len(data)))
            for name, value in headers.items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(data)
        except (OSError, http.client.HTTPException):
            self.service.pool._mark_dead(replica)
            self.service.pool._respawn_async(replica.index)
            raise WorkerUnavailable(
                f"worker {replica.index} dropped the connection"
            )
        finally:
            connection.close()

    # -- routing ---------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        try:
            handled = self._route(method)
        except _RouterBadRequest as error:
            self._fail(400, "bad_request", str(error))
        except WorkerUnavailable as error:
            # The stock client's 503 retry loop handles this: the
            # replacement replica (or a takeover resume) answers next.
            self._fail(
                503,
                "replica_unavailable",
                str(error),
                headers={"Retry-After": "1"},
            )
        except KeyError as error:
            self._fail(404, "unknown_session", str(error))
        except ValueError as error:
            self._fail(409, "conflict", str(error))
        except (BrokenPipeError, ConnectionResetError):
            raise
        except Exception as error:  # noqa: BLE001 — router must not die
            self._fail(
                500, "internal_error", f"{type(error).__name__}: {error}"
            )
        else:
            if not handled:
                self._fail(
                    404, "not_found", f"no route for {method} {self.path}"
                )

    def _route(self, method: str) -> bool:
        pool = self.service.pool
        path = self.path.split("?", 1)[0].rstrip("/")
        segments = [segment for segment in path.split("/") if segment]
        if path == "/healthz" and method == "GET":
            self._reply(200, self.service.health())
            return True
        if path == "/spaces" and method == "GET":
            self._reply(200, self.service.spaces_payload())
            return True
        if (
            len(segments) == 3
            and segments[0] == "spaces"
            and segments[2] == "mutate"
            and method == "POST"
        ):
            from repro.service.server import _BadRequest, parse_mutation

            name = segments[1]
            expected = pool.space_name or "default"
            if name != expected:
                self._fail(
                    404, "unknown_space", f"no space named {name!r}"
                )
                return True
            try:
                delta, verify = parse_mutation(self._body())
            except _BadRequest as error:
                raise _RouterBadRequest(str(error))
            self._reply(200, pool.mutate(delta, verify=verify))
            return True
        if len(segments) >= 2 and segments[0] == "v1" and segments[1] == "sessions":
            if len(segments) == 2:
                if method == "POST":
                    raw = self._body_bytes()
                    body = {}
                    if raw:
                        try:
                            body = json.loads(raw.decode("utf-8"))
                        except (json.JSONDecodeError, UnicodeDecodeError):
                            raise _RouterBadRequest(
                                "body must be a JSON object"
                            )
                    if not isinstance(body, dict):
                        raise _RouterBadRequest("body must be a JSON object")
                    resume = body.get("resume")
                    if resume is not None and not isinstance(resume, str):
                        raise _RouterBadRequest("resume must be a token string")
                    if resume is not None and pool.worker_of(resume) is not None:
                        replica = pool.pick_for(resume, takeover=True)
                    else:
                        replica = pool.pick_fresh()
                    self._forward(replica, body=raw)
                else:
                    self._reply(200, {"sessions": self.service.session_ids()})
                return True
            session_id = segments[2]
            replica = pool.pick_for(session_id)
            self._forward(replica)
            return True
        return False


class _RouterBadRequest(Exception):
    pass


class _RouterServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True


class ReplicatedService:
    """The HTTP router over a :class:`WorkerPool`.

    Speaks the same wire protocol as
    :class:`~repro.service.server.ExplorationService`, so the stock
    :class:`~repro.service.client.ExplorationClient` works unchanged —
    the replication tier is invisible to clients except in ``/healthz``'s
    ``replicas`` section and the worker tags inside session ids.
    """

    def __init__(
        self, pool: WorkerPool, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.pool = pool
        self._httpd = _RouterServer((host, port), partial(_RouterHandler, self))
        self.host, self.port = self._httpd.server_address[:2]
        self._serve_thread: Optional[threading.Thread] = None
        self._started_at = time.monotonic()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReplicatedService":
        if self._serve_thread is not None:
            raise RuntimeError("router already started")
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-router:{self.port}",
            daemon=True,
        )
        self._serve_thread.start()
        return self

    def stop(self, stop_pool: bool = True) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
            self._serve_thread = None
        if stop_pool:
            self.pool.stop()

    def __enter__(self) -> "ReplicatedService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- aggregation -----------------------------------------------------

    def session_ids(self) -> list[str]:
        ids: list[str] = []
        for replica in self.pool.alive_replicas():
            try:
                connection = http.client.HTTPConnection(
                    self.pool.host, replica.port, timeout=5.0
                )
                try:
                    connection.request("GET", "/v1/sessions")
                    response = connection.getresponse()
                    payload = json.loads(response.read().decode("utf-8"))
                    ids.extend(payload.get("sessions", []))
                finally:
                    connection.close()
            except (OSError, ValueError, http.client.HTTPException):
                self.pool._mark_dead(replica)
                self.pool._respawn_async(replica.index)
        return sorted(ids)

    def health(self) -> dict:
        pool_stats = self.pool.stats()
        alive = pool_stats["alive"]
        degraded = alive < self.pool.n_workers or any(
            row.get("degraded") for row in pool_stats["replicas"]
        )
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "pool": pool_stats,
            "replicas": pool_stats["replicas"],
        }

    def spaces_payload(self) -> dict:
        name = self.pool.space_name or "default"
        pool_stats = self.pool.stats()
        return {
            "spaces": [
                {
                    "name": name,
                    "state": "ready" if pool_stats["alive"] else "down",
                    "epoch": pool_stats["epoch"],
                    "digest": pool_stats["digest"],
                    "replicas": pool_stats["replicas"],
                }
            ],
            "default": name,
        }


def serve_replicated(
    dataset,
    space,
    index=None,
    *,
    workers: int = 2,
    host: str = "127.0.0.1",
    port: int = 0,
    **pool_kwargs,
) -> ReplicatedService:
    """Convenience: build the pool, start the router, return it running."""
    pool = WorkerPool(
        dataset, space, index, workers=workers, host=host, **pool_kwargs
    )
    try:
        return ReplicatedService(pool, host=host, port=port).start()
    except BaseException:
        pool.stop()
        raise


__all__ = [
    "ReplicatedService",
    "WorkerPool",
    "WorkerUnavailable",
    "serve_replicated",
]
