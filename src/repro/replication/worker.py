"""One replica process: attach the arena, serve, obey the parent.

A worker is the existing single-space serving stack —
:class:`~repro.core.runtime.GroupSpaceRuntime` +
:class:`~repro.core.runtime.SessionManager` +
:class:`~repro.service.server.ExplorationService` — booted over artifacts
*mapped* from the parent's shared-memory arena instead of built locally.
The only additions are the ``w<index>-`` session-id prefix (which makes
ids and resume tokens route back to this replica) and a
:class:`WorkerControl` mounted on the service's ``POST /internal/<verb>``
namespace:

- ``ping`` — liveness + epoch/digest/session counters for ``/healthz``;
- ``rebind`` — the parent published a new epoch's arena: attach it
  (digest-verified), invalidate the stale pool fingerprints (computed
  here, against *this* process's current space — fingerprints are
  process-local), and adopt the new epoch.  Sessions pinned to older
  epochs keep serving them; the attachments are retained so their mapped
  arrays stay valid even after the parent unlinks the segment names;
- ``drain`` — checkpoint every live session and exit cleanly (the same
  path the ``SIGTERM``/``SIGINT`` handlers take), so worker recycling
  never loses a walk.

``worker_main`` is a module-level entry point because the pool spawns
workers with the ``spawn`` start method (no fork(): a forked CPython
inherits the parent's locks, sockets and signal state, all wrong here).
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import traceback
from typing import Optional

from repro.replication.arena import AttachedArena, attach_arena


class WorkerControl:
    """The parent-facing command surface of one worker."""

    def __init__(self, manager, runtime, tag: str, worker_index: int) -> None:
        self.manager = manager
        self.runtime = runtime
        self.tag = tag
        self.worker_index = worker_index
        self.drain_event = threading.Event()
        #: Attachments by digest.  Never dropped while the process lives:
        #: a session pinned to an old epoch reads arrays mapped from the
        #: old segment, and unmapping them under it would be a crash, not
        #: a cleanup.  The set is bounded by the parent's retention
        #: window times the worker's lifetime between recycles.
        self.attachments: dict[str, AttachedArena] = {}
        self._rebind_lock = threading.Lock()

    def describe(self) -> dict:
        return {
            "ok": True,
            "pid": os.getpid(),
            "worker": self.worker_index,
            "epoch": self.runtime.epoch,
            "digest": self.runtime.membership_digest(),
            "sessions": len(self.manager),
            "degraded": self.manager.degraded,
        }

    def handle(self, verb: str, body: dict) -> dict:
        if verb == "ping":
            return self.describe()
        if verb == "rebind":
            return self.rebind(body)
        if verb == "drain":
            return self.drain()
        raise KeyError(f"unknown internal verb {verb!r}")

    def rebind(self, body: dict) -> dict:
        digest = body.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ValueError("rebind needs the new epoch's digest")
        epoch = body.get("epoch")
        if not isinstance(epoch, int):
            raise ValueError("rebind needs the new epoch number")
        changed_old = body.get("changed_old") or []
        with self._rebind_lock:
            if self.runtime.membership_digest() == digest:
                report = {"epoch": self.runtime.epoch, "digest": digest,
                          "noop": True}
            else:
                attached = attach_arena(self.tag, digest)
                report = self.runtime.adopt_epoch(
                    attached.group_space(self.runtime.space.dataset),
                    attached.similarity_index(),
                    stale_gids=[int(gid) for gid in changed_old],
                    digest=digest,
                    epoch_number=epoch,
                )
                self.attachments[digest] = attached
        report.update(self.describe())
        return report

    def drain(self) -> dict:
        summary = {"draining": True, **self.describe()}
        # The reply goes out before the service stops: the event is only
        # *set* here, the main thread does the checkpoint + exit.
        self.drain_event.set()
        return summary


def _graceful_exit(manager, service, attachments=()) -> None:
    """Checkpoint every live session, then stop serving.

    ``evict_idle(0.0)`` persists (snapshot or journal-compact, per the
    manager's durability mode) and retires every session, so a recycled
    worker's walks resume bitwise-identical from the shared state
    directory — the drain contract the regression suite asserts.  The
    arena attachments are closed last: mappings with views still live
    stay mapped (exit reclaims them), but the close keeps the interpreter
    shutdown free of finalizer noise.
    """
    if manager.state_dir is not None:
        try:
            manager.evict_idle(0.0)
        except Exception:
            traceback.print_exc(file=sys.stderr)
    service.stop()
    for attached in list(attachments):
        attached.close()


def worker_main(spec: dict, ready_conn) -> int:
    """Boot one replica from a parent-built spec; blocks until drained.

    ``spec`` carries only picklable boot material (the dataset, the
    arena address, manager knobs); everything heavy is mapped from the
    arena.  ``ready_conn`` receives exactly one message: ``{"ok": True,
    "port", "pid", ...}`` once the HTTP front is listening, or ``{"ok":
    False, "error"}`` when boot failed (digest mismatch, missing
    segment) — the parent decides what to do about it.
    """
    from repro.core.runtime import GroupSpaceRuntime, SessionManager
    from repro.service.server import ExplorationService

    tag = spec["tag"]
    worker_index = int(spec["worker_index"])
    try:
        attached = attach_arena(tag, spec["digest"])
        runtime = GroupSpaceRuntime.from_arena(
            spec["dataset"],
            attached,
            name=spec.get("space_name"),
        )
        manager = SessionManager(
            runtime,
            default_config=spec.get("default_config"),
            max_sessions=spec.get("max_sessions"),
            state_dir=spec.get("state_dir"),
            id_prefix=f"w{worker_index}-",
            durability=spec.get("durability", "snapshot"),
            compact_every=spec.get("compact_every", 64),
        )
        control = WorkerControl(manager, runtime, tag, worker_index)
        control.attachments[attached.digest] = attached
        service = ExplorationService(
            manager,
            host=spec.get("host", "127.0.0.1"),
            port=int(spec.get("port", 0)),
            control=control,
        ).start()
    except BaseException as error:  # noqa: BLE001 — report boot failures
        ready_conn.send(
            {"ok": False, "error": f"{type(error).__name__}: {error}"}
        )
        ready_conn.close()
        return 1

    def _on_signal(signum, frame) -> None:
        control.drain_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    ready_conn.send(
        {
            "ok": True,
            "port": service.port,
            "pid": os.getpid(),
            "worker": worker_index,
            "epoch": runtime.epoch,
            "digest": runtime.membership_digest(),
        }
    )
    ready_conn.close()

    control.drain_event.wait()
    _graceful_exit(manager, service, control.attachments.values())
    return 0


def _worker_entry(spec: dict, ready_conn) -> None:
    """The ``Process(target=...)`` shim: exit with ``worker_main``'s code."""
    sys.exit(worker_main(spec, ready_conn))
