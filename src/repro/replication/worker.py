"""One replica process: attach the arena(s), serve, obey the parent.

A worker is the existing serving stack —
:class:`~repro.core.runtime.GroupSpaceRuntime` +
:class:`~repro.core.runtime.SessionManager` +
:class:`~repro.service.server.ExplorationService` — booted over artifacts
*mapped* from the parent's shared-memory arena instead of built locally.
Single-space pools boot one manager under the ``w<index>-`` session-id
prefix; registry pools boot a whole
:class:`~repro.spaces.registry.SpaceRegistry` whose ``id_tag`` is the
worker tag, so every space's ids compose as ``w<index>-<space>-s0001``.
A control object mounted on the service's ``POST /internal/<verb>``
namespace obeys the parent:

- ``ping`` — liveness + epoch/digest/session counters for ``/healthz``;
- ``rebind`` — the parent published a new epoch's arena: attach it
  (digest-verified), invalidate the stale pool fingerprints (computed
  here, against *this* process's current space — fingerprints are
  process-local), and adopt the new epoch.  Sessions pinned to older
  epochs keep serving them; the attachments are retained so their mapped
  arrays stay valid even after the parent unlinks the segment names;
- ``attach_space`` (registry workers) — the parent finished
  materializing a space this worker was booted without: register it and
  map its runtime from the named arena;
- ``drain`` — checkpoint every live session and exit cleanly (the same
  path the ``SIGTERM``/``SIGINT`` handlers take), so worker recycling
  never loses a walk.

``worker_main`` / ``_space_worker_main`` are module-level entry points
because the pool spawns workers with the ``spawn`` start method (no
fork(): a forked CPython inherits the parent's locks, sockets and signal
state, all wrong here).
"""

from __future__ import annotations

import base64
import os
import pickle
import signal
import sys
import threading
import traceback
from functools import partial
from typing import Optional

from repro.replication.arena import AttachedArena, attach_arena


def _build_obs(spec: dict, worker_index: int):
    """The worker-process observability bundle, from parent spec fields.

    ``metrics: False`` in the spec disables instrumentation wholesale
    (the worker then serves 404 on ``/metrics`` and reports no dumps to
    the parent).  The bundle is rebuilt from scratch on every boot —
    including a respawn after SIGKILL — which is what keeps a takeover
    worker's series starting from zero instead of inheriting ghosts.
    """
    from repro.obs import Observability

    if not spec.get("metrics", True):
        return None
    slowlog_dir = spec.get("slowlog_dir")
    slowlog_path = (
        os.path.join(slowlog_dir, f"slowlog-w{worker_index}.jsonl")
        if slowlog_dir
        else None
    )
    return Observability(
        slow_click_ms=spec.get("slow_click_ms"),
        slowlog_path=slowlog_path,
    )


def _metrics_reply(obs) -> dict:
    if obs is None:
        return {"ok": True, "metrics": None}
    return {"ok": True, "metrics": obs.dump_metrics()}


def _activity_reply(obs, space: str, body: dict) -> dict:
    limit = body.get("limit")
    if not isinstance(limit, int):
        limit = None
    events = [] if obs is None else obs.activity.recent(space, limit)
    return {"ok": True, "space": space, "events": events}


class WorkerControl:
    """The parent-facing command surface of one single-space worker."""

    def __init__(
        self, manager, runtime, tag: str, worker_index: int, obs=None
    ) -> None:
        self.manager = manager
        self.runtime = runtime
        self.tag = tag
        self.worker_index = worker_index
        self.obs = obs
        self.drain_event = threading.Event()
        #: Attachments by digest.  Never dropped while the process lives:
        #: a session pinned to an old epoch reads arrays mapped from the
        #: old segment, and unmapping them under it would be a crash, not
        #: a cleanup.  The set is bounded by the parent's retention
        #: window times the worker's lifetime between recycles.
        self.attachments: dict[str, AttachedArena] = {}
        self._rebind_lock = threading.Lock()

    def describe(self) -> dict:
        return {
            "ok": True,
            "pid": os.getpid(),
            "worker": self.worker_index,
            "epoch": self.runtime.epoch,
            "digest": self.runtime.membership_digest(),
            "sessions": len(self.manager),
            "degraded": self.manager.degraded,
        }

    def handle(self, verb: str, body: dict) -> dict:
        if verb == "ping":
            return self.describe()
        if verb == "rebind":
            return self.rebind(body)
        if verb == "metrics":
            return _metrics_reply(self.obs)
        if verb == "activity":
            # A single-space worker keeps one ring, keyed by its
            # manager's own label — serve it whatever name was asked.
            return _activity_reply(
                self.obs, self.manager.space_label, body
            )
        if verb == "drain":
            return self.drain()
        raise KeyError(f"unknown internal verb {verb!r}")

    def rebind(self, body: dict) -> dict:
        digest = body.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ValueError("rebind needs the new epoch's digest")
        epoch = body.get("epoch")
        if not isinstance(epoch, int):
            raise ValueError("rebind needs the new epoch number")
        changed_old = body.get("changed_old") or []
        with self._rebind_lock:
            if self.runtime.membership_digest() == digest:
                report = {"epoch": self.runtime.epoch, "digest": digest,
                          "noop": True}
            else:
                try:
                    attached = attach_arena(self.tag, digest)
                except FileNotFoundError as error:
                    # A typed refusal (409 through the service front),
                    # not an internal error: the parent unlinked — or
                    # never published — that segment.
                    raise ValueError(
                        f"rebind to an unpublished arena segment: {error}"
                    )
                report = self.runtime.adopt_epoch(
                    attached.group_space(self.runtime.space.dataset),
                    attached.similarity_index(),
                    stale_gids=[int(gid) for gid in changed_old],
                    digest=digest,
                    epoch_number=epoch,
                )
                self.attachments[digest] = attached
        report.update(self.describe())
        return report

    def drain(self) -> dict:
        summary = {"draining": True, **self.describe()}
        # The reply goes out before the service stops: the event is only
        # *set* here, the main thread does the checkpoint + exit.
        self.drain_event.set()
        return summary


class SpaceWorkerControl:
    """The parent-facing command surface of one registry worker.

    Tracks, per space, the arena record the parent last announced
    (``space_tag``/digest/epoch/dataset); the registry's descriptors use
    :meth:`_attach_runtime` as their builder so a space (re)build inside
    this process is always an arena mapping, never a discovery run.
    """

    def __init__(
        self, registry, tag: str, worker_index: int, obs=None
    ) -> None:
        self.registry = registry
        self.tag = tag
        self.worker_index = worker_index
        self.obs = obs
        self.drain_event = threading.Event()
        #: Attachments by (space, digest); retained for the process
        #: lifetime for the same reason as the single-space worker's.
        self.attachments: dict[tuple[str, str], AttachedArena] = {}
        self._records: dict[str, dict] = {}
        self._lock = threading.Lock()
        self._rebind_lock = threading.Lock()

    # -- boot / adoption -------------------------------------------------

    def adopt_space(
        self,
        *,
        name: str,
        space_tag: str,
        digest: str,
        epoch: int,
        dataset,
        idle_ttl_s: Optional[float] = None,
        max_sessions: Optional[int] = None,
    ) -> dict:
        """Register a space and eagerly map its runtime from the arena."""
        from repro.spaces.descriptor import SpaceDescriptor

        with self._lock:
            known = name in self._records
            self._records[name] = {
                "space_tag": space_tag,
                "digest": digest,
                "epoch": int(epoch),
                "dataset": dataset,
            }
        if not known:
            self.registry.register(
                SpaceDescriptor(
                    name=name,
                    builder=partial(self._attach_runtime, name),
                    idle_ttl_s=idle_ttl_s,
                    max_sessions=max_sessions,
                ),
                exist_ok=True,
            )
        # Attach eagerly: mapping the arena is near-instant, and a ready
        # manager means the forwarded open that triggered the parent's
        # build never sees a worker-side 202.
        manager = self.registry.manager(name, wait=True)
        runtime = manager.runtime
        return {
            "ok": True,
            "space": name,
            "epoch": runtime.epoch,
            "digest": runtime.membership_digest(),
        }

    def _attach_runtime(self, name: str):
        from repro.core.runtime import GroupSpaceRuntime

        with self._lock:
            record = dict(self._records[name])
        attached = attach_arena(record["space_tag"], record["digest"])
        runtime = GroupSpaceRuntime.from_arena(
            record["dataset"], attached, name=name
        )
        self.attachments[(name, record["digest"])] = attached
        return runtime

    # -- parent verbs ----------------------------------------------------

    def describe(self) -> dict:
        spaces = {}
        for name in self.registry.names():
            with self._lock:
                record = self._records.get(name) or {}
            spaces[name] = {
                "state": self.registry.peek(name),
                "digest": record.get("digest"),
                "epoch": record.get("epoch"),
            }
        return {
            "ok": True,
            "pid": os.getpid(),
            "worker": self.worker_index,
            "sessions": len(self.registry.session_ids()),
            "degraded": self.registry.any_degraded(),
            "spaces": spaces,
        }

    def handle(self, verb: str, body: dict) -> dict:
        if verb == "ping":
            return self.describe()
        if verb == "rebind":
            return self.rebind(body)
        if verb == "attach_space":
            return self.attach_space(body)
        if verb == "metrics":
            return _metrics_reply(self.obs)
        if verb == "activity":
            space = body.get("space")
            return _activity_reply(
                self.obs, space if isinstance(space, str) else "", body
            )
        if verb == "drain":
            return self.drain()
        raise KeyError(f"unknown internal verb {verb!r}")

    def attach_space(self, body: dict) -> dict:
        name = body.get("name")
        if not isinstance(name, str) or not name:
            raise ValueError("attach_space needs a space name")
        space_tag = body.get("space_tag")
        if not isinstance(space_tag, str) or not space_tag:
            raise ValueError("attach_space needs the space's arena tag")
        digest = body.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ValueError("attach_space needs the arena digest")
        blob = body.get("dataset_b64")
        if not isinstance(blob, str):
            raise ValueError("attach_space needs the dataset")
        dataset = pickle.loads(base64.b64decode(blob))
        report = self.adopt_space(
            name=name,
            space_tag=space_tag,
            digest=digest,
            epoch=int(body.get("epoch", 0)),
            dataset=dataset,
            idle_ttl_s=body.get("idle_ttl_s"),
            max_sessions=body.get("max_sessions"),
        )
        report.update(self.describe())
        return report

    def rebind(self, body: dict) -> dict:
        name = body.get("space")
        if not isinstance(name, str) or not name:
            raise ValueError("rebind needs the space name")
        digest = body.get("digest")
        if not isinstance(digest, str) or not digest:
            raise ValueError("rebind needs the new epoch's digest")
        epoch = body.get("epoch")
        if not isinstance(epoch, int):
            raise ValueError("rebind needs the new epoch number")
        changed_old = body.get("changed_old") or []
        with self._lock:
            record = self._records.get(name)
            if record is None:
                raise KeyError(
                    f"worker {self.worker_index} never adopted space {name!r}"
                )
            record["digest"] = digest
            record["epoch"] = int(epoch)
            space_tag = record["space_tag"]
        with self._rebind_lock:
            # peek, not manager(): rebinding must never resurrect a
            # space this worker dropped — the record update above is
            # enough for the next lazy build to map the new epoch.
            if self.registry.peek(name) != "ready":
                report = {
                    "space": name,
                    "epoch": int(epoch),
                    "digest": digest,
                    "cold": True,
                }
            else:
                runtime = self.registry.runtime(name, wait=True)
                if runtime.membership_digest() == digest:
                    report = {
                        "space": name,
                        "epoch": runtime.epoch,
                        "digest": digest,
                        "noop": True,
                    }
                else:
                    try:
                        attached = attach_arena(space_tag, digest)
                    except FileNotFoundError as error:
                        raise ValueError(
                            f"rebind to an unpublished arena segment: {error}"
                        )
                    report = dict(
                        runtime.adopt_epoch(
                            attached.group_space(runtime.space.dataset),
                            attached.similarity_index(),
                            stale_gids=[int(gid) for gid in changed_old],
                            digest=digest,
                            epoch_number=epoch,
                        )
                    )
                    report["space"] = name
                    self.attachments[(name, digest)] = attached
        report.update(self.describe())
        return report

    def drain(self) -> dict:
        summary = {"draining": True, **self.describe()}
        self.drain_event.set()
        return summary


def _graceful_exit(manager, service, attachments=()) -> None:
    """Checkpoint every live session, then stop serving.

    ``evict_idle(0.0)`` persists (snapshot or journal-compact, per the
    manager's durability mode) and retires every session, so a recycled
    worker's walks resume bitwise-identical from the shared state
    directory — the drain contract the regression suite asserts.  The
    arena attachments are closed last: mappings with views still live
    stay mapped (exit reclaims them), but the close keeps the interpreter
    shutdown free of finalizer noise.
    """
    if manager.state_dir is not None:
        try:
            manager.evict_idle(0.0)
        except Exception:
            traceback.print_exc(file=sys.stderr)
    service.stop()
    for attached in list(attachments):
        attached.close()


def _graceful_registry_exit(registry, service, attachments=()) -> None:
    """Registry-worker analogue: drain every ready space, then stop."""
    try:
        registry.drain()
    except Exception:
        traceback.print_exc(file=sys.stderr)
    service.stop()
    registry.shutdown(wait=False)
    for attached in list(attachments):
        attached.close()


def worker_main(spec: dict, ready_conn) -> int:
    """Boot one single-space replica from a parent-built spec.

    ``spec`` carries only picklable boot material (the dataset, the
    arena address, manager knobs); everything heavy is mapped from the
    arena.  ``ready_conn`` receives exactly one message: ``{"ok": True,
    "port", "pid", ...}`` once the HTTP front is listening, or ``{"ok":
    False, "error"}`` when boot failed (digest mismatch, missing
    segment) — the parent decides what to do about it.
    """
    from repro.core.runtime import GroupSpaceRuntime, SessionManager
    from repro.service.server import ExplorationService

    tag = spec["tag"]
    worker_index = int(spec["worker_index"])
    try:
        attached = attach_arena(tag, spec["digest"])
        runtime = GroupSpaceRuntime.from_arena(
            spec["dataset"],
            attached,
            name=spec.get("space_name"),
        )
        manager = SessionManager(
            runtime,
            default_config=spec.get("default_config"),
            max_sessions=spec.get("max_sessions"),
            state_dir=spec.get("state_dir"),
            id_prefix=f"w{worker_index}-",
            durability=spec.get("durability", "snapshot"),
            compact_every=spec.get("compact_every", 64),
        )
        obs = _build_obs(spec, worker_index)
        control = WorkerControl(manager, runtime, tag, worker_index, obs=obs)
        control.attachments[attached.digest] = attached
        service = ExplorationService(
            manager,
            host=spec.get("host", "127.0.0.1"),
            port=int(spec.get("port", 0)),
            control=control,
            obs=obs,
            metrics=obs is not None,
        ).start()
    except BaseException as error:  # noqa: BLE001 — report boot failures
        ready_conn.send(
            {"ok": False, "error": f"{type(error).__name__}: {error}"}
        )
        ready_conn.close()
        return 1

    def _on_signal(signum, frame) -> None:
        control.drain_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    ready_conn.send(
        {
            "ok": True,
            "port": service.port,
            "pid": os.getpid(),
            "worker": worker_index,
            "epoch": runtime.epoch,
            "digest": runtime.membership_digest(),
        }
    )
    ready_conn.close()

    control.drain_event.wait()
    _graceful_exit(manager, service, control.attachments.values())
    return 0


def _space_worker_main(spec: dict, ready_conn) -> int:
    """Boot one registry replica: a space registry of arena runtimes.

    Every space the parent has already materialized arrives in the spec
    (dataset + arena address + serving policy) and is adopted before the
    ready message goes out; spaces that finish building later arrive via
    ``attach_space``.  The registry's ``id_tag`` is this worker's tag,
    so ids compose as ``w<index>-<space>-s0001`` and route back here.
    """
    from repro.service.server import ExplorationService
    from repro.spaces.registry import SpaceRegistry

    worker_index = int(spec["worker_index"])
    try:
        registry = SpaceRegistry(
            state_dir=spec.get("state_dir"),
            default_config=spec.get("default_config"),
            max_sessions=spec.get("max_sessions"),
            idle_ttl_s=spec.get("idle_ttl_s"),
            build_workers=1,
            durability=spec.get("durability", "snapshot"),
            compact_every=spec.get("compact_every", 64),
            id_tag=f"w{worker_index}-",
        )
        obs = _build_obs(spec, worker_index)
        control = SpaceWorkerControl(
            registry, spec["tag"], worker_index, obs=obs
        )
        for entry in spec.get("spaces", ()):
            control.adopt_space(
                name=entry["name"],
                space_tag=entry["space_tag"],
                digest=entry["digest"],
                epoch=int(entry["epoch"]),
                dataset=entry["dataset"],
                idle_ttl_s=entry.get("idle_ttl_s"),
                max_sessions=entry.get("max_sessions"),
            )
        service = ExplorationService(
            registry=registry,
            host=spec.get("host", "127.0.0.1"),
            port=int(spec.get("port", 0)),
            control=control,
            obs=obs,
            metrics=obs is not None,
        ).start()
    except BaseException as error:  # noqa: BLE001 — report boot failures
        ready_conn.send(
            {"ok": False, "error": f"{type(error).__name__}: {error}"}
        )
        ready_conn.close()
        return 1

    def _on_signal(signum, frame) -> None:
        control.drain_event.set()

    signal.signal(signal.SIGTERM, _on_signal)
    signal.signal(signal.SIGINT, _on_signal)

    ready_conn.send(
        {
            "ok": True,
            "port": service.port,
            "pid": os.getpid(),
            "worker": worker_index,
            "spaces": {
                name: {
                    "digest": info.get("digest"),
                    "epoch": info.get("epoch"),
                }
                for name, info in control.describe()["spaces"].items()
            },
        }
    )
    ready_conn.close()

    control.drain_event.wait()
    _graceful_registry_exit(registry, service, control.attachments.values())
    return 0


def _worker_entry(spec: dict, ready_conn) -> None:
    """The ``Process(target=...)`` shim: exit with the main's code."""
    main = _space_worker_main if spec.get("multi_space") else worker_main
    sys.exit(main(spec, ready_conn))
