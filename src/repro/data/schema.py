"""Record types for user data.

VEXUS (§II-A) models user data with the generic schema ``[user, item,
value]``: each record describes one user *action* (rating a book, publishing
at a venue, ...).  Each user additionally carries a set of *demographics*
(attribute -> value pairs such as ``gender=female``).

This module defines the typed records exchanged between the ETL layer and
:class:`repro.data.dataset.UserDataset`, plus validation helpers used when
ingesting untrusted CSV input.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

#: Sentinel label stored for a missing demographic value.  Kept printable so
#: it can round-trip through CSV and appear in histograms as its own bucket.
MISSING = "<missing>"


@dataclass(frozen=True, slots=True)
class Action:
    """One user action: ``user`` did something to ``item`` with ``value``.

    Examples: ``Action("Mary", "Mr Miracle", 4.0)`` — Mary rated the book
    *Mr Miracle* 4 out of 5; ``Action("alice", "SIGMOD", 12)`` — alice has 12
    SIGMOD publications.
    """

    user: str
    item: str
    value: float

    def validate(self) -> None:
        """Raise :class:`SchemaError` if any field is unusable."""
        if not self.user:
            raise SchemaError("action has empty user")
        if not self.item:
            raise SchemaError(f"action for user {self.user!r} has empty item")
        if not math.isfinite(self.value):
            raise SchemaError(
                f"action ({self.user!r}, {self.item!r}) has non-finite value"
            )


@dataclass(frozen=True, slots=True)
class Demographic:
    """One demographic fact about a user: ``attribute = value``."""

    user: str
    attribute: str
    value: str

    def validate(self) -> None:
        """Raise :class:`SchemaError` if any field is unusable."""
        if not self.user:
            raise SchemaError("demographic has empty user")
        if not self.attribute:
            raise SchemaError(f"demographic for user {self.user!r} has empty attribute")
        # An empty value is legal and normalised to MISSING by the ETL layer.


class SchemaError(ValueError):
    """A record violates the ``[user, item, value]`` / demographics schema."""


def parse_value(raw: str) -> Optional[float]:
    """Parse an action value from CSV text.

    Returns ``None`` when the cell is empty or not a finite number, so the
    caller (the cleaning pipeline) can decide whether to drop or repair the
    record instead of crashing mid-import.
    """
    text = raw.strip()
    if not text:
        return None
    try:
        value = float(text)
    except ValueError:
        return None
    return value if math.isfinite(value) else None


def normalize_label(raw: str) -> str:
    """Canonicalise a user/item/attribute/value label from CSV text.

    Strips surrounding whitespace and collapses internal runs of whitespace;
    empty results become :data:`MISSING`.
    """
    text = " ".join(raw.split())
    return text if text else MISSING
