"""Columnar container for user data.

A :class:`UserDataset` is the product of the ETL phase (VEXUS Fig. 1,
*Pre-processing*): a set of users, each with demographic attributes, plus a
table of ``[user, item, value]`` actions.  It is stored column-wise on numpy
arrays so the group-discovery miners and the crossfilter engine can scan
millions of records without per-row Python overhead.

The container is append-only during construction and logically immutable
afterwards; exploration-time operations (drill-down, brushing) work on index
arrays into it rather than copying records.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

import numpy as np

from repro.data.schema import MISSING, Action, Demographic, SchemaError
from repro.data.vocab import Vocab


@dataclass
class DemographicColumn:
    """One demographic attribute stored as coded values over all users."""

    attribute: str
    vocab: Vocab
    codes: np.ndarray  # int32, shape (n_users,); always a valid vocab code
    _value_index: Optional[dict[int, np.ndarray]] = field(default=None, repr=False)

    def value_of(self, user_index: int) -> str:
        """The attribute value label for one user."""
        return self.vocab.label(int(self.codes[user_index]))

    def users_with(self, value: str) -> np.ndarray:
        """Indices of users whose attribute equals ``value`` (sorted)."""
        code = self.vocab.get(value)
        if code < 0:
            return np.empty(0, dtype=np.int32)
        return self._index().get(code, np.empty(0, dtype=np.int32))

    def counts(self, users: Optional[np.ndarray] = None) -> dict[str, int]:
        """Histogram ``{value label: count}`` over all users or a subset."""
        codes = self.codes if users is None else self.codes[users]
        counted = np.bincount(codes, minlength=len(self.vocab))
        return {
            self.vocab.label(code): int(count)
            for code, count in enumerate(counted)
            if count > 0
        }

    def _index(self) -> dict[int, np.ndarray]:
        if self._value_index is None:
            order = np.argsort(self.codes, kind="stable")
            sorted_codes = self.codes[order]
            boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
            chunks = np.split(order.astype(np.int32), boundaries)
            self._value_index = {int(chunk_codes[0]): chunk for chunk, chunk_codes in zip(chunks, np.split(sorted_codes, boundaries)) if len(chunk)}
        return self._value_index


class UserDataset:
    """Users + demographics + ``[user, item, value]`` actions, columnar.

    Build one with :meth:`from_records` (the ETL layer's output) or a
    generator from :mod:`repro.data.generators`.
    """

    def __init__(self, name: str = "dataset") -> None:
        self.name = name
        self.users = Vocab()
        self.items = Vocab()
        self._columns: dict[str, DemographicColumn] = {}
        self.action_user = np.empty(0, dtype=np.int32)
        self.action_item = np.empty(0, dtype=np.int32)
        self.action_value = np.empty(0, dtype=np.float32)
        self._user_adjacency: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None
        self._item_adjacency: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_records(
        cls,
        actions: Iterable[Action],
        demographics: Iterable[Demographic],
        name: str = "dataset",
    ) -> "UserDataset":
        """Assemble a dataset from validated ETL records.

        Users mentioned only in demographics (no actions) and only in actions
        (no demographics) are both kept; absent demographic values are coded
        as :data:`repro.data.schema.MISSING`.
        """
        ds = cls(name)
        demo_rows: dict[str, dict[str, str]] = {}
        attributes: list[str] = []
        for record in demographics:
            record.validate()
            ds.users.add(record.user)
            if record.attribute not in demo_rows.setdefault(record.user, {}):
                demo_rows[record.user][record.attribute] = record.value or MISSING
            if record.attribute not in attributes:
                attributes.append(record.attribute)

        user_col: list[int] = []
        item_col: list[int] = []
        value_col: list[float] = []
        for action in actions:
            action.validate()
            user_col.append(ds.users.add(action.user))
            item_col.append(ds.items.add(action.item))
            value_col.append(action.value)
        ds.action_user = np.asarray(user_col, dtype=np.int32)
        ds.action_item = np.asarray(item_col, dtype=np.int32)
        ds.action_value = np.asarray(value_col, dtype=np.float32)

        n = len(ds.users)
        for attribute in attributes:
            vocab = Vocab([MISSING])
            codes = np.zeros(n, dtype=np.int32)
            for user_label, row in demo_rows.items():
                value = row.get(attribute)
                if value is not None:
                    codes[ds.users.code(user_label)] = vocab.add(value)
            ds._columns[attribute] = DemographicColumn(attribute, vocab, codes)
        return ds

    @classmethod
    def from_arrays(
        cls,
        user_labels: Sequence[str],
        item_labels: Sequence[str],
        action_user: np.ndarray,
        action_item: np.ndarray,
        action_value: np.ndarray,
        demographics: Optional[dict[str, Sequence[str]]] = None,
        name: str = "dataset",
    ) -> "UserDataset":
        """Fast path for generators: build directly from index arrays.

        ``action_user`` / ``action_item`` hold indices into ``user_labels`` /
        ``item_labels``; ``demographics`` maps an attribute name to one value
        label per user.  No cleaning is applied — callers are trusted to pass
        consistent arrays (generators do; CSV input must go through
        :mod:`repro.data.etl` instead).
        """
        ds = cls(name)
        ds.users = Vocab(user_labels)
        ds.items = Vocab(item_labels)
        if len(ds.users) != len(user_labels):
            raise SchemaError("duplicate user labels passed to from_arrays")
        if len(ds.items) != len(item_labels):
            raise SchemaError("duplicate item labels passed to from_arrays")
        ds.action_user = np.asarray(action_user, dtype=np.int32)
        ds.action_item = np.asarray(action_item, dtype=np.int32)
        ds.action_value = np.asarray(action_value, dtype=np.float32)
        if len(ds.action_user) and (
            ds.action_user.min() < 0 or ds.action_user.max() >= len(ds.users)
        ):
            raise SchemaError("action_user index out of range")
        if len(ds.action_item) and (
            ds.action_item.min() < 0 or ds.action_item.max() >= len(ds.items)
        ):
            raise SchemaError("action_item index out of range")
        for attribute, values in (demographics or {}).items():
            if len(values) != len(user_labels):
                raise SchemaError(
                    f"demographic {attribute!r} has {len(values)} values "
                    f"for {len(user_labels)} users"
                )
            vocab = Vocab([MISSING])
            codes = np.fromiter(
                (vocab.add(value) for value in values),
                dtype=np.int32,
                count=len(values),
            )
            ds._columns[attribute] = DemographicColumn(attribute, vocab, codes)
        return ds

    def add_derived_attribute(
        self, attribute: str, value_of_user: Callable[[int], str]
    ) -> None:
        """Attach a computed demographic (e.g. activity level) to every user.

        ``value_of_user`` maps a user index to a value label.  Derived
        attributes behave exactly like ingested ones for grouping and stats.
        """
        if attribute in self._columns:
            raise SchemaError(f"attribute {attribute!r} already exists")
        vocab = Vocab([MISSING])
        codes = np.zeros(self.n_users, dtype=np.int32)
        for user_index in range(self.n_users):
            codes[user_index] = vocab.add(value_of_user(user_index))
        self._columns[attribute] = DemographicColumn(attribute, vocab, codes)

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------

    @property
    def n_users(self) -> int:
        return len(self.users)

    @property
    def n_items(self) -> int:
        return len(self.items)

    @property
    def n_actions(self) -> int:
        return len(self.action_user)

    @property
    def attributes(self) -> list[str]:
        """Demographic attribute names, in ingestion order."""
        return list(self._columns)

    def column(self, attribute: str) -> DemographicColumn:
        """The coded column for ``attribute`` (raises ``KeyError`` if absent)."""
        return self._columns[attribute]

    def __repr__(self) -> str:
        return (
            f"UserDataset({self.name!r}: {self.n_users} users, "
            f"{self.n_items} items, {self.n_actions} actions, "
            f"{len(self._columns)} demographics)"
        )

    # ------------------------------------------------------------------
    # demographic queries
    # ------------------------------------------------------------------

    def demographic_value(self, user_index: int, attribute: str) -> str:
        """Value label of ``attribute`` for one user."""
        return self._columns[attribute].value_of(user_index)

    def demographics_of(self, user_index: int) -> dict[str, str]:
        """All demographic values of one user, ``{attribute: value}``."""
        return {
            attribute: column.value_of(user_index)
            for attribute, column in self._columns.items()
        }

    def users_matching(self, attribute: str, value: str) -> np.ndarray:
        """Sorted indices of users with ``attribute == value``."""
        return self._columns[attribute].users_with(value)

    def users_matching_all(self, conditions: Sequence[tuple[str, str]]) -> np.ndarray:
        """Sorted indices of users satisfying every ``(attribute, value)`` pair."""
        if not conditions:
            return np.arange(self.n_users, dtype=np.int32)
        result: Optional[np.ndarray] = None
        for attribute, value in conditions:
            matched = self.users_matching(attribute, value)
            result = matched if result is None else np.intersect1d(result, matched, assume_unique=True)
            if len(result) == 0:
                break
        assert result is not None
        return result.astype(np.int32)

    # ------------------------------------------------------------------
    # action adjacency
    # ------------------------------------------------------------------

    def items_of_user(self, user_index: int) -> np.ndarray:
        """Item indices this user acted on (order of ingestion)."""
        offsets, targets, _ = self._user_csr()
        return targets[offsets[user_index] : offsets[user_index + 1]]

    def values_of_user(self, user_index: int) -> np.ndarray:
        """Action values of this user, aligned with :meth:`items_of_user`."""
        offsets, _, values = self._user_csr()
        return values[offsets[user_index] : offsets[user_index + 1]]

    def users_of_item(self, item_index: int) -> np.ndarray:
        """User indices who acted on this item."""
        offsets, targets, _ = self._item_csr()
        return targets[offsets[item_index] : offsets[item_index + 1]]

    def item_support(self) -> np.ndarray:
        """Number of *distinct* users per item, shape ``(n_items,)``."""
        if self.n_actions == 0:
            return np.zeros(self.n_items, dtype=np.int64)
        pairs = np.unique(
            self.action_item.astype(np.int64) * max(self.n_users, 1)
            + self.action_user.astype(np.int64)
        )
        return np.bincount(pairs // max(self.n_users, 1), minlength=self.n_items)

    def user_activity(self) -> np.ndarray:
        """Number of actions per user, shape ``(n_users,)``."""
        return np.bincount(self.action_user, minlength=self.n_users)

    def mean_value_of_user(self, user_index: int) -> float:
        """Mean action value for one user (``nan`` if the user has none)."""
        values = self.values_of_user(user_index)
        return float(values.mean()) if len(values) else float("nan")

    def _user_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._user_adjacency is None:
            self._user_adjacency = _build_csr(
                self.action_user, self.action_item, self.action_value, self.n_users
            )
        return self._user_adjacency

    def _item_csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._item_adjacency is None:
            self._item_adjacency = _build_csr(
                self.action_item, self.action_user, self.action_value, self.n_items
            )
        return self._item_adjacency

    # ------------------------------------------------------------------
    # mining views
    # ------------------------------------------------------------------

    def transactions(
        self,
        include_demographics: bool = True,
        include_items: bool = True,
        min_item_support: int = 2,
        value_bucketer: Optional[Callable[[float], Optional[str]]] = None,
    ) -> tuple[list[list[int]], Vocab]:
        """Encode users as transactions over demographic/action tokens.

        Each user becomes a sorted list of integer token codes.  Demographic
        tokens look like ``"gender=female"``; item tokens look like
        ``"item:The Hobbit"`` or, when ``value_bucketer`` maps an action value
        to a bucket label, ``"item:The Hobbit|high"``.  Items acted on by
        fewer than ``min_item_support`` distinct users are dropped — they can
        never describe a group of at least that many users.

        Returns ``(transactions, token_vocab)``; miners in
        :mod:`repro.mining` consume exactly this shape.
        """
        tokens = Vocab()
        per_user: list[list[int]] = [[] for _ in range(self.n_users)]

        if include_demographics:
            for attribute, column in self._columns.items():
                for user_index in range(self.n_users):
                    value = column.value_of(user_index)
                    if value == MISSING:
                        continue
                    per_user[user_index].append(tokens.add(f"{attribute}={value}"))

        if include_items and self.n_actions:
            support = self.item_support()
            keep = support >= min_item_support
            for user_index in range(self.n_users):
                items = self.items_of_user(user_index)
                values = self.values_of_user(user_index)
                seen: set[int] = set()
                for item_index, value in zip(items, values):
                    if not keep[item_index] or item_index in seen:
                        continue
                    seen.add(int(item_index))
                    label = f"item:{self.items.label(int(item_index))}"
                    if value_bucketer is not None:
                        bucket = value_bucketer(float(value))
                        if bucket is None:
                            continue
                        label = f"{label}|{bucket}"
                    per_user[user_index].append(tokens.add(label))

        for transaction in per_user:
            transaction.sort()
        return per_user, tokens

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------

    def to_csv(self, directory: str | Path) -> None:
        """Write ``actions.csv`` and ``demographics.csv`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        with open(directory / "actions.csv", "w", encoding="utf-8") as handle:
            handle.write("user,item,value\n")
            for user_code, item_code, value in zip(
                self.action_user, self.action_item, self.action_value
            ):
                handle.write(
                    f"{_csv_escape(self.users.label(int(user_code)))},"
                    f"{_csv_escape(self.items.label(int(item_code)))},"
                    f"{float(value):g}\n"
                )
        with open(directory / "demographics.csv", "w", encoding="utf-8") as handle:
            handle.write("user,attribute,value\n")
            for attribute, column in self._columns.items():
                for user_index in range(self.n_users):
                    value = column.value_of(user_index)
                    handle.write(
                        f"{_csv_escape(self.users.label(user_index))},"
                        f"{_csv_escape(attribute)},{_csv_escape(value)}\n"
                    )

    def describe(self) -> dict[str, object]:
        """Summary statistics used by README examples and benchmarks."""
        activity = self.user_activity()
        return {
            "name": self.name,
            "users": self.n_users,
            "items": self.n_items,
            "actions": self.n_actions,
            "attributes": self.attributes,
            "mean_actions_per_user": float(activity.mean()) if self.n_users else 0.0,
            "max_actions_per_user": int(activity.max()) if self.n_users else 0,
            "mean_value": float(self.action_value.mean()) if self.n_actions else 0.0,
        }


def _build_csr(
    source: np.ndarray, target: np.ndarray, values: np.ndarray, n_source: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Group ``(source -> target, value)`` pairs into CSR adjacency arrays."""
    order = np.argsort(source, kind="stable")
    counts = np.bincount(source, minlength=n_source)
    offsets = np.zeros(n_source + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets, target[order], values[order]


def _csv_escape(text: str) -> str:
    if any(ch in text for ch in ",\"\n"):
        return '"' + text.replace('"', '""') + '"'
    return text
