"""ETL: CSV import with cleaning.

VEXUS §II-A: *"An ETL process (including data cleaning) precedes the data
import to prepare data for analysis."*  This module implements that process
for the generic ``[user, item, value]`` action schema plus demographics
tables, tolerating the dirt real rating dumps contain: blank cells,
non-numeric values, out-of-range scores, duplicated rows, ragged lines.

Cleaning decisions are never silent — every dropped or repaired row is
tallied in a :class:`CleaningReport` the caller can inspect or log.
"""

from __future__ import annotations

import csv
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, TextIO

from repro.data.dataset import UserDataset
from repro.data.schema import (
    MISSING,
    Action,
    Demographic,
    SchemaError,
    normalize_label,
    parse_value,
)


@dataclass
class CleaningReport:
    """Tally of what the cleaning pipeline did to an input file."""

    rows_read: int = 0
    rows_kept: int = 0
    dropped_empty_user: int = 0
    dropped_empty_item: int = 0
    dropped_bad_value: int = 0
    dropped_out_of_range: int = 0
    dropped_duplicate: int = 0
    dropped_short_row: int = 0
    clipped_values: int = 0

    @property
    def rows_dropped(self) -> int:
        return self.rows_read - self.rows_kept

    def as_dict(self) -> dict[str, int]:
        return {
            "rows_read": self.rows_read,
            "rows_kept": self.rows_kept,
            "rows_dropped": self.rows_dropped,
            "dropped_empty_user": self.dropped_empty_user,
            "dropped_empty_item": self.dropped_empty_item,
            "dropped_bad_value": self.dropped_bad_value,
            "dropped_out_of_range": self.dropped_out_of_range,
            "dropped_duplicate": self.dropped_duplicate,
            "dropped_short_row": self.dropped_short_row,
            "clipped_values": self.clipped_values,
        }


@dataclass
class ActionCleaner:
    """Row-level cleaning policy for action records.

    ``value_range`` constrains action values; ``out_of_range`` selects what
    happens to violators (``"clip"`` pulls them to the nearest bound,
    ``"drop"`` discards the row).  ``drop_duplicates`` keeps only the first
    occurrence of each ``(user, item)`` pair — the convention rating datasets
    such as BookCrossing follow.
    """

    value_range: Optional[tuple[float, float]] = None
    out_of_range: str = "clip"  # "clip" | "drop"
    drop_duplicates: bool = True
    report: CleaningReport = field(default_factory=CleaningReport)

    def __post_init__(self) -> None:
        if self.out_of_range not in ("clip", "drop"):
            raise SchemaError(f"unknown out_of_range policy: {self.out_of_range!r}")

    def clean(self, rows: Iterable[tuple[str, str, str]]) -> Iterator[Action]:
        """Yield cleaned :class:`Action` records from raw CSV cells."""
        seen: set[tuple[str, str]] = set()
        for raw_user, raw_item, raw_value in rows:
            self.report.rows_read += 1
            user = normalize_label(raw_user)
            item = normalize_label(raw_item)
            if user == MISSING:
                self.report.dropped_empty_user += 1
                continue
            if item == MISSING:
                self.report.dropped_empty_item += 1
                continue
            value = parse_value(raw_value)
            if value is None:
                self.report.dropped_bad_value += 1
                continue
            if self.value_range is not None:
                low, high = self.value_range
                if not low <= value <= high:
                    if self.out_of_range == "drop":
                        self.report.dropped_out_of_range += 1
                        continue
                    value = min(max(value, low), high)
                    self.report.clipped_values += 1
            if self.drop_duplicates:
                key = (user, item)
                if key in seen:
                    self.report.dropped_duplicate += 1
                    continue
                seen.add(key)
            self.report.rows_kept += 1
            yield Action(user, item, value)


@dataclass
class DemographicCleaner:
    """Row-level cleaning policy for demographic records.

    Blank values are normalised to :data:`MISSING` rather than dropped so the
    user keeps a row in every histogram; duplicated ``(user, attribute)``
    pairs keep the first value seen.
    """

    drop_duplicates: bool = True
    report: CleaningReport = field(default_factory=CleaningReport)

    def clean(self, rows: Iterable[tuple[str, str, str]]) -> Iterator[Demographic]:
        """Yield cleaned :class:`Demographic` records from raw CSV cells."""
        seen: set[tuple[str, str]] = set()
        for raw_user, raw_attribute, raw_value in rows:
            self.report.rows_read += 1
            user = normalize_label(raw_user)
            attribute = normalize_label(raw_attribute)
            if user == MISSING:
                self.report.dropped_empty_user += 1
                continue
            if attribute == MISSING:
                self.report.dropped_empty_item += 1
                continue
            if self.drop_duplicates:
                key = (user, attribute)
                if key in seen:
                    self.report.dropped_duplicate += 1
                    continue
                seen.add(key)
            self.report.rows_kept += 1
            yield Demographic(user, attribute, normalize_label(raw_value))


def _csv_rows(
    handle: TextIO, n_columns: int, report: CleaningReport, has_header: bool
) -> Iterator[tuple[str, ...]]:
    reader = csv.reader(handle)
    first = True
    for row in reader:
        if first and has_header:
            first = False
            continue
        first = False
        if len(row) < n_columns:
            report.dropped_short_row += 1
            report.rows_read += 1
            continue
        yield tuple(row[:n_columns])


def read_actions_csv(
    path: str | Path,
    cleaner: Optional[ActionCleaner] = None,
    has_header: bool = True,
) -> tuple[list[Action], CleaningReport]:
    """Read and clean an ``user,item,value`` CSV file."""
    cleaner = cleaner or ActionCleaner()
    with open(path, encoding="utf-8", newline="") as handle:
        actions = list(
            cleaner.clean(_csv_rows(handle, 3, cleaner.report, has_header))
        )
    return actions, cleaner.report


def read_demographics_csv(
    path: str | Path,
    cleaner: Optional[DemographicCleaner] = None,
    has_header: bool = True,
) -> tuple[list[Demographic], CleaningReport]:
    """Read and clean a demographics CSV file.

    Accepts either the *long* layout ``user,attribute,value`` or the *wide*
    layout ``user,attr1,attr2,...`` (detected from the header); wide rows are
    unpivoted into long records.
    """
    cleaner = cleaner or DemographicCleaner()
    with open(path, encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return [], cleaner.report
        header = [normalize_label(cell).lower() for cell in header]
        if not has_header:
            raise SchemaError("demographics CSV requires a header row")
        if header[:3] == ["user", "attribute", "value"] and len(header) == 3:
            rows: Iterable[tuple[str, str, str]] = (
                tuple(row[:3]) for row in reader if _count_or_drop(row, 3, cleaner.report)
            )
            records = list(cleaner.clean(rows))
        else:
            attributes = header[1:]
            long_rows: list[tuple[str, str, str]] = []
            for row in reader:
                if not _count_or_drop(row, 2, cleaner.report):
                    continue
                user = row[0]
                for attribute, cell in zip(attributes, row[1:]):
                    long_rows.append((user, attribute, cell))
            records = list(cleaner.clean(long_rows))
    return records, cleaner.report


def _count_or_drop(row: list[str], minimum: int, report: CleaningReport) -> bool:
    if len(row) < minimum:
        report.dropped_short_row += 1
        report.rows_read += 1
        return False
    return True


@dataclass
class ETLResult:
    """Everything the offline pre-processing step produced."""

    dataset: UserDataset
    action_report: CleaningReport
    demographic_report: CleaningReport


def load_dataset(
    actions_path: str | Path,
    demographics_path: Optional[str | Path] = None,
    name: str = "dataset",
    value_range: Optional[tuple[float, float]] = None,
) -> ETLResult:
    """One-call ETL: read, clean and assemble a :class:`UserDataset`.

    This is the Fig. 1 *ETL* box: CSV in, analysis-ready dataset out, with
    cleaning reports for both inputs.
    """
    action_cleaner = ActionCleaner(value_range=value_range)
    actions, action_report = read_actions_csv(actions_path, action_cleaner)
    demographics: list[Demographic] = []
    demographic_report = CleaningReport()
    if demographics_path is not None:
        demographic_cleaner = DemographicCleaner()
        demographics, demographic_report = read_demographics_csv(
            demographics_path, demographic_cleaner
        )
    dataset = UserDataset.from_records(actions, demographics, name=name)
    return ETLResult(dataset, action_report, demographic_report)
