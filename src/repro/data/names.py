"""Deterministic synthetic person names.

The generators need human-readable user labels (the paper's UI shows member
tables with names) without shipping any real-person data.  Names are built
from syllable pools, seeded per-index so a given ``(seed, index)`` always
produces the same name.
"""

from __future__ import annotations

import numpy as np

_FIRST_PARTS = [
    "Al", "Be", "Ca", "Da", "El", "Fa", "Ga", "Ha", "Ina", "Jo",
    "Ka", "Le", "Ma", "Ni", "Ora", "Pe", "Qui", "Ro", "Sa", "Tu",
]
_FIRST_SUFFIX = ["ra", "n", "la", "vid", "ke", "bian", "ry", "na", "s", "anna"]
_LAST_PARTS = [
    "Ander", "Berg", "Castel", "Dubo", "Ernst", "Ferra", "Gold", "Holm",
    "Iva", "Jans", "Kauf", "Lind", "Moro", "Novak", "Oliv", "Petro",
    "Quint", "Ross", "Silva", "Tanak",
]
_LAST_SUFFIX = ["son", "man", "ini", "is", "berg", "sen", "ov", "a", "er", "i"]


def person_name(index: int, seed: int = 0) -> str:
    """A stable synthetic ``"First Last"`` name for user ``index``."""
    rng = np.random.default_rng((seed << 32) ^ (index * 2654435761 & 0xFFFFFFFF))
    first = _FIRST_PARTS[int(rng.integers(len(_FIRST_PARTS)))] + _FIRST_SUFFIX[
        int(rng.integers(len(_FIRST_SUFFIX)))
    ]
    last = _LAST_PARTS[int(rng.integers(len(_LAST_PARTS)))] + _LAST_SUFFIX[
        int(rng.integers(len(_LAST_SUFFIX)))
    ]
    return f"{first} {last} {index}"


def book_title(index: int, seed: int = 0) -> str:
    """A stable synthetic book title for item ``index``."""
    adjectives = [
        "Silent", "Hidden", "Last", "Golden", "Broken", "Distant", "Secret",
        "Crimson", "Forgotten", "Endless",
    ]
    nouns = [
        "River", "Garden", "Letter", "Witness", "Summer", "Harbor", "Promise",
        "Shadow", "Orchard", "Verdict",
    ]
    rng = np.random.default_rng((seed << 32) ^ (index * 40503 & 0xFFFFFFFF))
    adjective = adjectives[int(rng.integers(len(adjectives)))]
    noun = nouns[int(rng.integers(len(nouns)))]
    return f"The {adjective} {noun} #{index}"
