"""Bidirectional label <-> integer-code mapping.

Every columnar structure in :mod:`repro.data` stores string labels as dense
integer codes.  :class:`Vocab` owns that mapping: codes are assigned in first
-seen order, are stable for the lifetime of the vocabulary, and round-trip
exactly (``vocab.label(vocab.code(x)) == x``).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from typing import Optional


class Vocab:
    """Append-only bidirectional mapping between labels and dense int codes.

    >>> v = Vocab(["a", "b"])
    >>> v.code("a"), v.code("b")
    (0, 1)
    >>> v.add("c")
    2
    >>> v.label(2)
    'c'
    >>> "b" in v, "z" in v
    (True, False)
    """

    __slots__ = ("_labels", "_codes")

    def __init__(self, labels: Optional[Iterable[str]] = None) -> None:
        self._labels: list[str] = []
        self._codes: dict[str, int] = {}
        if labels is not None:
            for label in labels:
                self.add(label)

    def add(self, label: str) -> int:
        """Return the code for ``label``, assigning a new one if unseen."""
        code = self._codes.get(label)
        if code is None:
            code = len(self._labels)
            self._codes[label] = code
            self._labels.append(label)
        return code

    def code(self, label: str) -> int:
        """Return the code for ``label``; raise ``KeyError`` if unknown."""
        return self._codes[label]

    def get(self, label: str, default: int = -1) -> int:
        """Return the code for ``label``, or ``default`` if unknown."""
        return self._codes.get(label, default)

    def label(self, code: int) -> str:
        """Return the label for ``code``; raise ``IndexError`` if out of range."""
        if code < 0:
            raise IndexError(f"negative vocab code: {code}")
        return self._labels[code]

    def labels(self) -> list[str]:
        """All labels in code order (a copy; mutating it is safe)."""
        return list(self._labels)

    def __contains__(self, label: object) -> bool:
        return label in self._codes

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[str]:
        return iter(self._labels)

    def __repr__(self) -> str:
        preview = ", ".join(repr(label) for label in self._labels[:4])
        if len(self._labels) > 4:
            preview += ", ..."
        return f"Vocab({len(self._labels)} labels: {preview})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vocab):
            return NotImplemented
        return self._labels == other._labels
