"""User-data substrate: schema, ETL, columnar dataset, generators, streams.

This package is the *Pre-processing* input side of the VEXUS architecture
(Fig. 1): it turns CSV files, generators or streams into an analysis-ready
:class:`~repro.data.dataset.UserDataset`.
"""

from repro.data.dataset import DemographicColumn, UserDataset
from repro.data.etl import (
    ActionCleaner,
    CleaningReport,
    DemographicCleaner,
    ETLResult,
    load_dataset,
    read_actions_csv,
    read_demographics_csv,
)
from repro.data.schema import MISSING, Action, Demographic, SchemaError
from repro.data.vocab import Vocab

__all__ = [
    "Action",
    "ActionCleaner",
    "CleaningReport",
    "Demographic",
    "DemographicCleaner",
    "DemographicColumn",
    "ETLResult",
    "MISSING",
    "SchemaError",
    "UserDataset",
    "Vocab",
    "load_dataset",
    "read_actions_csv",
    "read_demographics_csv",
]
