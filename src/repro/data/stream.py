"""Data-stream abstraction.

VEXUS §II-A accepts user data *"either as a dataset (in the form of a CSV
file) or as a data stream"*; the stream path feeds STREAMMINING and BIRCH.
This module provides replayable streams over actions, transactions and
feature vectors, plus tumbling/sliding windowing.  Streams are plain
iterators so the miners never hold more than a window in memory (the
"in-core" constraint of [9]).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.data.dataset import UserDataset
from repro.data.schema import Action


@dataclass(frozen=True, slots=True)
class StreamEvent:
    """One timestamped action on the wire."""

    timestamp: float
    action: Action


def replay_actions(
    dataset: UserDataset,
    rate_per_second: float = 1000.0,
    shuffle: bool = True,
    seed: int = 0,
) -> Iterator[StreamEvent]:
    """Replay a dataset's actions as a stream with synthetic timestamps.

    Inter-arrival times are exponential with the given mean rate, which is
    the standard model for user-generated event streams; ``shuffle``
    randomises arrival order so the stream has no artificial user locality.
    """
    rng = np.random.default_rng(seed)
    order = np.arange(dataset.n_actions)
    if shuffle:
        rng.shuffle(order)
    gaps = rng.exponential(1.0 / rate_per_second, size=dataset.n_actions)
    clock = 0.0
    for position, action_index in enumerate(order):
        clock += float(gaps[position])
        yield StreamEvent(
            clock,
            Action(
                dataset.users.label(int(dataset.action_user[action_index])),
                dataset.items.label(int(dataset.action_item[action_index])),
                float(dataset.action_value[action_index]),
            ),
        )


def transaction_stream(
    dataset: UserDataset,
    shuffle: bool = True,
    seed: int = 0,
    min_item_support: int = 2,
    include_demographics: bool = True,
) -> Iterator[list[int]]:
    """Stream each user's transaction (token-code list), one user at a time.

    This is the input shape STREAMMINING consumes: the stream of per-user
    itemsets, arriving in arbitrary order.
    """
    transactions, _ = dataset.transactions(
        include_demographics=include_demographics,
        min_item_support=min_item_support,
    )
    order = np.arange(len(transactions))
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for user_index in order:
        yield transactions[int(user_index)]


def vector_stream(
    dataset: UserDataset,
    featurizer: Callable[[UserDataset, int], np.ndarray],
    shuffle: bool = True,
    seed: int = 0,
) -> Iterator[np.ndarray]:
    """Stream one feature vector per user (the BIRCH input shape)."""
    order = np.arange(dataset.n_users)
    if shuffle:
        np.random.default_rng(seed).shuffle(order)
    for user_index in order:
        yield featurizer(dataset, int(user_index))


def tumbling_windows(
    stream: Iterable[StreamEvent], width_seconds: float
) -> Iterator[list[StreamEvent]]:
    """Partition a timestamped stream into back-to-back windows.

    Empty windows between bursts are skipped; events are assumed to arrive
    in timestamp order (as :func:`replay_actions` guarantees).
    """
    if width_seconds <= 0:
        raise ValueError("window width must be positive")
    window: list[StreamEvent] = []
    boundary: float | None = None
    for event in stream:
        if boundary is None:
            boundary = event.timestamp + width_seconds
        while event.timestamp >= boundary:
            if window:
                yield window
                window = []
            boundary += width_seconds
        window.append(event)
    if window:
        yield window


def sliding_windows(
    stream: Iterable[StreamEvent], width_seconds: float, step_seconds: float
) -> Iterator[list[StreamEvent]]:
    """Overlapping windows: every ``step_seconds``, the last ``width_seconds``.

    Materialises only the active window (at most ``width / step`` steps of
    overlap), preserving the in-core property.
    """
    if width_seconds <= 0 or step_seconds <= 0:
        raise ValueError("window width and step must be positive")
    buffer: list[StreamEvent] = []
    next_emit: float | None = None
    for event in stream:
        if next_emit is None:
            next_emit = event.timestamp + width_seconds
        buffer.append(event)
        while event.timestamp >= next_emit:
            low = next_emit - width_seconds
            buffer = [e for e in buffer if e.timestamp > low]
            yield [e for e in buffer if e.timestamp <= next_emit]
            next_emit += step_seconds
    if next_emit is not None:
        # The pending emission at ``next_emit`` still owes one window.  Trim
        # it to (next_emit - width, next_emit] exactly like every interior
        # emission — otherwise the tail spans the whole residual buffer,
        # which can exceed ``width_seconds``.
        low = next_emit - width_seconds
        tail = [e for e in buffer if low < e.timestamp <= next_emit]
        if tail:
            yield tail
