"""Synthetic BOOKCROSSING-equivalent generator.

The paper evaluates on the public BookCrossing dump (*"one million ratings
of 278,858 users for 271,379 books"*, ratings 1-10 and *"mostly high"*).
That dump cannot be downloaded in this offline environment, so this module
generates a statistically equivalent population (see DESIGN.md §4):

- **skew** — user activity and item popularity are heavy-tailed;
- **structure** — books belong to genres, users concentrate on a primary
  genre, so genre-coherent user groups exist for the miners to find;
- **ratings** — 1-10, skewed high, with per-user bias and a genre-match
  bonus;
- **demographics** — age group and country (the two BookCrossing carries),
  plus the derived ``favorite_genre`` and ``activity`` attributes VEXUS-style
  group exploration needs;
- **Scenario 2 anchor** — one designated avid reader with ~1,000 high
  ratings for one prolific author's books (the paper's Debbie Macomber
  reader), scaled down proportionally at small configurations.

Everything is vectorised; the paper-scale configuration (1M ratings) builds
in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import UserDataset
from repro.data.names import book_title, person_name
from repro.data.schema import MISSING

GENRES = [
    "fiction", "womens-fiction", "mystery", "thriller", "romance",
    "science-fiction", "fantasy", "history", "biography", "self-help",
    "poetry", "young-adult",
]

AGE_GROUPS = ["teen", "young-adult", "adult", "middle-age", "senior"]

COUNTRIES = [
    "usa", "canada", "uk", "germany", "france", "spain", "italy", "brazil",
    "australia", "netherlands", "portugal", "india", "japan", "mexico",
    "sweden", "norway", "poland", "argentina", "ireland", "new-zealand",
]

#: Label of the Scenario-2 prolific author (the Debbie Macomber stand-in).
FAVORITE_AUTHOR = "Dana Marlowe"

#: User label of the Scenario-2 avid reader.
SPECIAL_READER = "avid_reader_0"


@dataclass(frozen=True)
class BookCrossingConfig:
    """Knobs for the synthetic BookCrossing population."""

    n_users: int = 2000
    n_items: int = 1200
    n_ratings: int = 20000
    n_genres: int = len(GENRES)
    rating_low: int = 1
    rating_high: int = 10
    missing_age_rate: float = 0.12
    primary_genre_weight: float = 0.75
    popularity_skew: float = 1.05
    activity_skew: float = 1.1
    special_reader: bool = True
    readable_names_limit: int = 20000
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n_users < 2 or self.n_items < 2:
            raise ValueError("need at least 2 users and 2 items")
        if not 0 < self.n_genres <= len(GENRES):
            raise ValueError(f"n_genres must be in 1..{len(GENRES)}")
        if self.rating_low >= self.rating_high:
            raise ValueError("rating_low must be < rating_high")


def paper_scale_config(seed: int = 7) -> BookCrossingConfig:
    """The paper's quoted scale: 278,858 users, 271,379 books, 1M ratings."""
    return BookCrossingConfig(
        n_users=278_858, n_items=271_379, n_ratings=1_000_000, seed=seed
    )


@dataclass
class BookCrossingData:
    """Generator output: the dataset plus item metadata the UI can show."""

    dataset: UserDataset
    item_genre: np.ndarray  # genre index per item
    item_author: np.ndarray  # author index per item
    genres: list[str]
    author_names: list[str]
    special_reader: Optional[str]
    favorite_author: Optional[str]


def generate_bookcrossing(
    config: Optional[BookCrossingConfig] = None,
) -> BookCrossingData:
    """Generate the synthetic BookCrossing population described above."""
    config = config or BookCrossingConfig()
    rng = np.random.default_rng(config.seed)
    genres = GENRES[: config.n_genres]
    n_users, n_items = config.n_users, config.n_items

    # --- items: genre assignment, authors, popularity -------------------
    item_genre = rng.integers(0, len(genres), size=n_items)
    n_authors = max(2, n_items // 8)
    item_author = rng.integers(0, n_authors, size=n_items)
    author_names = [person_name(a, seed=config.seed ^ 0xA) for a in range(n_authors)]
    # The Scenario-2 prolific author owns a block of womens-fiction books.
    favorite_author: Optional[str] = None
    if config.special_reader:
        author_names[0] = FAVORITE_AUTHOR
        favorite_author = FAVORITE_AUTHOR
        n_author_books = max(4, min(n_items // 10, 1200))
        item_author[:n_author_books] = 0
        item_genre[:n_author_books] = genres.index("womens-fiction") if "womens-fiction" in genres else 0

    # Within-genre popularity: rank r gets weight (r+1)^-skew.
    popularity = np.empty(n_items)
    for genre_index in range(len(genres)):
        members = np.flatnonzero(item_genre == genre_index)
        ranks = rng.permutation(len(members))
        popularity[members] = (ranks + 1.0) ** (-config.popularity_skew)

    # --- users: activity, genre preference, demographics ----------------
    activity = (np.arange(n_users) + 1.0) ** (-config.activity_skew)
    activity = activity[rng.permutation(n_users)]
    primary_genre = rng.integers(0, len(genres), size=n_users)
    rating_bias = rng.normal(0.0, 1.0, size=n_users)

    age_codes = rng.integers(0, len(AGE_GROUPS), size=n_users)
    age_values = [AGE_GROUPS[code] for code in age_codes]
    missing_mask = rng.random(n_users) < config.missing_age_rate
    for user_index in np.flatnonzero(missing_mask):
        age_values[user_index] = MISSING
    country_weights = (np.arange(len(COUNTRIES)) + 1.0) ** -1.0
    country_weights /= country_weights.sum()
    country_codes = rng.choice(len(COUNTRIES), size=n_users, p=country_weights)
    country_values = [COUNTRIES[code] for code in country_codes]

    # --- ratings ---------------------------------------------------------
    # Sample (user, item) pairs in rounds, deduplicating after each round,
    # until the requested count is reached (skewed sampling collides often
    # at small scales, so a single oversampled draw is not enough).
    user_prob = activity / activity.sum()
    rating_user = np.empty(0, dtype=np.int64)
    rating_item = np.empty(0, dtype=np.int64)
    target = min(config.n_ratings, n_users * n_items // 2)
    for _round in range(8):
        missing = target - len(rating_user)
        if missing <= 0:
            break
        batch = int(missing * 1.4) + 16
        batch_user = rng.choice(n_users, size=batch, p=user_prob).astype(np.int64)
        use_primary = rng.random(batch) < config.primary_genre_weight
        batch_genre = np.where(
            use_primary,
            primary_genre[batch_user],
            rng.integers(0, len(genres), size=batch),
        )
        batch_item = np.empty(batch, dtype=np.int64)
        for genre_index in range(len(genres)):
            slots = np.flatnonzero(batch_genre == genre_index)
            if len(slots) == 0:
                continue
            members = np.flatnonzero(item_genre == genre_index)
            if len(members) == 0:  # genre with no items: fall back to uniform
                batch_item[slots] = rng.integers(0, n_items, size=len(slots))
                continue
            weights = popularity[members]
            weights = weights / weights.sum()
            batch_item[slots] = rng.choice(members, size=len(slots), p=weights)
        rating_user = np.concatenate([rating_user, batch_user])
        rating_item = np.concatenate([rating_item, batch_item])
        key = rating_user * n_items + rating_item
        _, first_positions = np.unique(key, return_index=True)
        first_positions.sort()
        rating_user = rating_user[first_positions]
        rating_item = rating_item[first_positions]
    rating_user = rating_user[:target]
    rating_item = rating_item[:target]

    # Mostly-high 1-10 scores: base 7, user bias, genre-match bonus, noise.
    matches_primary = primary_genre[rating_user] == item_genre[rating_item]
    raw = (
        7.0
        + rating_bias[rating_user]
        + np.where(matches_primary, 0.8, -0.6)
        + rng.normal(0.0, 1.4, size=len(rating_user))
    )
    rating_value = np.clip(np.rint(raw), config.rating_low, config.rating_high)

    # --- Scenario-2 avid reader ------------------------------------------
    special_reader: Optional[str] = None
    if config.special_reader:
        reader_index = 0  # overwrite user 0's profile deterministically
        author_books = np.flatnonzero(item_author == 0)
        reader_books = min(len(author_books), max(4, config.n_ratings // 20), 1100)
        chosen = author_books[:reader_books]
        extra_user = np.full(len(chosen), reader_index, dtype=np.int64)
        extra_value = np.clip(
            np.rint(rng.normal(8.8, 0.9, size=len(chosen))),
            config.rating_low,
            config.rating_high,
        )
        # Drop any previous ratings by the reader on these books, then append.
        existing = ~((rating_user == reader_index) & np.isin(rating_item, chosen))
        rating_user = np.concatenate([rating_user[existing], extra_user])
        rating_item = np.concatenate([rating_item[existing], chosen])
        rating_value = np.concatenate([rating_value[existing], extra_value])
        primary_genre[reader_index] = item_genre[chosen[0]]
        special_reader = SPECIAL_READER

    # --- labels & assembly ------------------------------------------------
    readable = n_users <= config.readable_names_limit
    user_labels = [
        SPECIAL_READER
        if config.special_reader and index == 0
        else (person_name(index, seed=config.seed) if readable else f"user_{index}")
        for index in range(n_users)
    ]
    readable_items = n_items <= config.readable_names_limit
    item_labels = [
        book_title(index, seed=config.seed) if readable_items else f"book_{index}"
        for index in range(n_items)
    ]

    dataset = UserDataset.from_arrays(
        user_labels,
        item_labels,
        rating_user,
        rating_item,
        rating_value,
        demographics={
            "age": age_values,
            "country": country_values,
            "favorite_genre": [genres[code] for code in primary_genre],
        },
        name="bookcrossing-synthetic",
    )

    counts = dataset.user_activity()
    quantiles = np.quantile(counts, [0.5, 0.8, 0.95]) if n_users else [0, 0, 0]

    def activity_level(user_index: int) -> str:
        count = counts[user_index]
        if count >= quantiles[2]:
            return "very-high"
        if count >= quantiles[1]:
            return "high"
        if count >= quantiles[0]:
            return "medium"
        return "low"

    dataset.add_derived_attribute("activity", activity_level)

    return BookCrossingData(
        dataset=dataset,
        item_genre=item_genre,
        item_author=item_author,
        genres=genres,
        author_names=author_names,
        special_reader=special_reader,
        favorite_author=favorite_author,
    )
