"""Synthetic DB-AUTHORS-equivalent generator.

The paper's Scenario 1 (expert-set formation) and the STATS drill-down
example run on DB-AUTHORS, a dataset of database researchers hosted on the
Perscido platform — unavailable offline.  This module generates an
equivalent researcher population (see DESIGN.md §4):

- demographics: ``gender``, ``seniority`` (derived from career years),
  ``country`` / ``continent``, ``topic``, ``publication_rate`` (bucketed
  publications-per-year);
- actions: ``[author, venue, #publications]`` with topic-coherent venue
  affinities, so venue-centred communities (the SIGMOD/VLDB/CIKM "previous
  PC" seed groups of Scenario 1) exist;
- **calibration to the paper's quoted statistic**: within the group of
  *very senior researchers in data management with a very high number of
  publications*, 62% of members are male (§II-B), and the group contains
  exactly one *female, extremely active* standout member — the paper's
  Elke A. Rundensteiner example — here a synthetic researcher with 325
  publications over a 26-year career.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.data.dataset import UserDataset
from repro.data.names import person_name

TOPICS = [
    "data management", "web search", "information retrieval",
    "machine learning", "data mining", "database theory", "visualization",
    "distributed systems",
]

VENUES = [
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "SIGIR", "WWW", "KDD",
    "ICDM", "PKDD", "TKDE", "DASFAA",
]

#: Rows = topics, columns = venues; unnormalised affinity weights.
_VENUE_AFFINITY = np.array(
    [
        # SIGMOD VLDB ICDE EDBT CIKM SIGIR WWW KDD ICDM PKDD TKDE DASFAA
        [8, 8, 7, 5, 3, 0.2, 0.5, 1, 0.5, 0.5, 4, 2],      # data management
        [0.5, 0.5, 1, 0.3, 4, 6, 8, 2, 1, 0.5, 1, 0.3],    # web search
        [0.3, 0.3, 0.5, 0.2, 5, 8, 4, 1, 1, 0.5, 1, 0.2],  # information retrieval
        [0.3, 0.5, 0.5, 0.2, 2, 1, 2, 7, 5, 4, 2, 0.3],    # machine learning
        [1, 1.5, 2, 0.5, 4, 1, 2, 8, 7, 5, 3, 1],          # data mining
        [4, 4, 3, 4, 1, 0.2, 0.3, 0.5, 0.3, 0.5, 3, 1],    # database theory
        [1, 1, 1.5, 0.5, 1, 0.5, 1, 1, 0.5, 0.3, 2, 0.5],  # visualization
        [3, 4, 4, 2, 1, 0.2, 1, 1, 0.5, 0.3, 2, 1.5],      # distributed systems
    ]
)

COUNTRY_TO_CONTINENT = {
    "usa": "north-america", "canada": "north-america", "mexico": "north-america",
    "brazil": "south-america", "argentina": "south-america", "chile": "south-america",
    "uk": "europe", "germany": "europe", "france": "europe", "italy": "europe",
    "netherlands": "europe", "greece": "europe", "switzerland": "europe",
    "china": "asia", "japan": "asia", "india": "asia", "singapore": "asia",
    "israel": "asia", "australia": "oceania", "new-zealand": "oceania",
}

SENIORITIES = ["junior", "mid-career", "senior", "very-senior"]
PUBLICATION_RATES = ["low", "moderate", "active", "highly-active", "extremely-active"]

#: User label of the calibrated standout (the paper's Rundensteiner example).
STANDOUT_AUTHOR = "Elinor Runestone"

#: The paper's quoted male share of the very-senior data-management group.
PAPER_MALE_SHARE = 0.62


@dataclass(frozen=True)
class DBAuthorsConfig:
    """Knobs for the synthetic researcher population."""

    n_authors: int = 1500
    base_male_share: float = 0.60
    calibrated_male_share: float = PAPER_MALE_SHARE
    max_career_years: int = 40
    seed: int = 11

    def __post_init__(self) -> None:
        if self.n_authors < 10:
            raise ValueError("need at least 10 authors")
        if not 0 <= self.base_male_share <= 1:
            raise ValueError("base_male_share must be a probability")


@dataclass
class DBAuthorsData:
    """Generator output: dataset plus the calibration anchors."""

    dataset: UserDataset
    standout_author: str
    career_years: np.ndarray
    publications_total: np.ndarray
    topics: list[str]
    venues: list[str]


def generate_dbauthors(config: Optional[DBAuthorsConfig] = None) -> DBAuthorsData:
    """Generate the synthetic DB-AUTHORS population described above."""
    config = config or DBAuthorsConfig()
    rng = np.random.default_rng(config.seed)
    n = config.n_authors

    # --- careers ----------------------------------------------------------
    career_years = np.clip(
        np.rint(rng.gamma(shape=2.2, scale=6.0, size=n)), 1, config.max_career_years
    ).astype(np.int64)
    productivity = rng.lognormal(mean=0.4, sigma=0.75, size=n)  # pubs / year
    publications_total = np.maximum(1, np.rint(productivity * career_years)).astype(
        np.int64
    )

    topic_weights = (np.arange(len(TOPICS)) + 1.0) ** -0.6
    topic_weights /= topic_weights.sum()
    topic_codes = rng.choice(len(TOPICS), size=n, p=topic_weights)

    countries = list(COUNTRY_TO_CONTINENT)
    country_weights = (np.arange(len(countries)) + 1.0) ** -0.8
    country_weights /= country_weights.sum()
    country_codes = rng.choice(len(countries), size=n, p=country_weights)

    gender = np.where(rng.random(n) < config.base_male_share, "male", "female")

    # --- derived buckets ---------------------------------------------------
    seniority = np.select(
        [career_years < 5, career_years < 12, career_years < 20],
        ["junior", "mid-career", "senior"],
        default="very-senior",
    )
    rate = publications_total / career_years
    rate_edges = np.quantile(rate, [0.25, 0.55, 0.8, 0.95])
    rate_bucket = np.select(
        [
            rate < rate_edges[0],
            rate < rate_edges[1],
            rate < rate_edges[2],
            rate < rate_edges[3],
        ],
        PUBLICATION_RATES[:4],
        default=PUBLICATION_RATES[4],
    )

    # --- the standout author (paper §II-B example) -------------------------
    standout = 0
    career_years[standout] = 26
    publications_total[standout] = 325
    topic_codes[standout] = TOPICS.index("data management")
    gender[standout] = "female"
    seniority[standout] = "very-senior"
    rate_bucket[standout] = "extremely-active"

    # --- calibrate the paper's 62%-male group ------------------------------
    # Group: very-senior, data management, very high publications (the two
    # top publication-rate buckets).
    in_group = (
        (seniority == "very-senior")
        & (topic_codes == TOPICS.index("data management"))
        & np.isin(rate_bucket, ["highly-active", "extremely-active"])
    )
    group_members = np.flatnonzero(in_group)
    resample = group_members[group_members != standout]
    if len(resample):
        # Target count of males among the full group (standout is female).
        target_males = int(round(config.calibrated_male_share * len(group_members)))
        target_males = min(target_males, len(resample))
        chosen = rng.permutation(resample)
        gender[chosen[:target_males]] = "male"
        gender[chosen[target_males:]] = "female"

    # --- venue publication actions -----------------------------------------
    affinity = _VENUE_AFFINITY[topic_codes]  # (n, n_venues)
    noise = rng.gamma(shape=1.5, scale=1.0, size=affinity.shape)
    weights = affinity * noise
    weights /= weights.sum(axis=1, keepdims=True)
    venue_counts = np.zeros((n, len(VENUES)), dtype=np.int64)
    for author in range(n):
        venue_counts[author] = rng.multinomial(publications_total[author], weights[author])

    action_user, action_item = np.nonzero(venue_counts)
    action_value = venue_counts[action_user, action_item].astype(np.float64)

    # --- assembly -----------------------------------------------------------
    user_labels = [
        STANDOUT_AUTHOR if index == standout else person_name(index, seed=config.seed)
        for index in range(n)
    ]
    dataset = UserDataset.from_arrays(
        user_labels,
        list(VENUES),
        action_user,
        action_item,
        action_value,
        demographics={
            "gender": [str(value) for value in gender],
            "seniority": [str(value) for value in seniority],
            "topic": [TOPICS[code] for code in topic_codes],
            "country": [countries[code] for code in country_codes],
            "continent": [COUNTRY_TO_CONTINENT[countries[code]] for code in country_codes],
            "publication_rate": [str(value) for value in rate_bucket],
        },
        name="db-authors-synthetic",
    )
    return DBAuthorsData(
        dataset=dataset,
        standout_author=STANDOUT_AUTHOR,
        career_years=career_years,
        publications_total=publications_total,
        topics=list(TOPICS),
        venues=list(VENUES),
    )
