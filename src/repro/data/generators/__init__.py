"""Synthetic dataset generators standing in for the paper's datasets."""

from repro.data.generators.bookcrossing import (
    BookCrossingConfig,
    BookCrossingData,
    FAVORITE_AUTHOR,
    SPECIAL_READER,
    generate_bookcrossing,
    paper_scale_config,
)
from repro.data.generators.dbauthors import (
    DBAuthorsConfig,
    DBAuthorsData,
    PAPER_MALE_SHARE,
    STANDOUT_AUTHOR,
    generate_dbauthors,
)

__all__ = [
    "BookCrossingConfig",
    "BookCrossingData",
    "DBAuthorsConfig",
    "DBAuthorsData",
    "FAVORITE_AUTHOR",
    "PAPER_MALE_SHARE",
    "SPECIAL_READER",
    "STANDOUT_AUTHOR",
    "generate_bookcrossing",
    "generate_dbauthors",
    "paper_scale_config",
]
